//! Contention-instrumented lock wrappers.
//!
//! [`TimedMutex`] / [`TimedRwLock`] wrap the `parking_lot` primitives and
//! account acquisitions, contended acquisitions, wait time, and hold time
//! into a shared [`LockStats`]. Several locks (e.g. all 64 object-shard
//! mutexes) can share one `Arc<LockStats>` so a whole lock *family* reports
//! as a single metric.
//!
//! The fast path is `try_lock`: an uncontended acquisition costs two relaxed
//! counter increments plus (when enabled) one `Instant::now()` for hold-time
//! tracking. When the stats handle is disabled no clock is read at all and
//! the wrapper behaves exactly like the underlying lock.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Mutex, RwLock};

use crate::hist::{HistSummary, Histogram};

/// Shared contention accounting for one lock or lock family.
pub struct LockStats {
    enabled: AtomicBool,
    acquisitions: AtomicU64,
    contended: AtomicU64,
    wait: Histogram,
    hold: Histogram,
}

impl LockStats {
    pub fn new(enabled: bool) -> Arc<Self> {
        Arc::new(LockStats {
            enabled: AtomicBool::new(enabled),
            acquisitions: AtomicU64::new(0),
            contended: AtomicU64::new(0),
            wait: Histogram::maybe(enabled),
            hold: Histogram::maybe(enabled),
        })
    }

    pub fn disabled() -> Arc<Self> {
        Self::new(false)
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    #[inline]
    fn record_acquire(&self, contended: bool, wait_ns: u64) {
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        if contended {
            self.contended.fetch_add(1, Ordering::Relaxed);
            self.wait.record(wait_ns);
        }
    }

    #[inline]
    fn record_hold(&self, hold_ns: u64) {
        self.hold.record(hold_ns);
    }

    /// Zero all counters and histograms (measurement-window scoping).
    pub fn reset(&self) {
        self.acquisitions.store(0, Ordering::Relaxed);
        self.contended.store(0, Ordering::Relaxed);
        self.wait.reset();
        self.hold.reset();
    }

    pub fn summary(&self) -> LockSummary {
        LockSummary {
            acquisitions: self.acquisitions.load(Ordering::Relaxed),
            contended: self.contended.load(Ordering::Relaxed),
            wait: self.wait.summary(),
            hold: self.hold.summary(),
        }
    }

    /// Manual accounting hooks for locks that cannot be wrapped (e.g. a
    /// `std::sync::Mutex` paired with a `Condvar`).
    #[inline]
    pub fn note_uncontended(&self) {
        if self.is_enabled() {
            self.record_acquire(false, 0);
        }
    }

    #[inline]
    pub fn note_contended(&self, wait_ns: u64) {
        if self.is_enabled() {
            self.record_acquire(true, wait_ns);
        }
    }
}

/// Point-in-time view of a [`LockStats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct LockSummary {
    pub acquisitions: u64,
    pub contended: u64,
    pub wait: HistSummary,
    pub hold: HistSummary,
}

impl LockSummary {
    pub fn to_json(&self) -> String {
        format!(
            "{{\"acquisitions\": {}, \"contended\": {}, \"wait\": {}, \"hold\": {}}}",
            self.acquisitions,
            self.contended,
            self.wait.to_json(),
            self.hold.to_json()
        )
    }
}

/// A mutex that accounts acquisitions, contention, wait and hold time into
/// a shared [`LockStats`].
pub struct TimedMutex<T> {
    inner: Mutex<T>,
    stats: Arc<LockStats>,
}

impl<T> TimedMutex<T> {
    /// New mutex with a detached (disabled) stats handle. Use
    /// [`Self::set_stats`] to join a lock family after construction.
    pub fn new(value: T) -> Self {
        TimedMutex {
            inner: Mutex::new(value),
            stats: LockStats::disabled(),
        }
    }

    pub fn with_stats(value: T, stats: Arc<LockStats>) -> Self {
        TimedMutex {
            inner: Mutex::new(value),
            stats,
        }
    }

    /// Swap the stats handle (requires exclusive access, i.e. during setup).
    pub fn set_stats(&mut self, stats: Arc<LockStats>) {
        self.stats = stats;
    }

    pub fn stats(&self) -> &Arc<LockStats> {
        &self.stats
    }

    #[inline]
    pub fn lock(&self) -> TimedMutexGuard<'_, T> {
        if !self.stats.is_enabled() {
            return TimedMutexGuard {
                guard: self.inner.lock(),
                stats: &self.stats,
                held_since: None,
            };
        }
        let guard = match self.inner.try_lock() {
            Some(g) => {
                self.stats.record_acquire(false, 0);
                g
            }
            None => {
                let start = Instant::now();
                let g = self.inner.lock();
                self.stats
                    .record_acquire(true, start.elapsed().as_nanos() as u64);
                g
            }
        };
        TimedMutexGuard {
            guard,
            stats: &self.stats,
            held_since: Some(Instant::now()),
        }
    }

    pub fn try_lock(&self) -> Option<TimedMutexGuard<'_, T>> {
        let guard = self.inner.try_lock()?;
        let enabled = self.stats.is_enabled();
        if enabled {
            self.stats.record_acquire(false, 0);
        }
        Some(TimedMutexGuard {
            guard,
            stats: &self.stats,
            held_since: if enabled { Some(Instant::now()) } else { None },
        })
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

pub struct TimedMutexGuard<'a, T> {
    guard: parking_lot::MutexGuard<'a, T>,
    stats: &'a LockStats,
    held_since: Option<Instant>,
}

impl<T> Deref for TimedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for TimedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T> Drop for TimedMutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(start) = self.held_since {
            self.stats.record_hold(start.elapsed().as_nanos() as u64);
        }
    }
}

/// An rwlock with the same accounting as [`TimedMutex`]. Reader and writer
/// acquisitions share one stats handle; hold time is recorded for both.
pub struct TimedRwLock<T> {
    inner: RwLock<T>,
    stats: Arc<LockStats>,
}

impl<T> TimedRwLock<T> {
    pub fn new(value: T) -> Self {
        TimedRwLock {
            inner: RwLock::new(value),
            stats: LockStats::disabled(),
        }
    }

    pub fn with_stats(value: T, stats: Arc<LockStats>) -> Self {
        TimedRwLock {
            inner: RwLock::new(value),
            stats,
        }
    }

    pub fn set_stats(&mut self, stats: Arc<LockStats>) {
        self.stats = stats;
    }

    pub fn stats(&self) -> &Arc<LockStats> {
        &self.stats
    }

    #[inline]
    pub fn read(&self) -> TimedRwLockReadGuard<'_, T> {
        if !self.stats.is_enabled() {
            return TimedRwLockReadGuard {
                guard: self.inner.read(),
                stats: &self.stats,
                held_since: None,
            };
        }
        let start = Instant::now();
        let guard = self.inner.read();
        let wait = start.elapsed().as_nanos() as u64;
        // The std shim has no try_read; treat any measurable wait as
        // contention so the wait histogram stays meaningful.
        self.stats.record_acquire(wait > 1_000, wait);
        TimedRwLockReadGuard {
            guard,
            stats: &self.stats,
            held_since: Some(Instant::now()),
        }
    }

    #[inline]
    pub fn write(&self) -> TimedRwLockWriteGuard<'_, T> {
        if !self.stats.is_enabled() {
            return TimedRwLockWriteGuard {
                guard: self.inner.write(),
                stats: &self.stats,
                held_since: None,
            };
        }
        let start = Instant::now();
        let guard = self.inner.write();
        let wait = start.elapsed().as_nanos() as u64;
        self.stats.record_acquire(wait > 1_000, wait);
        TimedRwLockWriteGuard {
            guard,
            stats: &self.stats,
            held_since: Some(Instant::now()),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

pub struct TimedRwLockReadGuard<'a, T> {
    guard: parking_lot::RwLockReadGuard<'a, T>,
    stats: &'a LockStats,
    held_since: Option<Instant>,
}

impl<T> Deref for TimedRwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> Drop for TimedRwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(start) = self.held_since {
            self.stats.record_hold(start.elapsed().as_nanos() as u64);
        }
    }
}

pub struct TimedRwLockWriteGuard<'a, T> {
    guard: parking_lot::RwLockWriteGuard<'a, T>,
    stats: &'a LockStats,
    held_since: Option<Instant>,
}

impl<T> Deref for TimedRwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for TimedRwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T> Drop for TimedRwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(start) = self.held_since {
            self.stats.record_hold(start.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_lock_counts_acquisition() {
        let stats = LockStats::new(true);
        let m = TimedMutex::with_stats(0u32, Arc::clone(&stats));
        {
            let mut g = m.lock();
            *g += 1;
        }
        let s = stats.summary();
        assert_eq!(s.acquisitions, 1);
        assert_eq!(s.contended, 0);
        assert_eq!(s.hold.count, 1);
    }

    #[test]
    fn contended_lock_records_wait() {
        use std::thread;
        use std::time::Duration;
        let stats = LockStats::new(true);
        let m = Arc::new(TimedMutex::with_stats(0u32, Arc::clone(&stats)));
        let m2 = Arc::clone(&m);
        let g = m.lock();
        let t = thread::spawn(move || {
            let _g = m2.lock();
        });
        thread::sleep(Duration::from_millis(20));
        drop(g);
        t.join().unwrap();
        let s = stats.summary();
        assert_eq!(s.acquisitions, 2);
        assert_eq!(s.contended, 1);
        assert!(s.wait.total >= 10_000_000, "wait = {} ns", s.wait.total);
    }

    #[test]
    fn disabled_stats_record_nothing() {
        let m = TimedMutex::new(5u32);
        assert_eq!(*m.lock(), 5);
        let s = m.stats().summary();
        assert_eq!(s.acquisitions, 0);
        assert_eq!(s.hold.count, 0);
    }

    #[test]
    fn shared_family_merges_counts() {
        let stats = LockStats::new(true);
        let a = TimedMutex::with_stats(0u32, Arc::clone(&stats));
        let b = TimedMutex::with_stats(0u32, Arc::clone(&stats));
        drop(a.lock());
        drop(b.lock());
        assert_eq!(stats.summary().acquisitions, 2);
    }

    #[test]
    fn rwlock_counts_readers_and_writers() {
        let stats = LockStats::new(true);
        let l = TimedRwLock::with_stats(1u32, Arc::clone(&stats));
        {
            let r = l.read();
            assert_eq!(*r, 1);
        }
        {
            let mut w = l.write();
            *w = 2;
        }
        let s = stats.summary();
        assert_eq!(s.acquisitions, 2);
        assert_eq!(s.hold.count, 2);
    }
}
