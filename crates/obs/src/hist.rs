//! Sharded log-linear latency histograms.
//!
//! Values (nanoseconds, or unitless quantities such as batch sizes) are
//! bucketed HDR-style: the first [`LINEAR_CUTOFF`] values get exact linear
//! buckets, every power-of-two range above that is split into
//! [`SUB_BUCKETS`] linear sub-buckets, giving a worst-case relative error
//! of `1/16` (~6.25%) across the full `u64` range with a fixed table of
//! [`NUM_BUCKETS`] counters.
//!
//! Recording is a pair of relaxed atomic adds on a per-thread shard, so
//! concurrent writers do not serialize on a shared cache line. Snapshots
//! merge shards by summing buckets; histograms with the same bucket scheme
//! can therefore also be merged across instances.
//!
//! A histogram built with [`Histogram::disabled`] allocates no shards and
//! [`Histogram::record`] is a single branch — the zero-cost opt-out path.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Values below this are bucketed exactly.
const LINEAR_CUTOFF: u64 = 16;
/// Linear sub-buckets per power-of-two range.
const SUB_BUCKETS: usize = 16;
/// Power-of-two ranges covered (msb positions 4..=63).
const RANGES: usize = 60;
/// Total bucket count (976).
pub const NUM_BUCKETS: usize = LINEAR_CUTOFF as usize + RANGES * SUB_BUCKETS;

/// Shards per enabled histogram; power of two.  Sized so a dozen engine
/// workers rarely share a shard's cache lines on the per-block hot paths
/// (the cached-read path records once per block), while keeping the
/// attribution grid's 100+ histograms at ~8 KB per shard affordable.
const SHARDS: usize = 8;

fn bucket_index(v: u64) -> usize {
    if v < LINEAR_CUTOFF {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as usize;
        let sub = ((v >> (msb - 4)) & 0xF) as usize;
        LINEAR_CUTOFF as usize + (msb - 4) * SUB_BUCKETS + sub
    }
}

/// Lower bound of the value range covered by bucket `i`.
fn bucket_floor(i: usize) -> u64 {
    if i < LINEAR_CUTOFF as usize {
        i as u64
    } else {
        let r = (i - LINEAR_CUTOFF as usize) / SUB_BUCKETS;
        let sub = (i - LINEAR_CUTOFF as usize) % SUB_BUCKETS;
        let msb = r + 4;
        (1u64 << msb) + ((sub as u64) << (msb - 4))
    }
}

static NEXT_THREAD_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_SHARD: usize = NEXT_THREAD_SHARD.fetch_add(1, Ordering::Relaxed) & (SHARDS - 1);
}

struct Shard {
    counts: Vec<AtomicU64>,
    total: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            counts: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
        }
    }
}

/// A mergeable, thread-safe log-linear histogram.
pub struct Histogram {
    shards: Vec<Shard>,
}

impl Histogram {
    /// An enabled histogram with a fixed number of shards.
    pub fn new() -> Self {
        Histogram {
            shards: (0..SHARDS).map(|_| Shard::new()).collect(),
        }
    }

    /// A disabled histogram: no shards, `record` is a no-op.
    pub fn disabled() -> Self {
        Histogram { shards: Vec::new() }
    }

    /// Build enabled or disabled depending on `enabled`.
    pub fn maybe(enabled: bool) -> Self {
        if enabled {
            Self::new()
        } else {
            Self::disabled()
        }
    }

    pub fn is_enabled(&self) -> bool {
        !self.shards.is_empty()
    }

    /// Record one observation. Relaxed atomics on a per-thread shard.
    #[inline]
    pub fn record(&self, value: u64) {
        if self.shards.is_empty() {
            return;
        }
        let shard = THREAD_SHARD.with(|s| *s) & (self.shards.len() - 1);
        let shard = &self.shards[shard];
        shard.counts[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        shard.total.fetch_add(value, Ordering::Relaxed);
    }

    /// Zero every bucket and total. Concurrent records may survive; used to
    /// scope a measurement window, not for correctness.
    pub fn reset(&self) {
        for shard in &self.shards {
            for c in &shard.counts {
                c.store(0, Ordering::Relaxed);
            }
            shard.total.store(0, Ordering::Relaxed);
        }
    }

    /// Merge all shards into a summary with percentiles.
    pub fn summary(&self) -> HistSummary {
        let mut buckets = [0u64; NUM_BUCKETS];
        let mut total = 0u64;
        for shard in &self.shards {
            for (i, c) in shard.counts.iter().enumerate() {
                buckets[i] += c.load(Ordering::Relaxed);
            }
            total += shard.total.load(Ordering::Relaxed);
        }
        let count: u64 = buckets.iter().sum();
        let mut max = 0u64;
        for (i, &c) in buckets.iter().enumerate() {
            if c > 0 {
                max = bucket_floor(i);
            }
        }
        HistSummary {
            count,
            total,
            max,
            p50: percentile(&buckets, count, 50.0),
            p90: percentile(&buckets, count, 90.0),
            p99: percentile(&buckets, count, 99.0),
            p999: percentile(&buckets, count, 99.9),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

fn percentile(buckets: &[u64; NUM_BUCKETS], count: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let target = ((q / 100.0) * count as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        seen += c;
        if seen >= target {
            return bucket_floor(i);
        }
    }
    bucket_floor(NUM_BUCKETS - 1)
}

/// Point-in-time merged view of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistSummary {
    pub count: u64,
    /// Sum of recorded values (ns for latency histograms).
    pub total: u64,
    pub max: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub p999: u64,
}

impl HistSummary {
    pub fn mean(&self) -> u64 {
        self.total.checked_div(self.count).unwrap_or(0)
    }

    /// Fixed-shape JSON object. Keys are static; values are integers only.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\": {}, \"total_ns\": {}, \"mean_ns\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \"max_ns\": {}}}",
            self.count,
            self.total,
            self.mean(),
            self.p50,
            self.p90,
            self.p99,
            self.p999,
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_buckets_are_exact() {
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_floor(v as usize), v);
        }
    }

    #[test]
    fn bucket_floor_round_trips() {
        for v in [16, 31, 32, 100, 1_000, 65_535, 1 << 40, u64::MAX] {
            let i = bucket_index(v);
            let floor = bucket_floor(i);
            assert!(floor <= v, "floor {floor} > value {v}");
            // Relative error bounded by one sub-bucket width.
            if v >= LINEAR_CUTOFF {
                assert!((v - floor) as f64 <= v as f64 / 16.0 + 1.0);
            }
        }
    }

    #[test]
    fn bucket_index_is_monotonic() {
        let mut prev = 0;
        for v in (0..1 << 20).step_by(97) {
            let i = bucket_index(v);
            assert!(i >= prev);
            prev = i;
        }
    }

    #[test]
    fn percentiles_of_uniform_values() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert_eq!(s.total, 500_500);
        // Log-linear error is <= 1/16 of the value.
        assert!(s.p50 >= 450 && s.p50 <= 500, "p50 = {}", s.p50);
        assert!(s.p99 >= 900 && s.p99 <= 990, "p99 = {}", s.p99);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.p999);
    }

    #[test]
    fn disabled_histogram_records_nothing() {
        let h = Histogram::disabled();
        h.record(42);
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50, 0);
        assert!(!h.is_enabled());
    }

    #[test]
    fn reset_zeroes_counts() {
        let h = Histogram::new();
        h.record(10);
        h.record(100);
        h.reset();
        assert_eq!(h.summary().count, 0);
    }

    #[test]
    fn concurrent_records_all_land() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for v in 0..1000u64 {
                        h.record(v);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.summary().count, 8000);
    }
}
