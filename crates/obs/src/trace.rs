//! RAM-only ring buffer of recent coarse operation spans.
//!
//! # Deniability contract
//!
//! Events carry only `&'static str` layer/op labels baked into the binary
//! plus two durations — never object signatures, keys, paths, buffer
//! contents, or block addresses of hidden objects. The buffer lives in RAM
//! only (nothing is ever persisted to the volume) and [`TraceRing::zeroize`]
//! scrubs every slot on `signoff`/unmount, the same bar the read cache
//! meets.
//!
//! Recording uses `try_lock`: if the ring is momentarily contended the event
//! is dropped (and counted) rather than serializing hot paths on the trace
//! lock.

use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// One coarse operation span. Labels are static strings by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Which layer emitted the span ("engine", "journal", ...).
    pub layer: &'static str,
    /// Static operation label ("read", "commit", ...).
    pub op: &'static str,
    /// Monotonic timestamp (ns since the registry was created).
    pub t_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
}

const ZEROED: TraceEvent = TraceEvent {
    layer: "",
    op: "",
    t_ns: 0,
    dur_ns: 0,
};

struct RingInner {
    events: Vec<TraceEvent>,
    next: usize,
    /// Total events ever accepted (wraps the ring when > capacity).
    accepted: u64,
    /// Accepted events that overwrote an older slot (ring wrapped), so
    /// truncation is visible rather than silent.
    overwritten: u64,
}

/// Fixed-capacity ring of recent [`TraceEvent`]s.
pub struct TraceRing {
    inner: Mutex<RingInner>,
    capacity: usize,
    dropped: AtomicU64,
}

impl TraceRing {
    /// `capacity == 0` yields a disabled ring (records are no-ops).
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            inner: Mutex::new(RingInner {
                events: Vec::new(),
                next: 0,
                accepted: 0,
                overwritten: 0,
            }),
            capacity,
            dropped: AtomicU64::new(0),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Record a span; drops the event if the ring lock is contended.
    pub fn record(&self, layer: &'static str, op: &'static str, t_ns: u64, dur_ns: u64) {
        if self.capacity == 0 {
            return;
        }
        match self.inner.try_lock() {
            Some(mut inner) => {
                let ev = TraceEvent {
                    layer,
                    op,
                    t_ns,
                    dur_ns,
                };
                if inner.events.len() < self.capacity {
                    inner.events.push(ev);
                } else {
                    let next = inner.next;
                    inner.events[next] = ev;
                    inner.overwritten += 1;
                }
                inner.next = (inner.next + 1) % self.capacity;
                inner.accepted += 1;
            }
            None => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Events currently in the ring, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let inner = self.inner.lock();
        if inner.events.len() < self.capacity {
            inner.events.clone()
        } else {
            let mut out = Vec::with_capacity(self.capacity);
            out.extend_from_slice(&inner.events[inner.next..]);
            out.extend_from_slice(&inner.events[..inner.next]);
            out
        }
    }

    /// Events dropped because the ring lock was contended.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Total events accepted since creation or the last [`Self::zeroize`].
    pub fn accepted(&self) -> u64 {
        self.inner.lock().accepted
    }

    /// Accepted events that overwrote an older slot because the ring
    /// wrapped — the count of spans truncated out of [`Self::snapshot`].
    pub fn overwritten(&self) -> u64 {
        self.inner.lock().overwritten
    }

    /// Scrub every slot in place, then release the storage. `black_box`
    /// keeps the scrub from being optimized away.
    pub fn zeroize(&self) {
        let mut inner = self.inner.lock();
        for slot in inner.events.iter_mut() {
            *slot = ZEROED;
        }
        black_box(&inner.events);
        inner.events.clear();
        inner.events.shrink_to_fit();
        inner.next = 0;
        inner.accepted = 0;
        inner.overwritten = 0;
    }

    /// True when the ring holds no events (used by deniability tests).
    pub fn is_zeroed(&self) -> bool {
        let inner = self.inner.lock();
        inner.events.is_empty() && inner.next == 0 && inner.accepted == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_snapshots_in_order() {
        let ring = TraceRing::new(4);
        for i in 0..3u64 {
            ring.record("engine", "read", i, 10 + i);
        }
        let evs = ring.snapshot();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].t_ns, 0);
        assert_eq!(evs[2].dur_ns, 12);
    }

    #[test]
    fn wraps_at_capacity_keeping_newest() {
        let ring = TraceRing::new(4);
        for i in 0..10u64 {
            ring.record("fs", "sync", i, 0);
        }
        let evs = ring.snapshot();
        assert_eq!(evs.len(), 4);
        assert_eq!(evs.first().unwrap().t_ns, 6);
        assert_eq!(evs.last().unwrap().t_ns, 9);
        // Truncation is counted, not silent: 10 accepted, 6 overwrote.
        assert_eq!(ring.accepted(), 10);
        assert_eq!(ring.overwritten(), 6);
        ring.zeroize();
        assert_eq!(ring.overwritten(), 0);
    }

    #[test]
    fn zeroize_scrubs_everything() {
        let ring = TraceRing::new(8);
        ring.record("journal", "commit", 1, 2);
        assert!(!ring.is_zeroed());
        ring.zeroize();
        assert!(ring.is_zeroed());
        assert!(ring.snapshot().is_empty());
        // Still usable afterwards.
        ring.record("journal", "commit", 3, 4);
        assert_eq!(ring.snapshot().len(), 1);
    }

    #[test]
    fn zero_capacity_ring_is_inert() {
        let ring = TraceRing::new(0);
        ring.record("engine", "write", 1, 1);
        assert!(ring.snapshot().is_empty());
        assert!(ring.is_zeroed());
    }
}
