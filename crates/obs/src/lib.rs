//! # stegfs-obs — deniability-safe observability for the StegFS stack
//!
//! A zero-dependency (std + the `parking_lot` shim), `&self`-friendly
//! metrics layer threaded through every tier of the filesystem: sharded
//! log-linear latency [`Histogram`]s, a per-layer metrics registry
//! ([`Obs`]), contention-instrumented lock wrappers
//! ([`TimedMutex`]/[`TimedRwLock`]), a RAM-only ring buffer of recent
//! trace spans ([`TraceRing`]), and causal per-request phase tracing
//! ([`span`]): a thread-local request context installed at engine
//! admission accumulates a tree of timed phases (`queue_wait`,
//! `uak_shard`, `journal_stage`, `gate_flush`, `device_io`, ...) that
//! feeds the per-op [`AttributionStats`] table, the worst-N
//! [`SlowCapture`] ring, and the chrome://tracing exporter
//! ([`TraceCapture`] + [`chrome_trace_json`]).
//!
//! # Deniability contract
//!
//! The same bar the read cache meets, applied to instrumentation:
//!
//! - **Metric names and shapes are static and key-independent.** Every
//!   metric name — including every span phase label
//!   ([`span::PHASE_NAMES`]) — is a `&'static str` baked into the binary;
//!   the set of metrics, histogram bucket layout, and JSON keys of a
//!   [`Snapshot`] or attribution table are identical for an empty volume
//!   and one stuffed with hidden objects. An adversary diffing two
//!   snapshots learns aggregate load, never *which* objects exist.
//! - **Values never embed secrets.** Counters, histograms, and captured
//!   span trees carry only counts and durations — no object signatures,
//!   keys, paths, plaintext, or block addresses of hidden objects are
//!   ever recorded.
//! - **Span/request ids are ephemeral counters.** Every request id is
//!   drawn from one process-global monotonic `u64` counter at admission
//!   ([`span::request_begin`]); ids are never derived from key material,
//!   access keys, or object identity, so a captured id relates requests
//!   only by order.
//! - **RAM only.** Nothing here is ever persisted to the volume; the disk
//!   image is bit-identical whether collection (or tracing) is enabled or
//!   not.
//! - **Trace buffers and captured span trees zeroize** on
//!   `signoff`/unmount via [`TraceRing::zeroize`],
//!   [`SlowCapture::zeroize`], and [`TraceCapture::zeroize`] — the worst-N
//!   capture holds whole request trees, so it is scrubbed with the same
//!   discipline as plaintext caches.
//!
//! # Zero-cost opt-out
//!
//! [`Obs::disabled`] (selected by `StegParams::obs_enabled = false`)
//! allocates no histogram shards and never reads the clock: disabled
//! histograms early-return, [`TimedMutex`] degenerates to a plain lock,
//! and the trace ring has zero capacity. The instrumentation compiles in
//! but collection cost is a predictable branch per hook.

#![forbid(unsafe_code)]

mod capture;
mod hist;
mod lock;
pub mod span;
mod trace;

pub use capture::{
    chrome_trace_json, CaptureEvent, SlowCapture, SlowEntry, TraceCapture, SLOW_PER_OP,
};
pub use hist::{HistSummary, Histogram, NUM_BUCKETS};
pub use lock::{
    LockStats, LockSummary, TimedMutex, TimedMutexGuard, TimedRwLock, TimedRwLockReadGuard,
    TimedRwLockWriteGuard,
};
pub use span::{FinishedRequest, Phase, SpanRecord, PHASE_COUNT, PHASE_NAMES};
pub use trace::{TraceEvent, TraceRing};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Default trace ring capacity (events) when collection is enabled.
pub const TRACE_CAPACITY: usize = 1024;

/// Static labels for the engine's request taxonomy, in wire order. The
/// engine maps each request variant to an index into this table.
pub const ENGINE_OPS: [&str; 12] = [
    "open", "close", "read", "read_at", "write", "write_at", "seek", "stat", "readdir", "unlink",
    "fsync", "sync_all",
];

/// Block-device level counters and latency histograms.
pub struct DeviceStats {
    pub reads: AtomicU64,
    pub writes: AtomicU64,
    pub flushes: AtomicU64,
    pub blocks_read: AtomicU64,
    pub blocks_written: AtomicU64,
    /// Blocks per read submission.
    pub read_batch: Histogram,
    /// Blocks per write submission.
    pub write_batch: Histogram,
    pub read_ns: Histogram,
    pub write_ns: Histogram,
    pub flush_ns: Histogram,
}

impl DeviceStats {
    /// Construct; `enabled = false` allocates no histogram shards.
    pub fn new(enabled: bool) -> Self {
        DeviceStats {
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            blocks_read: AtomicU64::new(0),
            blocks_written: AtomicU64::new(0),
            read_batch: Histogram::maybe(enabled),
            write_batch: Histogram::maybe(enabled),
            read_ns: Histogram::maybe(enabled),
            write_ns: Histogram::maybe(enabled),
            flush_ns: Histogram::maybe(enabled),
        }
    }

    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.flushes.store(0, Ordering::Relaxed);
        self.blocks_read.store(0, Ordering::Relaxed);
        self.blocks_written.store(0, Ordering::Relaxed);
        self.read_batch.reset();
        self.write_batch.reset();
        self.read_ns.reset();
        self.write_ns.reset();
        self.flush_ns.reset();
    }

    pub fn summary(&self) -> DeviceSummary {
        DeviceSummary {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            blocks_read: self.blocks_read.load(Ordering::Relaxed),
            blocks_written: self.blocks_written.load(Ordering::Relaxed),
            read_batch: self.read_batch.summary(),
            write_batch: self.write_batch.summary(),
            read_ns: self.read_ns.summary(),
            write_ns: self.write_ns.summary(),
            flush_ns: self.flush_ns.summary(),
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
pub struct DeviceSummary {
    pub reads: u64,
    pub writes: u64,
    pub flushes: u64,
    pub blocks_read: u64,
    pub blocks_written: u64,
    pub read_batch: HistSummary,
    pub write_batch: HistSummary,
    pub read_ns: HistSummary,
    pub write_ns: HistSummary,
    pub flush_ns: HistSummary,
}

impl DeviceSummary {
    pub fn to_json(&self) -> String {
        format!(
            "{{\"reads\": {}, \"writes\": {}, \"flushes\": {}, \"blocks_read\": {}, \"blocks_written\": {}, \"read_batch\": {}, \"write_batch\": {}, \"read_latency\": {}, \"write_latency\": {}, \"flush_latency\": {}}}",
            self.reads,
            self.writes,
            self.flushes,
            self.blocks_read,
            self.blocks_written,
            self.read_batch.to_json(),
            self.write_batch.to_json(),
            self.read_ns.to_json(),
            self.write_ns.to_json(),
            self.flush_ns.to_json()
        )
    }
}

/// Journal group-commit gate metrics: how many transactions each physical
/// flush covers, and how long callers stall waiting for coverage.
pub struct GateStats {
    /// Physical `dev.flush()` calls issued by gate leaders.
    pub flushes: AtomicU64,
    /// Callers satisfied per physical flush (leader + waiters).
    pub batch: Histogram,
    /// Per-caller time from entering the gate to coverage.
    pub stall_ns: Histogram,
}

impl GateStats {
    /// Construct; `enabled = false` allocates no histogram shards.
    pub fn new(enabled: bool) -> Self {
        Self::build(enabled)
    }

    /// True when this handle actually collects (histograms have shards).
    pub fn is_enabled(&self) -> bool {
        self.batch.is_enabled()
    }

    fn build(enabled: bool) -> Self {
        GateStats {
            flushes: AtomicU64::new(0),
            batch: Histogram::maybe(enabled),
            stall_ns: Histogram::maybe(enabled),
        }
    }

    pub fn reset(&self) {
        self.flushes.store(0, Ordering::Relaxed);
        self.batch.reset();
        self.stall_ns.reset();
    }

    pub fn summary(&self) -> GateSummary {
        GateSummary {
            flushes: self.flushes.load(Ordering::Relaxed),
            batch: self.batch.summary(),
            stall_ns: self.stall_ns.summary(),
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
pub struct GateSummary {
    pub flushes: u64,
    pub batch: HistSummary,
    pub stall_ns: HistSummary,
}

impl GateSummary {
    pub fn to_json(&self) -> String {
        format!(
            "{{\"flushes\": {}, \"batch\": {}, \"stall\": {}}}",
            self.flushes,
            self.batch.to_json(),
            self.stall_ns.to_json()
        )
    }
}

/// Read-cache operation latencies. Hit/miss/evict/zeroize counts are the
/// `count` fields of the respective histograms.
pub struct ReadCacheStats {
    pub hit_ns: Histogram,
    pub miss_ns: Histogram,
    pub evict_ns: Histogram,
    pub zeroize_ns: Histogram,
}

impl ReadCacheStats {
    /// Construct; `enabled = false` allocates no histogram shards.
    pub fn new(enabled: bool) -> Self {
        Self::build(enabled)
    }

    /// True when this handle actually collects.
    pub fn is_enabled(&self) -> bool {
        self.hit_ns.is_enabled()
    }

    fn build(enabled: bool) -> Self {
        ReadCacheStats {
            hit_ns: Histogram::maybe(enabled),
            miss_ns: Histogram::maybe(enabled),
            evict_ns: Histogram::maybe(enabled),
            zeroize_ns: Histogram::maybe(enabled),
        }
    }

    pub fn reset(&self) {
        self.hit_ns.reset();
        self.miss_ns.reset();
        self.evict_ns.reset();
        self.zeroize_ns.reset();
    }

    pub fn summary(&self) -> ReadCacheSummary {
        ReadCacheSummary {
            hit_ns: self.hit_ns.summary(),
            miss_ns: self.miss_ns.summary(),
            evict_ns: self.evict_ns.summary(),
            zeroize_ns: self.zeroize_ns.summary(),
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
pub struct ReadCacheSummary {
    pub hit_ns: HistSummary,
    pub miss_ns: HistSummary,
    pub evict_ns: HistSummary,
    pub zeroize_ns: HistSummary,
}

impl ReadCacheSummary {
    pub fn to_json(&self) -> String {
        format!(
            "{{\"hit\": {}, \"miss\": {}, \"evict\": {}, \"zeroize\": {}}}",
            self.hit_ns.to_json(),
            self.miss_ns.to_json(),
            self.evict_ns.to_json(),
            self.zeroize_ns.to_json()
        )
    }
}

/// Request-engine metrics: queue depth high-water mark and per-op-type
/// latency (submit → completion) plus overall service time.
pub struct EngineStats {
    pub queue_depth_hwm: AtomicU64,
    /// Submit-to-completion latency, one histogram per [`ENGINE_OPS`] entry.
    pub latency: Vec<Histogram>,
    /// Execution time only (dequeue → result), all ops merged.
    pub service_ns: Histogram,
}

impl EngineStats {
    /// Construct; `enabled = false` allocates no histogram shards.
    pub fn new(enabled: bool) -> Self {
        Self::build(enabled)
    }

    /// True when this handle actually collects.
    pub fn is_enabled(&self) -> bool {
        self.service_ns.is_enabled()
    }

    fn build(enabled: bool) -> Self {
        EngineStats {
            queue_depth_hwm: AtomicU64::new(0),
            latency: (0..ENGINE_OPS.len())
                .map(|_| Histogram::maybe(enabled))
                .collect(),
            service_ns: Histogram::maybe(enabled),
        }
    }

    /// Raise the queue-depth high-water mark to at least `depth`.
    #[inline]
    pub fn note_queue_depth(&self, depth: u64) {
        self.queue_depth_hwm.fetch_max(depth, Ordering::Relaxed);
    }

    /// Record one completed request by [`ENGINE_OPS`] index.
    #[inline]
    pub fn record_completion(&self, op: usize, latency_ns: u64, service_ns: u64) {
        if let Some(h) = self.latency.get(op) {
            h.record(latency_ns);
        }
        self.service_ns.record(service_ns);
    }

    pub fn reset(&self) {
        self.queue_depth_hwm.store(0, Ordering::Relaxed);
        for h in &self.latency {
            h.reset();
        }
        self.service_ns.reset();
    }

    pub fn summary(&self) -> EngineSummary {
        EngineSummary {
            queue_depth_hwm: self.queue_depth_hwm.load(Ordering::Relaxed),
            latency: self.latency.iter().map(Histogram::summary).collect(),
            service_ns: self.service_ns.summary(),
        }
    }
}

#[derive(Debug, Clone, Default)]
pub struct EngineSummary {
    pub queue_depth_hwm: u64,
    pub latency: Vec<HistSummary>,
    pub service_ns: HistSummary,
}

impl EngineSummary {
    pub fn to_json(&self) -> String {
        let mut ops = String::new();
        for (i, name) in ENGINE_OPS.iter().enumerate() {
            if i > 0 {
                ops.push_str(", ");
            }
            let summary = self.latency.get(i).copied().unwrap_or_default();
            ops.push_str(&format!("\"{}\": {}", name, summary.to_json()));
        }
        format!(
            "{{\"queue_depth_hwm\": {}, \"service\": {}, \"latency\": {{{}}}}}",
            self.queue_depth_hwm,
            self.service_ns.to_json(),
            ops
        )
    }
}

/// Per-request-type phase attribution: one self-time histogram per
/// ([`ENGINE_OPS`] op, [`span::Phase`]) pair, fed by the engine from each
/// finished request's span tree. Because spans record *self* time (nested
/// children subtracted), the per-phase totals of one op partition its
/// wall time — phase sums stay consistent with end-to-end percentiles.
pub struct AttributionStats {
    /// Row-major `[op][phase]` histograms of per-request phase self-time.
    hists: Vec<Histogram>,
}

impl AttributionStats {
    /// Construct; `enabled = false` allocates no histogram shards.
    pub fn new(enabled: bool) -> Self {
        AttributionStats {
            hists: (0..ENGINE_OPS.len() * PHASE_COUNT)
                .map(|_| Histogram::maybe(enabled))
                .collect(),
        }
    }

    #[inline]
    fn slot(op: usize, phase: Phase) -> usize {
        op * PHASE_COUNT + phase.index()
    }

    /// Record one request's self-time in `phase` for op type `op`.
    #[inline]
    pub fn record(&self, op: usize, phase: Phase, self_ns: u64) {
        if let Some(h) = self.hists.get(Self::slot(op, phase)) {
            h.record(self_ns);
        }
    }

    /// The histogram for one (op, phase) cell.
    pub fn phase(&self, op: usize, phase: Phase) -> Option<&Histogram> {
        self.hists.get(Self::slot(op, phase))
    }

    pub fn reset(&self) {
        for h in &self.hists {
            h.reset();
        }
    }

    /// Fixed-shape summary: every op × phase cell is always present.
    pub fn summary(&self) -> AttributionSummary {
        AttributionSummary {
            ops: ENGINE_OPS
                .iter()
                .enumerate()
                .map(|(op, name)| OpAttribution {
                    op: name,
                    phases: span::ALL_PHASES
                        .iter()
                        .map(|p| (p.name(), self.hists[Self::slot(op, *p)].summary()))
                        .collect(),
                })
                .collect(),
        }
    }
}

/// One op's per-phase self-time summaries, in [`span::ALL_PHASES`] order.
#[derive(Debug, Clone)]
pub struct OpAttribution {
    pub op: &'static str,
    pub phases: Vec<(&'static str, HistSummary)>,
}

/// Fixed-shape attribution table: all [`ENGINE_OPS`] × all phases, always.
#[derive(Debug, Clone)]
pub struct AttributionSummary {
    pub ops: Vec<OpAttribution>,
}

impl AttributionSummary {
    /// Summaries for one op by [`ENGINE_OPS`] name.
    pub fn op(&self, name: &str) -> Option<&OpAttribution> {
        self.ops.iter().find(|o| o.op == name)
    }

    /// Fixed-shape JSON: `{"<op>": {"<phase>": {hist}, ...}, ...}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {{", op.op));
            for (j, (phase, summary)) in op.phases.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\": {}", phase, summary.to_json()));
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// Digit-normalized [`Self::to_json`] (see [`Snapshot::shape`]).
    pub fn shape(&self) -> String {
        normalize_shape(&self.to_json())
    }
}

/// Journal-ring occupancy at or above this permille counts as a stall
/// sample for the watchdog.
pub const STALL_OCCUPANCY_PERMILLE: u64 = 800;

/// A gate flush stalling a committer longer than this flags a gate stall.
pub const GATE_STALL_THRESHOLD_NS: u64 = 50_000_000;

/// Stall-watchdog gauges: journal-ring occupancy and checkpoint-daemon
/// liveness, sampled by the checkpoint daemon's tick (and fed by commit
/// steals). All values are plain load-shaped numbers.
pub struct WatchdogStats {
    enabled: bool,
    epoch: Instant,
    /// Last sampled journal-ring occupancy (used slots / capacity, ‰).
    pub ring_occupancy_permille: AtomicU64,
    pub ring_occupancy_hwm_permille: AtomicU64,
    /// Epoch-ns of the last completed checkpoint; 0 = never.
    heartbeat_ns: AtomicU64,
    /// Commits that checkpointed a nearly-full ring themselves.
    pub checkpoint_steals: AtomicU64,
    pub samples: AtomicU64,
    /// Samples flagged as stalled (occupancy or gate-stall threshold hit).
    pub stall_samples: AtomicU64,
}

impl WatchdogStats {
    pub fn new(enabled: bool) -> Self {
        WatchdogStats {
            enabled,
            epoch: Instant::now(),
            ring_occupancy_permille: AtomicU64::new(0),
            ring_occupancy_hwm_permille: AtomicU64::new(0),
            heartbeat_ns: AtomicU64::new(0),
            checkpoint_steals: AtomicU64::new(0),
            samples: AtomicU64::new(0),
            stall_samples: AtomicU64::new(0),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record one watchdog tick: the current ring occupancy and whether the
    /// caller judged the system stalled.
    pub fn sample(&self, occupancy_permille: u64, stalled: bool) {
        if !self.enabled {
            return;
        }
        self.ring_occupancy_permille
            .store(occupancy_permille, Ordering::Relaxed);
        self.ring_occupancy_hwm_permille
            .fetch_max(occupancy_permille, Ordering::Relaxed);
        self.samples.fetch_add(1, Ordering::Relaxed);
        if stalled {
            self.stall_samples.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Stamp a completed checkpoint (daemon liveness heartbeat).
    pub fn heartbeat(&self) {
        if self.enabled {
            self.heartbeat_ns.store(
                self.epoch.elapsed().as_nanos().max(1) as u64,
                Ordering::Relaxed,
            );
        }
    }

    /// A committer checkpointed a nearly-full ring itself.
    pub fn note_steal(&self) {
        if self.enabled {
            self.checkpoint_steals.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Nanoseconds since the last checkpoint heartbeat; 0 when none yet.
    pub fn heartbeat_age_ns(&self) -> u64 {
        let at = self.heartbeat_ns.load(Ordering::Relaxed);
        if at == 0 {
            0
        } else {
            (self.epoch.elapsed().as_nanos() as u64).saturating_sub(at)
        }
    }

    /// Clear window-scoped counters (keeps the occupancy gauge and the
    /// heartbeat stamp, which describe current state, not a window).
    pub fn reset(&self) {
        self.ring_occupancy_hwm_permille.store(0, Ordering::Relaxed);
        self.checkpoint_steals.store(0, Ordering::Relaxed);
        self.samples.store(0, Ordering::Relaxed);
        self.stall_samples.store(0, Ordering::Relaxed);
    }

    pub fn summary(&self) -> WatchdogSummary {
        WatchdogSummary {
            ring_occupancy_permille: self.ring_occupancy_permille.load(Ordering::Relaxed),
            ring_occupancy_hwm_permille: self.ring_occupancy_hwm_permille.load(Ordering::Relaxed),
            heartbeat_age_ms: self.heartbeat_age_ns() / 1_000_000,
            checkpoint_steals: self.checkpoint_steals.load(Ordering::Relaxed),
            samples: self.samples.load(Ordering::Relaxed),
            stall_samples: self.stall_samples.load(Ordering::Relaxed),
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
pub struct WatchdogSummary {
    pub ring_occupancy_permille: u64,
    pub ring_occupancy_hwm_permille: u64,
    pub heartbeat_age_ms: u64,
    pub checkpoint_steals: u64,
    pub samples: u64,
    pub stall_samples: u64,
}

impl WatchdogSummary {
    pub fn to_json(&self) -> String {
        format!(
            "{{\"ring_occupancy_permille\": {}, \"ring_occupancy_hwm_permille\": {}, \"checkpoint_heartbeat_age_ms\": {}, \"checkpoint_steals\": {}, \"samples\": {}, \"stall_samples\": {}}}",
            self.ring_occupancy_permille,
            self.ring_occupancy_hwm_permille,
            self.heartbeat_age_ms,
            self.checkpoint_steals,
            self.samples,
            self.stall_samples
        )
    }
}

/// Read-repair convergence counters: degraded reads queue an in-place
/// share rewrite, and the drain either completes or fails it. Plain
/// load-shaped counts — nothing object- or key-derived.
#[derive(Default)]
pub struct RepairStats {
    /// Repair tickets queued by degraded reads (post-dedup).
    pub queued: AtomicU64,
    /// Tickets whose share rewrite committed.
    pub completed: AtomicU64,
    /// Tickets whose rewrite failed (damage beyond tolerance, I/O error).
    pub failed: AtomicU64,
}

impl RepairStats {
    pub fn new() -> Self {
        RepairStats::default()
    }

    pub fn reset(&self) {
        self.queued.store(0, Ordering::Relaxed);
        self.completed.store(0, Ordering::Relaxed);
        self.failed.store(0, Ordering::Relaxed);
    }

    pub fn summary(&self) -> RepairSummary {
        RepairSummary {
            queued: self.queued.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
pub struct RepairSummary {
    pub queued: u64,
    pub completed: u64,
    pub failed: u64,
}

impl RepairSummary {
    pub fn to_json(&self) -> String {
        format!(
            "{{\"repairs_queued\": {}, \"repairs_completed\": {}, \"repairs_failed\": {}}}",
            self.queued, self.completed, self.failed
        )
    }
}

/// The per-volume metrics registry. One [`Obs`] is created per mounted
/// volume and shared (via `Arc`) by every layer: the observed block device,
/// the plain filesystem's allocator and namespace locks, the journal's
/// log-state lock and commit gate, the read cache, the object/UAK shard
/// locks, and the request engine.
pub struct Obs {
    enabled: bool,
    /// Causal span tracing active: collection on and a non-zero trace
    /// capacity.  `trace_capacity: 0` turns the whole span layer off while
    /// keeping the flat metrics.
    tracing: bool,
    epoch: Instant,
    /// Allocator meta mutex (`fs.alloc`): policy, cursor, placement RNG.
    pub alloc_lock: Arc<LockStats>,
    /// Bitmap segment mutex families (`fs.alloc.<shard>`), one per sharded
    /// bitmap segment — the per-CPU-free-list style locks the write path
    /// actually claims blocks under.
    pub alloc_shards: Vec<Arc<LockStats>>,
    /// Plain-namespace rwlock (`fs.namespace`).
    pub namespace_lock: Arc<LockStats>,
    /// Journal log-state mutex (`journal.state`).
    pub journal_state: Arc<LockStats>,
    /// Hidden-object shard mutex family (`core.object_shards`).
    pub object_shards: Arc<LockStats>,
    /// UAK-directory shard mutex family (`core.uak_shards`).
    pub uak_shards: Arc<LockStats>,
    /// Engine submission-queue mutex (`engine.queue`).
    pub engine_queue: Arc<LockStats>,
    pub device: Arc<DeviceStats>,
    pub gate: Arc<GateStats>,
    pub readcache: Arc<ReadCacheStats>,
    pub engine: Arc<EngineStats>,
    pub trace: TraceRing,
    /// Per-op × per-phase self-time attribution from request span trees.
    pub attribution: AttributionStats,
    /// Worst-N slow-request span trees per op type.
    pub slow: SlowCapture,
    /// Bounded whole-tree capture for the chrome-trace exporter.
    pub capture: TraceCapture,
    /// Stall watchdog gauges (journal occupancy, checkpoint liveness).
    pub watchdog: Arc<WatchdogStats>,
    /// Read-repair convergence counters (queued/completed/failed).
    pub repair: Arc<RepairStats>,
}

/// Fixed lock-metric names, in snapshot order.
pub const LOCK_NAMES: [&str; 6] = [
    "fs.alloc",
    "fs.namespace",
    "journal.state",
    "core.object_shards",
    "core.uak_shards",
    "engine.queue",
];

/// Number of sharded bitmap-segment lock families. Fixed so the snapshot
/// shape is static; the fs crate sizes its bitmap segments to match.
pub const ALLOC_SHARDS: usize = 8;

/// Fixed per-shard allocator lock names, appended after [`LOCK_NAMES`] in
/// snapshot order.
pub const ALLOC_SHARD_NAMES: [&str; ALLOC_SHARDS] = [
    "fs.alloc.0",
    "fs.alloc.1",
    "fs.alloc.2",
    "fs.alloc.3",
    "fs.alloc.4",
    "fs.alloc.5",
    "fs.alloc.6",
    "fs.alloc.7",
];

impl Obs {
    pub fn new(enabled: bool) -> Arc<Self> {
        Self::with_trace_capacity(enabled, TRACE_CAPACITY)
    }

    /// Construct with an explicit trace-ring capacity
    /// (`StegParams::trace_capacity`); `0` disables the ring even when
    /// collection is otherwise enabled.
    pub fn with_trace_capacity(enabled: bool, trace_capacity: usize) -> Arc<Self> {
        Arc::new(Obs {
            enabled,
            tracing: enabled && trace_capacity > 0,
            epoch: Instant::now(),
            alloc_lock: LockStats::new(enabled),
            alloc_shards: (0..ALLOC_SHARDS).map(|_| LockStats::new(enabled)).collect(),
            namespace_lock: LockStats::new(enabled),
            journal_state: LockStats::new(enabled),
            object_shards: LockStats::new(enabled),
            uak_shards: LockStats::new(enabled),
            engine_queue: LockStats::new(enabled),
            device: Arc::new(DeviceStats::new(enabled)),
            gate: Arc::new(GateStats::new(enabled)),
            readcache: Arc::new(ReadCacheStats::new(enabled)),
            engine: Arc::new(EngineStats::new(enabled)),
            trace: TraceRing::new(if enabled { trace_capacity } else { 0 }),
            attribution: AttributionStats::new(enabled),
            slow: SlowCapture::new(enabled),
            capture: TraceCapture::new(),
            watchdog: Arc::new(WatchdogStats::new(enabled)),
            repair: Arc::new(RepairStats::new()),
        })
    }

    pub fn disabled() -> Arc<Self> {
        Self::new(false)
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// True when causal span tracing should run: collection is enabled and
    /// the trace capacity is non-zero.  The engine checks this once per
    /// request before installing a span context.
    pub fn is_tracing(&self) -> bool {
        self.tracing
    }

    /// Nanoseconds since this registry was created (trace timestamps).
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Record a trace span ending now with duration `dur_ns`.
    #[inline]
    pub fn trace_span(&self, layer: &'static str, op: &'static str, dur_ns: u64) {
        if self.enabled {
            self.trace
                .record(layer, op, self.now_ns().saturating_sub(dur_ns), dur_ns);
        }
    }

    /// Feed one finished request's span tree into the attribution table,
    /// the slow-request capture, and (when active) the chrome-trace capture.
    /// `latency_ns` is the submit → completion latency; `worker` is the
    /// engine worker index (chrome `tid`).
    pub fn complete_request(&self, finished: &FinishedRequest, latency_ns: u64, worker: u32) {
        if !self.enabled {
            return;
        }
        for s in &finished.spans {
            self.attribution.record(finished.op, s.phase, s.self_ns());
        }
        self.slow.offer(finished, latency_ns);
        if self.capture.is_active() {
            self.capture.append(finished, self.now_ns(), worker);
        }
    }

    /// Zero every counter and histogram (not the trace ring). Used to scope
    /// a measurement window to e.g. one sweep pass.
    pub fn reset(&self) {
        self.alloc_lock.reset();
        for shard in &self.alloc_shards {
            shard.reset();
        }
        self.namespace_lock.reset();
        self.journal_state.reset();
        self.object_shards.reset();
        self.uak_shards.reset();
        self.engine_queue.reset();
        self.device.reset();
        self.gate.reset();
        self.readcache.reset();
        self.engine.reset();
        self.attribution.reset();
        self.slow.zeroize();
        self.watchdog.reset();
        self.repair.reset();
    }

    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            enabled: self.enabled,
            locks: LOCK_NAMES
                .iter()
                .zip([
                    &self.alloc_lock,
                    &self.namespace_lock,
                    &self.journal_state,
                    &self.object_shards,
                    &self.uak_shards,
                    &self.engine_queue,
                ])
                .map(|(name, stats)| (*name, stats.summary()))
                .chain(
                    ALLOC_SHARD_NAMES
                        .iter()
                        .zip(&self.alloc_shards)
                        .map(|(name, stats)| (*name, stats.summary())),
                )
                .collect(),
            device: self.device.summary(),
            gate: self.gate.summary(),
            readcache: self.readcache.summary(),
            engine: self.engine.summary(),
            watchdog: self.watchdog.summary(),
            repair: self.repair.summary(),
            trace_accepted: self.trace.accepted(),
            trace_dropped: self.trace.dropped(),
            trace_overwritten: self.trace.overwritten(),
        }
    }
}

/// Point-in-time merged view of an [`Obs`] registry. The field set, lock
/// names, and JSON key structure are fixed at compile time (see the crate
/// deniability contract).
#[derive(Debug, Clone)]
pub struct Snapshot {
    pub enabled: bool,
    pub locks: Vec<(&'static str, LockSummary)>,
    pub device: DeviceSummary,
    pub gate: GateSummary,
    pub readcache: ReadCacheSummary,
    pub engine: EngineSummary,
    pub watchdog: WatchdogSummary,
    pub repair: RepairSummary,
    pub trace_accepted: u64,
    pub trace_dropped: u64,
    pub trace_overwritten: u64,
}

impl Snapshot {
    /// Summary for a named lock family from [`LOCK_NAMES`].
    pub fn lock(&self, name: &str) -> Option<&LockSummary> {
        self.locks.iter().find(|(n, _)| *n == name).map(|(_, s)| s)
    }

    /// The lock JSON object: `{"fs.alloc": {...}, ...}`.
    pub fn locks_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, summary)) in self.locks.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {}", name, summary.to_json()));
        }
        out.push('}');
        out
    }

    /// Full fixed-shape JSON export.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"enabled\": {}, \"locks\": {}, \"device\": {}, \"journal_gate\": {}, \"readcache\": {}, \"engine\": {}, \"watchdog\": {}, \"repair\": {}, \"trace\": {{\"accepted\": {}, \"dropped\": {}, \"overwritten\": {}}}}}",
            self.enabled,
            self.locks_json(),
            self.device.to_json(),
            self.gate.to_json(),
            self.readcache.to_json(),
            self.engine.to_json(),
            self.watchdog.to_json(),
            self.repair.to_json(),
            self.trace_accepted,
            self.trace_dropped,
            self.trace_overwritten
        )
    }

    /// The JSON with every integer value replaced by `N`: two snapshots
    /// have the same shape iff their normalized forms are equal. Metric
    /// keys survive normalization because they are identical on both sides
    /// by construction.
    pub fn shape(&self) -> String {
        normalize_shape(&self.to_json())
    }
}

/// Replace every digit run in `json` with `N` — the shape-comparison
/// normal form used by [`Snapshot::shape`] and [`AttributionSummary::shape`].
pub fn normalize_shape(json: &str) -> String {
    let mut out = String::new();
    let mut in_digits = false;
    for c in json.chars() {
        if c.is_ascii_digit() {
            if !in_digits {
                out.push('N');
                in_digits = true;
            }
        } else {
            in_digits = false;
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_shape_is_static() {
        let a = Obs::new(true);
        let b = Obs::new(true);
        // Wildly different activity...
        for i in 0..500 {
            a.device.read_ns.record(i * 37);
            a.alloc_lock.note_contended(i);
            a.engine.record_completion((i % 12) as usize, i, i / 2);
        }
        b.gate.batch.record(3);
        // ...same shape.
        assert_eq!(a.snapshot().shape(), b.snapshot().shape());
    }

    #[test]
    fn disabled_registry_still_snapshots() {
        let obs = Obs::disabled();
        obs.device.read_ns.record(100);
        obs.trace_span("engine", "read", 50);
        let snap = obs.snapshot();
        assert!(!snap.enabled);
        assert_eq!(snap.device.read_ns.count, 0);
        assert!(obs.trace.is_zeroed());
        // Shape matches the enabled registry except the "enabled" flag.
        let enabled_shape = Obs::new(true).snapshot().shape();
        assert_eq!(
            snap.shape().replace("false", "true"),
            enabled_shape.replace("false", "true")
        );
    }

    #[test]
    fn snapshot_json_mentions_required_lock_names() {
        let json = Obs::new(true).snapshot().to_json();
        for name in LOCK_NAMES.iter().chain(ALLOC_SHARD_NAMES.iter()) {
            assert!(json.contains(name), "missing {name}");
        }
        assert!(json.contains("journal_gate"));
        assert!(json.contains("queue_depth_hwm"));
    }

    #[test]
    fn reset_scopes_measurement_window() {
        let obs = Obs::new(true);
        obs.device.reads.fetch_add(10, Ordering::Relaxed);
        obs.engine.note_queue_depth(7);
        obs.reset();
        let snap = obs.snapshot();
        assert_eq!(snap.device.reads, 0);
        assert_eq!(snap.engine.queue_depth_hwm, 0);
    }

    #[test]
    fn trace_span_records_when_enabled() {
        let obs = Obs::new(true);
        obs.trace_span("journal", "commit", 1_000);
        assert_eq!(obs.trace.accepted(), 1);
        obs.trace.zeroize();
        assert!(obs.trace.is_zeroed());
    }

    #[test]
    fn trace_capacity_is_configurable() {
        let obs = Obs::with_trace_capacity(true, 2);
        assert_eq!(obs.trace.capacity(), 2);
        for _ in 0..5 {
            obs.trace_span("engine", "read", 10);
        }
        assert_eq!(obs.trace.accepted(), 5);
        assert_eq!(obs.trace.overwritten(), 3);
        // 0 disables the ring even with collection on.
        let off = Obs::with_trace_capacity(true, 0);
        off.trace_span("engine", "read", 10);
        assert!(off.trace.is_zeroed());
    }

    fn one_finished(op: usize, wall_ns: u64) -> FinishedRequest {
        span::request_begin(op);
        span::note(Phase::QueueWait, wall_ns / 4);
        {
            let _g = span::span(Phase::JournalStage);
            span::note(Phase::DeviceIo, 5);
        }
        let mut fin = span::request_end().unwrap();
        fin.wall_ns = wall_ns;
        fin
    }

    #[test]
    fn complete_request_feeds_attribution_and_slow_capture() {
        let obs = Obs::new(true);
        let fin = one_finished(5, 1_000);
        obs.complete_request(&fin, 1_200, 0);
        let attr = obs.attribution.summary();
        let write = attr.op("write_at").unwrap();
        let queue = write
            .phases
            .iter()
            .find(|(n, _)| *n == "queue_wait")
            .unwrap();
        assert_eq!(queue.1.count, 1);
        let stage = write
            .phases
            .iter()
            .find(|(n, _)| *n == "journal_stage")
            .unwrap();
        assert_eq!(stage.1.count, 1);
        assert_eq!(obs.slow.len(), 1);
        // Self-time discipline: the stage cell excludes the nested device io.
        let io_total = fin
            .spans
            .iter()
            .find(|s| s.phase == Phase::DeviceIo)
            .unwrap();
        assert_eq!(io_total.dur_ns, 5);
    }

    #[test]
    fn attribution_shape_is_static_and_full() {
        let a = Obs::new(true);
        let fin = one_finished(3, 2_000);
        a.complete_request(&fin, 2_000, 1);
        let b = Obs::new(true);
        assert_eq!(
            a.attribution.summary().shape(),
            b.attribution.summary().shape()
        );
        let json = b.attribution.summary().to_json();
        for op in ENGINE_OPS {
            assert!(json.contains(op));
        }
        for phase in PHASE_NAMES {
            assert!(json.contains(phase));
        }
    }

    #[test]
    fn repair_counters_roll_up_into_snapshot() {
        let obs = Obs::new(true);
        obs.repair.queued.fetch_add(3, Ordering::Relaxed);
        obs.repair.completed.fetch_add(2, Ordering::Relaxed);
        obs.repair.failed.fetch_add(1, Ordering::Relaxed);
        let snap = obs.snapshot();
        assert_eq!(snap.repair.queued, 3);
        assert_eq!(snap.repair.completed, 2);
        assert_eq!(snap.repair.failed, 1);
        let json = snap.to_json();
        assert!(json.contains("\"repairs_queued\": 3"));
        assert!(json.contains("\"repairs_completed\": 2"));
        assert!(json.contains("\"repairs_failed\": 1"));
        // The repair phase is part of the fixed taxonomy.
        assert_eq!(Phase::Repair.name(), "repair");
        obs.reset();
        assert_eq!(obs.snapshot().repair.queued, 0);
    }

    #[test]
    fn watchdog_gauges_roll_up_into_snapshot() {
        let obs = Obs::new(true);
        obs.watchdog.sample(400, false);
        obs.watchdog.sample(850, true);
        obs.watchdog.heartbeat();
        obs.watchdog.note_steal();
        let snap = obs.snapshot();
        assert_eq!(snap.watchdog.ring_occupancy_permille, 850);
        assert_eq!(snap.watchdog.ring_occupancy_hwm_permille, 850);
        assert_eq!(snap.watchdog.samples, 2);
        assert_eq!(snap.watchdog.stall_samples, 1);
        assert_eq!(snap.watchdog.checkpoint_steals, 1);
        assert!(snap.to_json().contains("\"watchdog\""));
        // Disabled watchdog collects nothing.
        let off = Obs::disabled();
        off.watchdog.sample(999, true);
        off.watchdog.note_steal();
        assert_eq!(off.snapshot().watchdog.samples, 0);
        assert_eq!(off.snapshot().watchdog.checkpoint_steals, 0);
    }
}
