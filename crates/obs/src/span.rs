//! Causal per-request phase spans with implicit context propagation.
//!
//! The engine's workers are blocking threads: one worker carries one
//! request from dispatch to completion. That lets the request context be a
//! thread-local instead of a parameter threaded through every signature in
//! the stack — [`request_begin`] installs a request context on the worker
//! thread at admission, any layer below opens a phase span with [`span`]
//! (a no-op RAII guard when no request is active), and [`request_end`]
//! collects the finished tree.
//!
//! # Self-time accounting
//!
//! Spans nest: a `journal_stage` span encloses the `device_io` spans its
//! ring writes issue. Each span tracks the summed duration of its direct
//! children, and attribution uses **self time** (`dur - children`), so the
//! per-phase self-times of one request partition its wall time without
//! double counting — their sum never exceeds the end-to-end latency.
//!
//! # Deniability contract
//!
//! Phase labels are `&'static str` baked into the binary ([`PHASE_NAMES`]).
//! Request ids come from a process-global monotonic counter
//! ([`request_begin`] is the only allocator) — they are ephemeral `u64`s
//! never derived from key material, object signatures, or paths. Span
//! records carry only the phase index, tree position, and durations.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The fixed phase taxonomy. Adding a phase here (plus [`PHASE_NAMES`])
/// is the only way to introduce a new label — call sites cannot invent
/// dynamic names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Phase {
    /// Submission-queue wait, admission → dispatch (recorded by the engine
    /// as a closed span; it happens before the context exists).
    QueueWait = 0,
    /// Blocked acquiring a UAK-directory shard lock.
    UakShard = 1,
    /// Blocked acquiring a hidden-object shard lock.
    ObjectShard = 2,
    /// Block allocation (bitmap segment claims included).
    AllocClaim = 3,
    /// Journal ring staging (reclaim + slot encryption + ring write).
    JournalStage = 4,
    /// Group-commit gate: waiting for (or leading) the covering flush.
    GateFlush = 5,
    /// Journal apply: home-location writes after the commit point.
    JournalApply = 6,
    /// Block-device submissions (reads, writes, flushes).
    DeviceIo = 7,
    /// AES block encryption/decryption.
    Crypto = 8,
    /// Read-cache hit service.
    CacheHit = 9,
    /// Read-cache miss service (tagging only; the fill I/O shows up as
    /// nested `device_io`/`crypto` spans).
    CacheMiss = 10,
    /// Read-repair: rewriting damaged shares/replicas after a degraded read
    /// (the convergence work, not the degraded read itself).
    Repair = 11,
}

/// Number of phases in the taxonomy.
pub const PHASE_COUNT: usize = 12;

/// Static phase labels, indexed by `Phase as usize`.
pub const PHASE_NAMES: [&str; PHASE_COUNT] = [
    "queue_wait",
    "uak_shard",
    "object_shard",
    "alloc_claim",
    "journal_stage",
    "gate_flush",
    "journal_apply",
    "device_io",
    "crypto",
    "cache_hit",
    "cache_miss",
    "repair",
];

/// Every phase, in index order (for fixed-shape iteration).
pub const ALL_PHASES: [Phase; PHASE_COUNT] = [
    Phase::QueueWait,
    Phase::UakShard,
    Phase::ObjectShard,
    Phase::AllocClaim,
    Phase::JournalStage,
    Phase::GateFlush,
    Phase::JournalApply,
    Phase::DeviceIo,
    Phase::Crypto,
    Phase::CacheHit,
    Phase::CacheMiss,
    Phase::Repair,
];

impl Phase {
    #[inline]
    pub fn name(self) -> &'static str {
        PHASE_NAMES[self as usize]
    }

    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Hard cap on spans per request; further opens are counted as dropped so
/// truncation is visible, never silent. Bounds both the capture-ring entry
/// size and the per-request bookkeeping cost.
pub const MAX_SPANS: usize = 192;

/// `parent` sentinel for root spans.
pub const NO_PARENT: u32 = u32::MAX;

/// One closed span in a request's tree. `start_ns` is the offset from
/// request dispatch; `child_ns` is the summed duration of direct children.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    pub phase: Phase,
    /// Index of the parent span in the request's span list, or [`NO_PARENT`].
    pub parent: u32,
    /// Nesting depth at open time (0 = root).
    pub depth: u8,
    pub start_ns: u64,
    pub dur_ns: u64,
    pub child_ns: u64,
}

impl SpanRecord {
    /// Critical-path attribution: time spent in this phase itself, with
    /// nested child spans subtracted out.
    #[inline]
    pub fn self_ns(&self) -> u64 {
        self.dur_ns.saturating_sub(self.child_ns)
    }
}

/// A finished request's span tree, handed back by [`request_end`].
#[derive(Debug, Clone)]
pub struct FinishedRequest {
    /// Ephemeral process-global request id (monotonic counter, never
    /// key-derived).
    pub req_id: u64,
    /// [`crate::ENGINE_OPS`] index of the request type.
    pub op: usize,
    /// Dispatch → end wall time in nanoseconds.
    pub wall_ns: u64,
    pub spans: Vec<SpanRecord>,
    /// Spans not recorded because [`MAX_SPANS`] was hit.
    pub dropped: u64,
}

struct RequestCtx {
    req_id: u64,
    op: usize,
    started: Instant,
    spans: Vec<SpanRecord>,
    /// Open span indices, innermost last.
    stack: Vec<u32>,
    dropped: u64,
}

static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static CTX: RefCell<Option<RequestCtx>> = const { RefCell::new(None) };
}

/// Install a request context on the current thread. Called by the engine
/// worker at dispatch; any previous context on this thread is discarded.
pub fn request_begin(op: usize) {
    let ctx = RequestCtx {
        req_id: NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed),
        op,
        started: Instant::now(),
        spans: Vec::with_capacity(32),
        stack: Vec::with_capacity(8),
        dropped: 0,
    };
    CTX.with(|c| *c.borrow_mut() = Some(ctx));
}

/// Tear down the current thread's request context and return the finished
/// tree, or `None` when no request was active. Spans left open (e.g. by a
/// panicking request) are force-closed at the request end time.
pub fn request_end() -> Option<FinishedRequest> {
    CTX.with(|c| c.borrow_mut().take()).map(|mut ctx| {
        let wall_ns = ctx.started.elapsed().as_nanos() as u64;
        while let Some(idx) = ctx.stack.pop() {
            let span = &mut ctx.spans[idx as usize];
            let dur = wall_ns.saturating_sub(span.start_ns);
            span.dur_ns = dur;
            let parent = span.parent;
            if parent != NO_PARENT {
                ctx.spans[parent as usize].child_ns += dur;
            }
        }
        FinishedRequest {
            req_id: ctx.req_id,
            op: ctx.op,
            wall_ns,
            spans: ctx.spans,
            dropped: ctx.dropped,
        }
    })
}

/// True when a request context is active on this thread.
pub fn is_active() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

/// RAII phase span: opened by [`span`], closed (and attributed) on drop.
/// Inert when no request context is active, so instrumentation points can
/// call unconditionally.
#[must_use = "the span closes when this guard drops"]
pub struct SpanGuard {
    active: bool,
}

impl SpanGuard {
    /// A guard that records nothing on drop.
    #[inline]
    pub fn inert() -> Self {
        SpanGuard { active: false }
    }
}

/// Open a phase span on the current request, if one is active.
#[inline]
pub fn span(phase: Phase) -> SpanGuard {
    CTX.with(|c| {
        let mut borrow = c.borrow_mut();
        let Some(ctx) = borrow.as_mut() else {
            return SpanGuard::inert();
        };
        if ctx.spans.len() >= MAX_SPANS {
            ctx.dropped += 1;
            return SpanGuard::inert();
        }
        let idx = ctx.spans.len() as u32;
        let parent = ctx.stack.last().copied().unwrap_or(NO_PARENT);
        let depth = ctx.stack.len().min(u8::MAX as usize) as u8;
        let start_ns = ctx.started.elapsed().as_nanos() as u64;
        ctx.spans.push(SpanRecord {
            phase,
            parent,
            depth,
            start_ns,
            dur_ns: 0,
            child_ns: 0,
        });
        ctx.stack.push(idx);
        SpanGuard { active: true }
    })
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        CTX.with(|c| {
            let mut borrow = c.borrow_mut();
            let Some(ctx) = borrow.as_mut() else {
                return;
            };
            let Some(idx) = ctx.stack.pop() else {
                return;
            };
            let now = ctx.started.elapsed().as_nanos() as u64;
            let span = &mut ctx.spans[idx as usize];
            let dur = now.saturating_sub(span.start_ns);
            span.dur_ns = dur;
            let parent = span.parent;
            if parent != NO_PARENT {
                ctx.spans[parent as usize].child_ns += dur;
            }
        });
    }
}

/// Record an already-elapsed phase as a closed span ending now. Used for
/// phases measured out-of-band (the engine's `queue_wait`, the read
/// cache's hit/miss service times).
///
/// Consecutive notes of the same phase under the same parent coalesce
/// into one record: a 64-block cached read charges one `cache_hit` span,
/// not 64. The merge path is the hot one — no clock read, no allocation —
/// and attribution totals are unchanged (self-times simply sum).
pub fn note(phase: Phase, dur_ns: u64) {
    CTX.with(|c| {
        let mut borrow = c.borrow_mut();
        let Some(ctx) = borrow.as_mut() else {
            return;
        };
        let parent = ctx.stack.last().copied().unwrap_or(NO_PARENT);
        if !ctx.spans.is_empty() {
            let last_idx = ctx.spans.len() - 1;
            // Only the current stack top (== parent) can still be open, so
            // excluding it guarantees the merge target is a closed leaf.
            let last = &ctx.spans[last_idx];
            if last_idx as u32 != parent && last.phase == phase && last.parent == parent {
                ctx.spans[last_idx].dur_ns += dur_ns;
                if parent != NO_PARENT {
                    ctx.spans[parent as usize].child_ns += dur_ns;
                }
                return;
            }
        }
        if ctx.spans.len() >= MAX_SPANS {
            ctx.dropped += 1;
            return;
        }
        let depth = ctx.stack.len().min(u8::MAX as usize) as u8;
        let now = ctx.started.elapsed().as_nanos() as u64;
        ctx.spans.push(SpanRecord {
            phase,
            parent,
            depth,
            start_ns: now.saturating_sub(dur_ns),
            dur_ns,
            child_ns: 0,
        });
        if parent != NO_PARENT {
            ctx.spans[parent as usize].child_ns += dur_ns;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_are_noops_without_a_request() {
        assert!(!is_active());
        let g = span(Phase::DeviceIo);
        drop(g);
        note(Phase::QueueWait, 100);
        assert!(request_end().is_none());
    }

    #[test]
    fn nesting_attributes_self_time() {
        request_begin(5);
        {
            let _stage = span(Phase::JournalStage);
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _io = span(Phase::DeviceIo);
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let fin = request_end().expect("ctx active");
        assert_eq!(fin.op, 5);
        assert_eq!(fin.spans.len(), 2);
        let stage = fin.spans[0];
        let io = fin.spans[1];
        assert_eq!(stage.phase, Phase::JournalStage);
        assert_eq!(stage.parent, NO_PARENT);
        assert_eq!(io.phase, Phase::DeviceIo);
        assert_eq!(io.parent, 0);
        assert_eq!(io.depth, 1);
        // Parent self-time excludes the nested device span.
        assert_eq!(stage.child_ns, io.dur_ns);
        assert!(stage.self_ns() < stage.dur_ns);
        // Self times partition wall time.
        let self_sum: u64 = fin.spans.iter().map(SpanRecord::self_ns).sum();
        assert!(self_sum <= fin.wall_ns);
    }

    #[test]
    fn note_attaches_closed_spans() {
        request_begin(2);
        note(Phase::QueueWait, 1_000);
        {
            let _hit = span(Phase::CacheHit);
            note(Phase::Crypto, 10);
        }
        let fin = request_end().unwrap();
        assert_eq!(fin.spans.len(), 3);
        assert_eq!(fin.spans[0].phase, Phase::QueueWait);
        assert_eq!(fin.spans[0].dur_ns, 1_000);
        assert_eq!(fin.spans[0].parent, NO_PARENT);
        assert_eq!(fin.spans[2].phase, Phase::Crypto);
        assert_eq!(fin.spans[2].parent, 1);
        // The noted crypto time is charged to the enclosing span's children.
        assert_eq!(fin.spans[1].child_ns, 10);
    }

    #[test]
    fn request_ids_are_monotonic_counter_values() {
        request_begin(0);
        let a = request_end().unwrap().req_id;
        request_begin(0);
        let b = request_end().unwrap().req_id;
        assert!(b > a);
    }

    #[test]
    fn span_cap_counts_drops() {
        request_begin(0);
        // Alternate phases so runs never coalesce and the cap is reached.
        for i in 0..MAX_SPANS {
            note(
                if i % 2 == 0 {
                    Phase::DeviceIo
                } else {
                    Phase::Crypto
                },
                1,
            );
        }
        // Opens past the cap are counted, never silently discarded (notes
        // past the cap may still coalesce into the last same-phase record).
        for _ in 0..7 {
            let _g = span(Phase::GateFlush);
        }
        let fin = request_end().unwrap();
        assert_eq!(fin.spans.len(), MAX_SPANS);
        assert_eq!(fin.dropped, 7);
    }

    #[test]
    fn same_phase_leaf_notes_coalesce() {
        request_begin(3);
        {
            let _read = span(Phase::CacheMiss);
            for _ in 0..64 {
                note(Phase::CacheHit, 100);
            }
        }
        note(Phase::QueueWait, 5);
        note(Phase::QueueWait, 5);
        let fin = request_end().unwrap();
        // 64 per-block hits merged into one record under the open span,
        // two root queue_wait notes merged into one.
        assert_eq!(fin.spans.len(), 3);
        let hit = fin.spans[1];
        assert_eq!(hit.phase, Phase::CacheHit);
        assert_eq!(hit.dur_ns, 6_400);
        assert_eq!(hit.parent, 0);
        assert_eq!(fin.spans[0].child_ns, 6_400);
        assert_eq!(fin.spans[2].dur_ns, 10);
        // Totals are what per-block records would have summed to.
        assert!(fin.spans[0].self_ns() <= fin.spans[0].dur_ns);
    }

    #[test]
    fn unwound_requests_force_close_open_spans() {
        request_begin(1);
        let g = span(Phase::GateFlush);
        // Simulate a panic unwinding past the guard by leaking it.
        std::mem::forget(g);
        let fin = request_end().unwrap();
        assert_eq!(fin.spans.len(), 1);
        // Force-closed at request end, not left zero-duration forever open.
        assert!(fin.spans[0].dur_ns <= fin.wall_ns);
    }

    #[test]
    fn phase_names_cover_taxonomy() {
        for (i, p) in ALL_PHASES.iter().enumerate() {
            assert_eq!(p.index(), i);
            assert_eq!(p.name(), PHASE_NAMES[i]);
        }
    }
}
