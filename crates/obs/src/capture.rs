//! RAM-only captures of whole span trees: the slow-request ring (worst-N
//! per request type) and the bounded chrome-trace capture buffer.
//!
//! # Deniability contract
//!
//! Same bar as the trace ring: entries carry static labels, ephemeral
//! counter-derived request ids, and durations — never key material, paths,
//! plaintext, or hidden block addresses. Capacities and entry shapes are
//! fixed at construction, so what the structures *can* hold is independent
//! of what the workload touched. Both zeroize on `signoff` via
//! [`SlowCapture::zeroize`] / [`TraceCapture::zeroize`]; nothing is ever
//! persisted to the volume.

use std::hint::black_box;

use parking_lot::Mutex;

use crate::span::{FinishedRequest, SpanRecord};
use crate::ENGINE_OPS;

/// Worst-N span trees kept per request type.
pub const SLOW_PER_OP: usize = 4;

/// One captured slow request: its id, end-to-end latency, and span tree.
#[derive(Debug, Clone)]
pub struct SlowEntry {
    pub req_id: u64,
    /// [`ENGINE_OPS`] index.
    pub op: usize,
    /// Submit → completion latency (includes queue wait).
    pub total_ns: u64,
    pub spans: Vec<SpanRecord>,
}

struct SlowInner {
    /// `per_op[op]` holds at most [`SLOW_PER_OP`] entries, unsorted.
    per_op: Vec<Vec<SlowEntry>>,
    /// Requests ever offered (accepted or not).
    offered: u64,
    zeroed: bool,
}

/// Worst-N slow-request capture, one bucket per [`ENGINE_OPS`] entry.
///
/// Insertion uses `try_lock` so a contended capture never serializes
/// completions; a skipped offer only means a candidate for the worst-N
/// list was missed, shape is unaffected.
pub struct SlowCapture {
    inner: Mutex<SlowInner>,
    enabled: bool,
}

impl SlowCapture {
    pub fn new(enabled: bool) -> Self {
        SlowCapture {
            inner: Mutex::new(SlowInner {
                per_op: (0..ENGINE_OPS.len()).map(|_| Vec::new()).collect(),
                offered: 0,
                zeroed: true,
            }),
            enabled,
        }
    }

    /// Offer a finished request; kept only if it beats the current worst-N
    /// for its type.
    pub fn offer(&self, finished: &FinishedRequest, total_ns: u64) {
        if !self.enabled || finished.op >= ENGINE_OPS.len() {
            return;
        }
        let Some(mut inner) = self.inner.try_lock() else {
            return;
        };
        inner.offered += 1;
        inner.zeroed = false;
        let bucket = &mut inner.per_op[finished.op];
        if bucket.len() >= SLOW_PER_OP {
            let (min_idx, min_total) = bucket
                .iter()
                .enumerate()
                .map(|(i, e)| (i, e.total_ns))
                .min_by_key(|&(_, t)| t)
                .expect("bucket non-empty");
            if total_ns <= min_total {
                return;
            }
            bucket.swap_remove(min_idx);
        }
        bucket.push(SlowEntry {
            req_id: finished.req_id,
            op: finished.op,
            total_ns,
            spans: finished.spans.clone(),
        });
    }

    /// All captured entries, grouped by op, slowest first within each op.
    pub fn snapshot(&self) -> Vec<SlowEntry> {
        let inner = self.inner.lock();
        let mut out: Vec<SlowEntry> = Vec::new();
        for bucket in &inner.per_op {
            let mut entries = bucket.clone();
            entries.sort_by_key(|e| std::cmp::Reverse(e.total_ns));
            out.extend(entries);
        }
        out
    }

    /// Requests ever offered since creation or the last zeroize.
    pub fn offered(&self) -> u64 {
        self.inner.lock().offered
    }

    /// Entries currently held across all ops.
    pub fn len(&self) -> usize {
        self.inner.lock().per_op.iter().map(Vec::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Scrub every captured span in place, then drop the storage.
    pub fn zeroize(&self) {
        let mut inner = self.inner.lock();
        for bucket in inner.per_op.iter_mut() {
            for entry in bucket.iter_mut() {
                entry.req_id = 0;
                entry.total_ns = 0;
                for span in entry.spans.iter_mut() {
                    *span = SpanRecord {
                        phase: crate::span::Phase::QueueWait,
                        parent: crate::span::NO_PARENT,
                        depth: 0,
                        start_ns: 0,
                        dur_ns: 0,
                        child_ns: 0,
                    };
                }
                black_box(&entry.spans);
                entry.spans.clear();
                entry.spans.shrink_to_fit();
            }
            bucket.clear();
            bucket.shrink_to_fit();
        }
        inner.offered = 0;
        inner.zeroed = true;
    }

    /// True when no captured state remains (deniability tests).
    pub fn is_zeroed(&self) -> bool {
        let inner = self.inner.lock();
        inner.zeroed && inner.per_op.iter().all(Vec::is_empty)
    }
}

/// One chrome-trace event staged for export. `ts_ns` is absolute on the
/// owning registry's epoch clock.
#[derive(Debug, Clone, Copy)]
pub struct CaptureEvent {
    /// Static label: a phase name or an [`ENGINE_OPS`] entry.
    pub name: &'static str,
    /// "request" for the request-level event, "phase" for span events.
    pub cat: &'static str,
    pub ts_ns: u64,
    pub dur_ns: u64,
    /// Engine worker index (chrome `tid`).
    pub tid: u32,
    /// Ephemeral request id (chrome `args.req`).
    pub req_id: u64,
}

struct CaptureState {
    events: Vec<CaptureEvent>,
    capacity: usize,
    dropped: u64,
}

/// Bounded whole-tree capture for the chrome://tracing exporter. Inactive
/// (and free) until [`TraceCapture::begin`]; one bench pass activates it,
/// drains with [`TraceCapture::take`], and writes the JSON.
pub struct TraceCapture {
    inner: Mutex<Option<CaptureState>>,
}

impl Default for TraceCapture {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceCapture {
    pub fn new() -> Self {
        TraceCapture {
            inner: Mutex::new(None),
        }
    }

    /// Start capturing up to `capacity` events (request + span events).
    pub fn begin(&self, capacity: usize) {
        *self.inner.lock() = Some(CaptureState {
            events: Vec::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        });
    }

    pub fn is_active(&self) -> bool {
        self.inner.lock().is_some()
    }

    /// Append a finished request's tree. `end_ns` is the absolute (registry
    /// epoch) completion time; span offsets are rebased onto it. `queue_wait`
    /// spans happened before dispatch, so they are back-dated from dispatch.
    pub fn append(&self, finished: &FinishedRequest, end_ns: u64, tid: u32) {
        let mut guard = self.inner.lock();
        let Some(state) = guard.as_mut() else {
            return;
        };
        let dispatch_ns = end_ns.saturating_sub(finished.wall_ns);
        let mut push = |ev: CaptureEvent| {
            if state.events.len() < state.capacity {
                state.events.push(ev);
            } else {
                state.dropped += 1;
            }
        };
        push(CaptureEvent {
            name: ENGINE_OPS.get(finished.op).copied().unwrap_or("?"),
            cat: "request",
            ts_ns: dispatch_ns,
            dur_ns: finished.wall_ns,
            tid,
            req_id: finished.req_id,
        });
        for span in &finished.spans {
            let ts_ns = if span.phase == crate::span::Phase::QueueWait {
                dispatch_ns.saturating_sub(span.dur_ns)
            } else {
                dispatch_ns + span.start_ns
            };
            push(CaptureEvent {
                name: span.phase.name(),
                cat: "phase",
                ts_ns,
                dur_ns: span.dur_ns,
                tid,
                req_id: finished.req_id,
            });
        }
    }

    /// Stop capturing and hand back `(events, dropped)`.
    pub fn take(&self) -> (Vec<CaptureEvent>, u64) {
        match self.inner.lock().take() {
            Some(state) => (state.events, state.dropped),
            None => (Vec::new(), 0),
        }
    }

    /// Scrub and discard any in-flight capture.
    pub fn zeroize(&self) {
        let mut guard = self.inner.lock();
        if let Some(state) = guard.as_mut() {
            for ev in state.events.iter_mut() {
                *ev = CaptureEvent {
                    name: "",
                    cat: "",
                    ts_ns: 0,
                    dur_ns: 0,
                    tid: 0,
                    req_id: 0,
                };
            }
            black_box(&state.events);
        }
        *guard = None;
    }

    /// True when no capture is active or buffered.
    pub fn is_zeroed(&self) -> bool {
        self.inner.lock().is_none()
    }
}

/// Render captured events as chrome trace-event JSON (the
/// `chrome://tracing` / Perfetto "JSON Array Format" with a `traceEvents`
/// wrapper). Timestamps and durations are microseconds.
pub fn chrome_trace_json(events: &[CaptureEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"ts\": {}.{:03}, \"dur\": {}.{:03}, \"pid\": 1, \"tid\": {}, \"args\": {{\"req\": {}}}}}",
            ev.name,
            ev.cat,
            ev.ts_ns / 1_000,
            ev.ts_ns % 1_000,
            ev.dur_ns / 1_000,
            ev.dur_ns % 1_000,
            ev.tid,
            ev.req_id
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Phase, NO_PARENT};

    fn finished(op: usize, req_id: u64, wall_ns: u64) -> FinishedRequest {
        FinishedRequest {
            req_id,
            op,
            wall_ns,
            spans: vec![SpanRecord {
                phase: Phase::DeviceIo,
                parent: NO_PARENT,
                depth: 0,
                start_ns: 10,
                dur_ns: wall_ns / 2,
                child_ns: 0,
            }],
            dropped: 0,
        }
    }

    #[test]
    fn slow_capture_keeps_worst_n() {
        let slow = SlowCapture::new(true);
        for i in 0..10u64 {
            slow.offer(&finished(3, i + 1, 1_000 * (i + 1)), 1_000 * (i + 1));
        }
        let snap = slow.snapshot();
        assert_eq!(snap.len(), SLOW_PER_OP);
        // The slowest survive, slowest first.
        assert_eq!(snap[0].total_ns, 10_000);
        assert_eq!(snap[SLOW_PER_OP - 1].total_ns, 7_000);
    }

    #[test]
    fn slow_capture_zeroizes() {
        let slow = SlowCapture::new(true);
        slow.offer(&finished(5, 9, 500), 500);
        assert!(!slow.is_zeroed());
        slow.zeroize();
        assert!(slow.is_zeroed());
        assert!(slow.snapshot().is_empty());
        // Still usable afterwards.
        slow.offer(&finished(5, 10, 600), 600);
        assert_eq!(slow.len(), 1);
    }

    #[test]
    fn disabled_slow_capture_collects_nothing() {
        let slow = SlowCapture::new(false);
        slow.offer(&finished(2, 1, 999), 999);
        assert!(slow.is_zeroed());
    }

    #[test]
    fn trace_capture_bounds_and_exports() {
        let cap = TraceCapture::new();
        assert!(!cap.is_active());
        cap.begin(3);
        cap.append(&finished(5, 1, 2_000), 10_000, 0);
        cap.append(&finished(3, 2, 1_000), 12_000, 1);
        let (events, dropped) = cap.take();
        assert_eq!(events.len(), 3);
        assert_eq!(dropped, 1);
        assert!(!cap.is_active());
        let json = chrome_trace_json(&events);
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"write_at\""));
        assert!(json.contains("\"device_io\""));
    }

    #[test]
    fn queue_wait_events_backdate_before_dispatch() {
        let cap = TraceCapture::new();
        cap.begin(16);
        let fin = FinishedRequest {
            req_id: 7,
            op: 2,
            wall_ns: 1_000,
            spans: vec![SpanRecord {
                phase: Phase::QueueWait,
                parent: NO_PARENT,
                depth: 0,
                start_ns: 0,
                dur_ns: 400,
                child_ns: 0,
            }],
            dropped: 0,
        };
        cap.append(&fin, 5_000, 2);
        let (events, _) = cap.take();
        // dispatch = 4000; queue_wait starts 400ns before it.
        assert_eq!(events[0].ts_ns, 4_000);
        assert_eq!(events[1].ts_ns, 3_600);
    }
}
