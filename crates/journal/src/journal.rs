//! The write-ahead intent journal: transactions, group commit, checkpointing
//! and crash replay.
//!
//! # Protocol
//!
//! A transaction ([`Tx`]) is a redo buffer: the file-system layers stage
//! every block image a multi-block update intends to write, then call
//! [`Journal::commit`], which
//!
//! 1. allocates a run of ring slots and sequence numbers,
//! 2. writes the sealed intent / payload / commit slots to the journal
//!    region,
//! 3. waits for a **group flush** — one device barrier amortized over every
//!    transaction that reached this point since the previous barrier (this is
//!    the group-commit win the engine benchmarks measure), and only then
//! 4. applies the staged images to their home locations in one batched
//!    submission.
//!
//! A crash before step 3 completes leaves at most a torn slot run, which
//! replay discards — the home locations were never touched, so uncommitted
//! updates simply vanish.  A crash after step 3 may tear the home writes
//! arbitrarily; replay redoes them from the journal.  Either way the volume
//! remounts into a state where every committed update is complete and every
//! uncommitted one is absent.
//!
//! # Lock and flush ordering
//!
//! The journal has two internal locks, both *leaves* of the whole stack's
//! lock order (they are acquired below every file-system lock and are never
//! held while calling back up):
//!
//! 1. the **log state** mutex (ring head, live transaction list, sequence
//!    counter) — may be held across journal-region device I/O and, on the
//!    rare space-reclaim path, across a device flush;
//! 2. the **commit gate** (a std `Mutex` + `Condvar`) — serialises group
//!    flushes; held only around bookkeeping, never across the flush itself.
//!
//! The log state mutex may take the commit gate; the gate never takes the
//! log state.  Checkpointing never reuses a ring slot until an anchor
//! recording a tail past it has been flushed, so replay can trust that any
//! slot at or after the durable anchor tail belongs to the current log.

use crate::record::{
    intent_capacity, open_payload, open_slot, seal_payload, seal_slot, slots_for, JournalKeys,
    Slot, SlotBody, SlotKind, ANCHOR_SLOTS,
};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, PoisonError};
use std::time::Instant;
use stegfs_blockdev::{BlockDevice, BlockError};
use stegfs_obs::{span, GateStats, Obs, TimedMutex};

/// Result alias for journal operations.
pub type JournalResult<T> = Result<T, JournalError>;

/// Errors reported by the journal.
#[derive(Debug)]
pub enum JournalError {
    /// The underlying device failed.
    Device(BlockError),
    /// A transaction needs more ring slots than the journal has (or than are
    /// currently reclaimable).  The journal must be sized larger than the
    /// largest single multi-block update it will carry.
    Full {
        /// Slots the transaction needs.
        needed: u64,
        /// Ring slots the journal has in total.
        capacity: u64,
    },
    /// The journal region described by the superblock is unusable.
    Geometry(String),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Device(e) => write!(f, "journal device error: {e}"),
            JournalError::Full { needed, capacity } => write!(
                f,
                "transaction needs {needed} journal slots but the ring holds {capacity}"
            ),
            JournalError::Geometry(msg) => write!(f, "bad journal geometry: {msg}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<BlockError> for JournalError {
    fn from(e: BlockError) -> Self {
        JournalError::Device(e)
    }
}

/// Placement of the journal region on the device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalGeometry {
    /// First block of the journal region.
    pub start: u64,
    /// Total blocks in the region (anchors + ring).
    pub blocks: u64,
    /// Device block size in bytes.
    pub block_size: usize,
}

impl JournalGeometry {
    fn ring_slots(&self) -> u64 {
        self.blocks.saturating_sub(ANCHOR_SLOTS)
    }

    fn ring_block(&self, slot: u64) -> u64 {
        self.start + ANCHOR_SLOTS + (slot % self.ring_slots())
    }
}

/// A redo buffer: the staged block images of one multi-block update.
///
/// Writes deduplicate by block (last wins), so an update that touches the
/// same block twice journals and applies one image.
#[derive(Default)]
pub struct Tx {
    writes: Vec<(u64, Vec<u8>)>,
    index: HashMap<u64, usize>,
}

impl Tx {
    /// Create an empty transaction.
    pub fn new() -> Self {
        Tx::default()
    }

    /// Stage `data` as the new image of `block`.
    pub fn write(&mut self, block: u64, data: Vec<u8>) {
        match self.index.get(&block) {
            Some(&i) => self.writes[i].1 = data,
            None => {
                self.index.insert(block, self.writes.len());
                self.writes.push((block, data));
            }
        }
    }

    /// The staged image of `block`, if any (read-your-writes overlay).
    pub fn read(&self, block: u64) -> Option<&[u8]> {
        self.index.get(&block).map(|&i| self.writes[i].1.as_slice())
    }

    /// Number of distinct blocks staged.
    pub fn len(&self) -> usize {
        self.writes.len()
    }

    /// True when nothing has been staged.
    pub fn is_empty(&self) -> bool {
        self.writes.is_empty()
    }

    /// Consume the transaction, returning its `(block, image)` pairs in
    /// staging order (deduplicated, last write wins).  Callers that must
    /// split an oversized update into several ring-sized transactions use
    /// this to repartition the write set.
    pub fn into_writes(self) -> Vec<(u64, Vec<u8>)> {
        self.writes
    }
}

/// `(target block, image)` pairs of one transaction.
type TxWrites = Vec<(u64, Vec<u8>)>;

/// A transaction whose slot run and sequence numbers are allocated but not
/// yet written; produced by [`Journal::stage`], consumed by
/// [`Journal::complete`].
pub struct StagedTx {
    tx: Tx,
    first_seq: u64,
    first_slot: u64,
    nslots: u64,
}

/// One committed-but-not-yet-reclaimable transaction in the ring.
struct LiveTx {
    first_seq: u64,
    slots: u64,
    /// Flush epoch after which the home-location writes are durable and the
    /// slots may be reclaimed; `u64::MAX` until the apply step finishes.
    reclaimable_at: u64,
}

struct LogState {
    next_seq: u64,
    /// Ring slot index where the next allocation starts.
    head: u64,
    /// Ring slots between the durable anchor tail and the head.
    used: u64,
    /// Tail recorded by the last durable anchor.
    durable_tail_seq: u64,
    live: VecDeque<LiveTx>,
}

struct GateState {
    completed: u64,
    flushing: bool,
    /// Callers currently inside `flush_covering` (metrics only: the batch
    /// size a finishing flush reports is the number of callers it covers).
    waiters: u64,
}

/// Group-commit gate: one flush serves every committer that arrived before
/// it started.
struct CommitGate {
    state: StdMutex<GateState>,
    cv: Condvar,
    completed: AtomicU64,
    /// Group-commit metrics (flush count, batch sizes, caller stalls);
    /// detached/disabled until the volume attaches its registry.
    stats: Arc<GateStats>,
}

impl CommitGate {
    fn new() -> Self {
        CommitGate {
            state: StdMutex::new(GateState {
                completed: 0,
                flushing: false,
                waiters: 0,
            }),
            cv: Condvar::new(),
            completed: AtomicU64::new(0),
            stats: Arc::new(GateStats::new(false)),
        }
    }

    fn completed(&self) -> u64 {
        self.completed.load(Ordering::Acquire)
    }

    /// `(completed, flushing)` snapshot, for computing when a just-finished
    /// apply becomes durable.
    fn epoch(&self) -> (u64, bool) {
        let g = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        (g.completed, g.flushing)
    }

    /// Block until a device flush that *started after this call* has
    /// completed.  Whoever finds the gate idle becomes the leader and
    /// flushes once for every waiter.
    fn flush_covering<D: BlockDevice>(&self, dev: &D) -> JournalResult<()> {
        // Covers the whole gate visit: leading the flush or stalling behind
        // someone else's both attribute to `gate_flush` (the nested device
        // flush shows up as `device_io` self-time).
        let _s = span::span(span::Phase::GateFlush);
        let stall_timer = if self.stats.is_enabled() {
            Some(Instant::now())
        } else {
            None
        };
        let mut g = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        g.waiters += 1;
        let need = g.completed + 1 + u64::from(g.flushing);
        let outcome = loop {
            if g.completed >= need {
                break Ok(());
            }
            if !g.flushing {
                g.flushing = true;
                drop(g);
                let result = dev.flush();
                g = self.state.lock().unwrap_or_else(PoisonError::into_inner);
                g.flushing = false;
                if result.is_ok() {
                    g.completed += 1;
                    self.completed.store(g.completed, Ordering::Release);
                    if stall_timer.is_some() {
                        self.stats.flushes.fetch_add(1, Ordering::Relaxed);
                        // Everyone currently inside the gate (leader
                        // included) is covered by this flush.
                        self.stats.batch.record(g.waiters);
                    }
                }
                self.cv.notify_all();
                if let Err(e) = result {
                    break Err(JournalError::from(e));
                }
            } else {
                g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
            }
        };
        g.waiters -= 1;
        drop(g);
        if let Some(start) = stall_timer {
            self.stats
                .stall_ns
                .record(start.elapsed().as_nanos() as u64);
        }
        outcome
    }
}

/// What [`Journal::replay`] found and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Committed transactions redone.
    pub committed: usize,
    /// Incomplete or torn transactions discarded.
    pub discarded: usize,
    /// Home-location blocks rewritten from the journal.
    pub blocks_recovered: usize,
}

/// The write-ahead journal over a reserved device region.
///
/// All methods take `&self`; see the module docs for the internal lock order
/// and the commit protocol.
pub struct Journal {
    geo: JournalGeometry,
    keys: JournalKeys,
    state: TimedMutex<LogState>,
    gate: CommitGate,
    /// Lock-free mirror of `LogState::used`, republished whenever the
    /// staging/reclaim paths change it, so the checkpoint daemon and
    /// commit-steal check read ring pressure without touching the state
    /// lock.
    used_slots: AtomicU64,
}

impl Journal {
    /// Open a journal over an already-formatted region.  Call
    /// [`replay`](Self::replay) before trusting any other on-device state.
    pub fn open(geo: JournalGeometry, salt: u64) -> JournalResult<Self> {
        if geo.ring_slots() < 4 {
            return Err(JournalError::Geometry(format!(
                "journal region of {} blocks leaves fewer than 4 ring slots",
                geo.blocks
            )));
        }
        if geo.block_size < 128 {
            return Err(JournalError::Geometry(format!(
                "block size {} too small for journal slots",
                geo.block_size
            )));
        }
        Ok(Journal {
            keys: JournalKeys::derive(salt),
            state: TimedMutex::new(LogState {
                next_seq: 1,
                head: 0,
                used: 0,
                durable_tail_seq: 1,
                live: VecDeque::new(),
            }),
            gate: CommitGate::new(),
            geo,
            used_slots: AtomicU64::new(0),
        })
    }

    /// Format the journal region: write **both** anchor slots declaring an
    /// empty log, so no stale anchor from a previous life of the device can
    /// outrank them at the first replay.  The caller is responsible for the
    /// ring slots themselves no longer decoding under this journal's key
    /// (`PlainFs::format` overwrites the region — random fill or zeros —
    /// precisely because the salt derives deterministically from the format
    /// seed, so re-formatting a reused device could otherwise leave old
    /// transactions replayable).
    pub fn format<D: BlockDevice>(geo: JournalGeometry, salt: u64, dev: &D) -> JournalResult<Self> {
        let journal = Self::open(geo, salt)?;
        journal.write_anchor(dev, 0, 1)?;
        journal.write_anchor(dev, 1, 1)?;
        dev.flush()?;
        Ok(journal)
    }

    /// The region geometry.
    pub fn geometry(&self) -> &JournalGeometry {
        &self.geo
    }

    /// Wire this journal into a volume-wide observability registry: the
    /// log-state mutex reports as `journal.state` and the commit gate's
    /// group-commit metrics (flush count, batch sizes, caller stalls) land
    /// in the registry's [`GateStats`].  Called once during volume assembly,
    /// before the journal is shared.
    pub fn attach_obs(&mut self, obs: &Arc<Obs>) {
        self.state.set_stats(obs.journal_state.clone());
        self.gate.stats = obs.gate.clone();
    }

    /// Ring capacity in slots.
    pub fn capacity_slots(&self) -> u64 {
        self.geo.ring_slots()
    }

    /// Current ring occupancy `(used slots, capacity)` from the lock-free
    /// gauge — safe to poll from the checkpoint daemon or a commit path
    /// without taking the log-state lock.
    pub fn occupancy(&self) -> (u64, u64) {
        (
            self.used_slots.load(Ordering::Relaxed),
            self.geo.ring_slots(),
        )
    }

    /// Ring occupancy in permille (0–1000) of capacity.
    pub fn occupancy_permille(&self) -> u64 {
        let (used, capacity) = self.occupancy();
        used.saturating_mul(1000).checked_div(capacity).unwrap_or(0)
    }

    /// Worst commit-gate stall seen so far (ns; 0 when obs is disabled).
    /// The stall watchdog compares this against its threshold to flag a
    /// wedged flush path; summarizing the histogram is cheap enough for a
    /// poll every few milliseconds.
    pub fn gate_stall_max_ns(&self) -> u64 {
        self.gate.stats.stall_ns.summary().max
    }

    /// Republish the occupancy gauge from a held log state.
    fn publish_occupancy(&self, state: &LogState) {
        self.used_slots.store(state.used, Ordering::Relaxed);
    }

    /// Largest number of target blocks a single transaction can carry.
    pub fn max_tx_targets(&self) -> u64 {
        let ring = self.geo.ring_slots();
        let mut t = ring.saturating_sub(2);
        while t > 0 && slots_for(t as usize, self.geo.block_size) > ring {
            t -= 1;
        }
        t
    }

    fn write_anchor<D: BlockDevice>(&self, dev: &D, seq: u64, tail_seq: u64) -> JournalResult<()> {
        let abs = self.geo.start + (seq % ANCHOR_SLOTS);
        let slot = Slot {
            kind: SlotKind::Anchor,
            seq,
            txid: 0,
            body: SlotBody::Anchor { tail_seq },
        };
        let sealed = seal_slot(&self.keys, abs, &slot, self.geo.block_size);
        dev.write_block(abs, &sealed)?;
        Ok(())
    }

    /// Reclaim ring space: pop reclaimable live transactions off the front,
    /// persist an anchor past them, and shrink `used`.  Called with the log
    /// state held; may flush the device.
    fn reclaim<D: BlockDevice>(
        &self,
        dev: &D,
        state: &mut LogState,
        needed: u64,
    ) -> JournalResult<()> {
        let ring = self.geo.ring_slots();
        if needed > ring {
            return Err(JournalError::Full {
                needed,
                capacity: ring,
            });
        }
        let mut flushed_once = false;
        while state.used + needed > ring {
            let completed = self.gate.completed();
            // Count the reclaimable front run without popping it: if the
            // anchor write or its flush fails, the entries must stay live so
            // a later pass (or a remount) can still account for their slots.
            let mut freed = 0u64;
            let mut eligible = 0usize;
            for t in state.live.iter() {
                if t.reclaimable_at > completed {
                    break;
                }
                freed += t.slots;
                eligible += 1;
            }
            if freed > 0 {
                let tail = state
                    .live
                    .get(eligible)
                    .map(|t| t.first_seq)
                    .unwrap_or(state.next_seq);
                let anchor_seq = state.next_seq;
                state.next_seq += 1;
                self.write_anchor(dev, anchor_seq, tail)?;
                // The anchor must be durable before any reclaimed slot is
                // overwritten, or replay could mistake a half-overwritten
                // old transaction for the current log.
                self.gate.flush_covering(dev)?;
                state.live.drain(..eligible);
                state.durable_tail_seq = tail;
                state.used -= freed;
                self.publish_occupancy(state);
                continue;
            }
            // Nothing reclaimable yet.  If transactions are merely waiting
            // for a flush to make their home writes durable, flush once and
            // retry; otherwise the ring is genuinely full of un-applied
            // transactions (concurrent committers mid-protocol).
            if !flushed_once
                && state
                    .live
                    .iter()
                    .any(|t| t.reclaimable_at != u64::MAX && t.reclaimable_at > completed)
            {
                self.gate.flush_covering(dev)?;
                flushed_once = true;
                continue;
            }
            return Err(JournalError::Full {
                needed,
                capacity: ring,
            });
        }
        Ok(())
    }

    /// Commit `tx`: journal its intent, group-flush, then apply the staged
    /// images to their home locations.  On return the update is durable.
    /// Equivalent to [`stage`](Self::stage) followed by
    /// [`complete`](Self::complete).
    pub fn commit<D: BlockDevice>(&self, dev: &D, tx: Tx) -> JournalResult<()> {
        match self.stage(dev, tx)? {
            Some(staged) => self.complete(dev, staged),
            None => Ok(()),
        }
    }

    /// First half of a commit: allocate the transaction's slot run and
    /// sequence numbers (reclaiming ring space if needed).  No transaction
    /// data touches the device yet.
    ///
    /// Callers that snapshot shared state into the transaction (the bitmap)
    /// call `stage` while still holding the lock guarding that state, so
    /// snapshot order and replay (sequence) order agree; the expensive half
    /// ([`complete`](Self::complete)) then runs outside that lock.  Returns
    /// `None` for an empty transaction.
    pub fn stage<D: BlockDevice>(&self, dev: &D, tx: Tx) -> JournalResult<Option<StagedTx>> {
        if tx.is_empty() {
            return Ok(None);
        }
        let _s = span::span(span::Phase::JournalStage);
        let nslots = slots_for(tx.len(), self.geo.block_size);
        let state = &mut *self.state.lock();
        self.reclaim(dev, state, nslots)?;
        let staged = Self::stage_locked(state, &self.geo, tx, nslots);
        self.publish_occupancy(state);
        Ok(Some(staged))
    }

    /// [`stage`](Self::stage) for a whole batch under a **single** log-state
    /// hold: every transaction gets its own slot run and sequence numbers
    /// (consecutive, in `txs` order), so each replays independently, but the
    /// lock acquisition and any ring-space reclaim are paid once for the
    /// batch.  Empty transactions are skipped.  On [`JournalError::Full`]
    /// nothing was allocated — the batch must fit the ring whole, so callers
    /// split oversized batches (see [`slots_for_targets`](Self::slots_for_targets)).
    pub fn stage_many<D: BlockDevice>(
        &self,
        dev: &D,
        txs: Vec<Tx>,
    ) -> JournalResult<Vec<StagedTx>> {
        let txs: Vec<Tx> = txs.into_iter().filter(|t| !t.is_empty()).collect();
        if txs.is_empty() {
            return Ok(Vec::new());
        }
        let _s = span::span(span::Phase::JournalStage);
        let needed: u64 = txs
            .iter()
            .map(|t| slots_for(t.len(), self.geo.block_size))
            .sum();
        let state = &mut *self.state.lock();
        self.reclaim(dev, state, needed)?;
        let staged = txs
            .into_iter()
            .map(|tx| {
                let nslots = slots_for(tx.len(), self.geo.block_size);
                Self::stage_locked(state, &self.geo, tx, nslots)
            })
            .collect();
        self.publish_occupancy(state);
        Ok(staged)
    }

    /// Allocate one transaction's slot run from an already-reclaimed log
    /// state (shared by [`stage`](Self::stage) and
    /// [`stage_many`](Self::stage_many)).
    fn stage_locked(state: &mut LogState, geo: &JournalGeometry, tx: Tx, nslots: u64) -> StagedTx {
        let first_seq = state.next_seq;
        let first_slot = state.head;
        state.next_seq += nslots;
        state.head = (state.head + nslots) % geo.ring_slots();
        state.used += nslots;
        state.live.push_back(LiveTx {
            first_seq,
            slots: nslots,
            reclaimable_at: u64::MAX,
        });
        StagedTx {
            tx,
            first_seq,
            first_slot,
            nslots,
        }
    }

    /// Ring slots a transaction carrying `n` target blocks would occupy.
    /// Callers batching transactions for [`stage_many`](Self::stage_many)
    /// use this to keep a batch within the ring.
    pub fn slots_for_targets(&self, n: usize) -> u64 {
        slots_for(n, self.geo.block_size)
    }

    /// Second half of a commit: [`persist`](Self::persist) (the commit
    /// point) followed by [`apply`](Self::apply).
    ///
    /// An error after the flush step means the transaction may replay on the
    /// next mount even though the caller sees a failure — the usual fsync
    /// contract (a failed commit is *allowed* to be durable, never required).
    pub fn complete<D: BlockDevice>(&self, dev: &D, staged: StagedTx) -> JournalResult<()> {
        self.persist(dev, &staged)?;
        self.apply(dev, staged, || Ok(()))
    }

    /// Make a staged transaction durable: seal and write its slot run, then
    /// wait for the group flush — the commit point.
    ///
    /// On an error the transaction did **not** (reliably) commit: its slots
    /// are marked reclaimable and callers should treat the operation as
    /// failed and roll back their own state.  (After a *flush* error the
    /// slots might still have reached the platter whole, so a crash before
    /// the slots are reclaimed can legitimately resurrect the transaction —
    /// the fsync contract.  A volume that sees persist errors should be
    /// remounted.)
    pub fn persist<D: BlockDevice>(&self, dev: &D, staged: &StagedTx) -> JournalResult<()> {
        self.persist_many(dev, std::slice::from_ref(staged))
    }

    /// [`persist`](Self::persist) for a whole batch: seal every staged
    /// transaction's slot run, submit them as **one** device write, and wait
    /// for **one** group flush covering the entire batch — the shared commit
    /// point.  Each transaction keeps its own slot run and commit record, so
    /// replay still treats them independently; only the submission and the
    /// flush are amortized.
    ///
    /// On an error the whole batch is abandoned (every transaction's slots
    /// marked reclaimable) and the caller must treat all of them as failed —
    /// the batch shares one commit point, so there is no per-transaction
    /// partial success.
    pub fn persist_many<D: BlockDevice>(&self, dev: &D, staged: &[StagedTx]) -> JournalResult<()> {
        if staged.is_empty() {
            return Ok(());
        }
        // On any failure before the flush returns, the transactions' slots
        // stay allocated but hold garbage (or never-committed runs); mark
        // them immediately reclaimable so the ring is not wedged.
        let abandon = |err: JournalError| -> JournalError {
            let state = &mut *self.state.lock();
            for s in staged {
                if let Some(t) = state.live.iter_mut().find(|t| t.first_seq == s.first_seq) {
                    t.reclaimable_at = 0;
                }
            }
            err
        };

        let total_slots: u64 = staged.iter().map(|s| s.nslots).sum();
        let mut blocks = Vec::with_capacity(total_slots as usize);
        let mut images = Vec::with_capacity(total_slots as usize * self.geo.block_size);
        for s in staged {
            self.seal_run(s, &mut blocks, &mut images);
        }
        dev.write_blocks(&blocks, &images)
            .map_err(|e| abandon(e.into()))?;

        // The group flush is the commit point (for the whole batch).
        self.gate.flush_covering(dev).map_err(abandon)?;
        Ok(())
    }

    /// Seal one staged transaction's slot run — interleaved intents and
    /// payloads, then the commit record — appending the ring blocks and
    /// sealed images to `blocks` / `images`.
    fn seal_run(&self, staged: &StagedTx, blocks: &mut Vec<u64>, images: &mut Vec<u8>) {
        let StagedTx {
            tx,
            first_seq,
            first_slot,
            nslots,
        } = staged;
        let (first_seq, first_slot, nslots) = (*first_seq, *first_slot, *nslots);
        let bs = self.geo.block_size;
        let n_targets = tx.len();
        let cap = intent_capacity(bs).max(1);
        let mut seq = first_seq;
        let mut slot = first_slot;
        let mut idx = 0usize;
        while idx < n_targets {
            let chunk_end = (idx + cap).min(n_targets);
            let chunk = &tx.writes[idx..chunk_end];
            // Payload seqs follow the intent's seq immediately.
            let mut entries = Vec::with_capacity(chunk.len());
            for (i, (target, image)) in chunk.iter().enumerate() {
                let payload_seq = seq + 1 + i as u64;
                entries.push((*target, self.keys.payload_check(image, payload_seq)));
            }
            let intent = Slot {
                kind: SlotKind::Intent,
                seq,
                txid: first_seq,
                body: SlotBody::Intent {
                    n_targets: n_targets as u32,
                    first_index: idx as u32,
                    entries,
                },
            };
            let abs = self.geo.ring_block(slot);
            blocks.push(abs);
            images.extend_from_slice(&seal_slot(&self.keys, abs, &intent, bs));
            seq += 1;
            slot += 1;
            for (_, image) in chunk {
                let abs = self.geo.ring_block(slot);
                blocks.push(abs);
                images.extend_from_slice(&seal_payload(&self.keys, abs, image));
                seq += 1;
                slot += 1;
            }
            idx = chunk_end;
        }
        let commit_slot = Slot {
            kind: SlotKind::Commit,
            seq,
            txid: first_seq,
            body: SlotBody::Commit {
                n_targets: n_targets as u32,
                total_slots: nslots as u32,
            },
        };
        let abs = self.geo.ring_block(slot);
        blocks.push(abs);
        images.extend_from_slice(&seal_slot(&self.keys, abs, &commit_slot, bs));
    }

    /// Apply a persisted (committed) transaction's staged images to their
    /// home locations in one batched submission, run `post_apply` (the
    /// caller's chance to re-assert shared home blocks — the bitmap — in a
    /// newest-state-wins way under its own lock), and only then make the
    /// transaction's slots reclaimable.
    ///
    /// A failure anywhere leaves the transaction committed but
    /// un-checkpointed: its slots are never reclaimed, so the next replay
    /// redoes it.
    pub fn apply<D: BlockDevice, F: FnOnce() -> JournalResult<()>>(
        &self,
        dev: &D,
        staged: StagedTx,
        post_apply: F,
    ) -> JournalResult<()> {
        let _s = span::span(span::Phase::JournalApply);
        let (targets, data) = flatten_writes(&staged.tx.writes, self.geo.block_size);
        dev.write_blocks(&targets, &data)?;
        post_apply()?;

        // The home writes become durable at the next flush that starts
        // after this point.
        let (completed, flushing) = self.gate.epoch();
        let durable_at = completed + 1 + u64::from(flushing);
        let state = &mut *self.state.lock();
        if let Some(t) = state
            .live
            .iter_mut()
            .find(|t| t.first_seq == staged.first_seq)
        {
            t.reclaimable_at = durable_at;
        }
        Ok(())
    }

    /// [`apply`](Self::apply) for a whole batch: one batched home-location
    /// submission covering every transaction's staged images (in batch
    /// order, so a later transaction's image wins on a shared block), one
    /// `post_apply`, then every transaction's slots become reclaimable at
    /// the same flush epoch.  A failure leaves the whole batch committed but
    /// un-checkpointed — replay redoes all of it.
    pub fn apply_many<D: BlockDevice, F: FnOnce() -> JournalResult<()>>(
        &self,
        dev: &D,
        staged: Vec<StagedTx>,
        post_apply: F,
    ) -> JournalResult<()> {
        if staged.is_empty() {
            return Ok(());
        }
        let _s = span::span(span::Phase::JournalApply);
        let bs = self.geo.block_size;
        let n: usize = staged.iter().map(|s| s.tx.len()).sum();
        let mut targets = Vec::with_capacity(n);
        let mut data = Vec::with_capacity(n * bs);
        for s in &staged {
            for (block, image) in &s.tx.writes {
                targets.push(*block);
                data.extend_from_slice(image);
            }
        }
        dev.write_blocks(&targets, &data)?;
        post_apply()?;

        // The home writes become durable at the next flush that starts
        // after this point.
        let (completed, flushing) = self.gate.epoch();
        let durable_at = completed + 1 + u64::from(flushing);
        let state = &mut *self.state.lock();
        for s in &staged {
            if let Some(t) = state.live.iter_mut().find(|t| t.first_seq == s.first_seq) {
                t.reclaimable_at = durable_at;
            }
        }
        Ok(())
    }

    /// Durability barrier without a checkpoint: block until a device flush
    /// that started after this call has completed, making every transaction
    /// committed so far crash-durable (replay will redo any whose home
    /// writes were still in flight).  Unlike [`Self::sync`] it advances no
    /// tail and writes no anchor, so an `fsync`-grade caller pays one group
    /// flush instead of checkpointing the whole ring.
    pub fn flush_barrier<D: BlockDevice>(&self, dev: &D) -> JournalResult<()> {
        self.gate.flush_covering(dev)
    }

    /// Checkpoint: flush the device (making every applied transaction's home
    /// writes durable), advance the tail over all of them, and persist the
    /// anchor.  After `sync` returns, a crash replays nothing.
    pub fn sync<D: BlockDevice>(&self, dev: &D) -> JournalResult<()> {
        self.gate.flush_covering(dev)?;
        let state = &mut *self.state.lock();
        let completed = self.gate.completed();
        // As in `reclaim`: count the reclaimable front run, persist the
        // anchor, and only then pop — an anchor failure must leave the
        // entries live so their slots stay accounted for.
        let mut freed = 0u64;
        let mut eligible = 0usize;
        for t in state.live.iter() {
            if t.reclaimable_at > completed {
                break;
            }
            freed += t.slots;
            eligible += 1;
        }
        let tail = state
            .live
            .get(eligible)
            .map(|t| t.first_seq)
            .unwrap_or(state.next_seq);
        if freed == 0 && tail == state.durable_tail_seq {
            return Ok(());
        }
        let anchor_seq = state.next_seq;
        state.next_seq += 1;
        self.write_anchor(dev, anchor_seq, tail)?;
        self.gate.flush_covering(dev)?;
        state.live.drain(..eligible);
        state.durable_tail_seq = tail;
        state.used -= freed;
        self.publish_occupancy(state);
        Ok(())
    }

    /// Scan the journal region, redo every committed transaction, and reset
    /// the log.  Must run at mount, before any other structure is read.
    ///
    /// Replay needs **no user keys**: hidden-object payloads were staged as
    /// object-key ciphertext, so redoing them restores exactly the bytes the
    /// crashed commit meant to write, and wrong-key lookups after replay
    /// remain indistinguishable from never-existed objects.
    pub fn replay<D: BlockDevice>(&self, dev: &D) -> JournalResult<ReplayReport> {
        let bs = self.geo.block_size;
        let ring = self.geo.ring_slots();

        // Durable anchor: the newest valid one of the pair.
        let mut tail_seq = 0u64;
        let mut anchor_seq = 0u64;
        for i in 0..ANCHOR_SLOTS {
            let raw = dev.read_block_vec(self.geo.start + i)?;
            if let Some(Slot {
                kind: SlotKind::Anchor,
                seq,
                body: SlotBody::Anchor { tail_seq: t },
                ..
            }) = open_slot(&self.keys, self.geo.start + i, &raw)
            {
                if seq >= anchor_seq {
                    anchor_seq = seq;
                    tail_seq = t;
                }
            }
        }

        // Read the whole ring (in bounded batches) and classify each slot.
        let mut raws: Vec<Vec<u8>> = Vec::with_capacity(ring as usize);
        const BATCH: u64 = 256;
        let mut at = 0u64;
        while at < ring {
            let n = BATCH.min(ring - at);
            let blocks: Vec<u64> = (at..at + n).map(|s| self.geo.ring_block(s)).collect();
            let mut buf = vec![0u8; n as usize * bs];
            dev.read_blocks(&blocks, &mut buf)?;
            for i in 0..n as usize {
                raws.push(buf[i * bs..(i + 1) * bs].to_vec());
            }
            at += n;
        }
        let decoded: Vec<Option<Slot>> = raws
            .iter()
            .enumerate()
            .map(|(s, raw)| open_slot(&self.keys, self.geo.ring_block(s as u64), raw))
            .collect();

        // Walk every intent that opens a transaction (first_index == 0).
        let mut committed: Vec<(u64, TxWrites)> = Vec::new();
        let mut discarded = 0usize;
        let mut max_seq = anchor_seq.max(tail_seq);
        for slot in decoded.iter().flatten() {
            max_seq = max_seq.max(slot.seq);
        }
        for start in 0..ring as usize {
            let Some(Slot {
                kind: SlotKind::Intent,
                seq: first_seq,
                txid,
                body:
                    SlotBody::Intent {
                        n_targets,
                        first_index: 0,
                        ..
                    },
            }) = decoded[start].clone()
            else {
                continue;
            };
            if first_seq < tail_seq || txid != first_seq {
                continue;
            }
            match self.walk_tx(&decoded, &raws, start as u64, first_seq, n_targets) {
                Some(writes) => committed.push((first_seq, writes)),
                None => discarded += 1,
            }
        }

        // Redo in sequence order; later transactions win on shared blocks.
        committed.sort_by_key(|(seq, _)| *seq);
        let mut recovered = 0usize;
        for (_, writes) in &committed {
            let (targets, data) = flatten_writes(writes, bs);
            recovered += targets.len();
            dev.write_blocks(&targets, &data)?;
        }
        if !committed.is_empty() {
            dev.flush()?;
        }

        // Reset the log past everything we saw, so stale slots can never be
        // replayed twice against post-mount writes.
        let reset_seq = max_seq + 2;
        {
            let state = &mut *self.state.lock();
            state.next_seq = reset_seq + 1;
            state.head = 0;
            state.used = 0;
            state.durable_tail_seq = reset_seq + 1;
            state.live.clear();
        }
        self.write_anchor(dev, reset_seq, reset_seq + 1)?;
        dev.flush()?;
        Ok(ReplayReport {
            committed: committed.len(),
            discarded,
            blocks_recovered: recovered,
        })
    }

    /// Validate one transaction's slot run starting at ring slot `start`.
    /// Returns its `(target, image)` list if every intent, payload and the
    /// commit slot check out; `None` for anything torn or incomplete.
    fn walk_tx(
        &self,
        decoded: &[Option<Slot>],
        raws: &[Vec<u8>],
        start: u64,
        first_seq: u64,
        n_targets: u32,
    ) -> Option<TxWrites> {
        let ring = self.geo.ring_slots();
        let total = slots_for(n_targets as usize, self.geo.block_size);
        if total > ring {
            return None;
        }
        let mut writes = Vec::with_capacity(n_targets as usize);
        let mut cursor = start;
        let mut seq = first_seq;
        let mut idx = 0u32;
        loop {
            // Expect an intent at `cursor` with `first_index == idx`.
            let intent = decoded[(cursor % ring) as usize].as_ref()?;
            let (slot_targets, slot_first) = match (&intent.kind, &intent.body) {
                (
                    SlotKind::Intent,
                    SlotBody::Intent {
                        n_targets: nt,
                        first_index,
                        entries,
                    },
                ) if *nt == n_targets && intent.seq == seq && intent.txid == first_seq => {
                    (entries.clone(), *first_index)
                }
                _ => return None,
            };
            if slot_first != idx {
                return None;
            }
            cursor += 1;
            seq += 1;
            for (target, check) in &slot_targets {
                let raw = &raws[(cursor % ring) as usize];
                let image = open_payload(&self.keys, self.geo.ring_block(cursor), raw);
                if self.keys.payload_check(&image, seq) != *check {
                    return None;
                }
                writes.push((*target, image));
                cursor += 1;
                seq += 1;
                idx += 1;
            }
            if idx >= n_targets {
                break;
            }
            if slot_targets.is_empty() {
                return None; // an empty non-final intent cannot make progress
            }
        }
        // The commit slot terminates the run.
        let commit = decoded[(cursor % ring) as usize].as_ref()?;
        match (&commit.kind, &commit.body) {
            (
                SlotKind::Commit,
                SlotBody::Commit {
                    n_targets: nt,
                    total_slots,
                },
            ) if *nt == n_targets
                && commit.seq == seq
                && commit.txid == first_seq
                && u64::from(*total_slots) == total =>
            {
                Some(writes)
            }
            _ => None,
        }
    }
}

/// Flatten `(block, image)` pairs into the parallel arrays
/// [`BlockDevice::write_blocks`] takes.
fn flatten_writes(writes: &[(u64, Vec<u8>)], block_size: usize) -> (Vec<u64>, Vec<u8>) {
    let mut targets = Vec::with_capacity(writes.len());
    let mut data = Vec::with_capacity(writes.len() * block_size);
    for (block, image) in writes {
        targets.push(*block);
        data.extend_from_slice(image);
    }
    (targets, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use stegfs_blockdev::MemBlockDevice;

    const BS: usize = 512;

    fn fixture(journal_blocks: u64, total: u64) -> (MemBlockDevice, Journal) {
        let dev = MemBlockDevice::new(BS, total);
        let geo = JournalGeometry {
            start: 1,
            blocks: journal_blocks,
            block_size: BS,
        };
        let journal = Journal::format(geo, 0xabcd, &dev).unwrap();
        (dev, journal)
    }

    fn reopen(journal: &Journal) -> Journal {
        Journal::open(journal.geometry().clone(), 0xabcd).unwrap()
    }

    #[test]
    fn commit_applies_and_replay_is_idempotent() {
        let (dev, journal) = fixture(32, 128);
        let mut tx = Tx::new();
        tx.write(100, vec![0xaa; BS]);
        tx.write(101, vec![0xbb; BS]);
        tx.write(100, vec![0xac; BS]); // last write wins
        journal.commit(&dev, tx).unwrap();
        assert_eq!(dev.read_block_vec(100).unwrap(), vec![0xac; BS]);
        assert_eq!(dev.read_block_vec(101).unwrap(), vec![0xbb; BS]);

        // Replay on a fresh journal object redoes (harmlessly) or skips.
        let report = reopen(&journal).replay(&dev).unwrap();
        assert!(report.committed <= 1);
        assert_eq!(dev.read_block_vec(100).unwrap(), vec![0xac; BS]);
    }

    #[test]
    fn unapplied_committed_tx_is_replayed() {
        let (dev, journal) = fixture(32, 128);
        // Simulate "slots durable, home writes lost": commit normally, then
        // clobber the home locations as a crash that tore the apply would.
        let mut tx = Tx::new();
        tx.write(100, vec![0x11; BS]);
        tx.write(110, vec![0x22; BS]);
        journal.commit(&dev, tx).unwrap();
        dev.write_block(100, &vec![0u8; BS]).unwrap();
        dev.write_block(110, &vec![0u8; BS]).unwrap();

        let report = reopen(&journal).replay(&dev).unwrap();
        assert_eq!(report.committed, 1);
        assert_eq!(report.blocks_recovered, 2);
        assert_eq!(dev.read_block_vec(100).unwrap(), vec![0x11; BS]);
        assert_eq!(dev.read_block_vec(110).unwrap(), vec![0x22; BS]);
    }

    #[test]
    fn torn_slot_discards_the_whole_tx() {
        let (dev, journal) = fixture(32, 128);
        let before = dev.read_block_vec(100).unwrap();
        let mut tx = Tx::new();
        tx.write(100, vec![0x77; BS]);
        journal.commit(&dev, tx).unwrap();
        // Tear the payload slot (ring slot 1 = start + ANCHOR_SLOTS + 1) and
        // restore the home block, as if neither survived the crash.
        let payload_block = 1 + ANCHOR_SLOTS + 1;
        let mut torn = dev.read_block_vec(payload_block).unwrap();
        torn[40] ^= 0xff;
        dev.write_block(payload_block, &torn).unwrap();
        dev.write_block(100, &before).unwrap();

        let report = reopen(&journal).replay(&dev).unwrap();
        assert_eq!(report.committed, 0);
        assert_eq!(report.discarded, 1);
        assert_eq!(dev.read_block_vec(100).unwrap(), before);
    }

    #[test]
    fn sync_checkpoints_so_replay_finds_nothing() {
        let (dev, journal) = fixture(32, 128);
        let mut tx = Tx::new();
        tx.write(120, vec![9; BS]);
        journal.commit(&dev, tx).unwrap();
        journal.sync(&dev).unwrap();
        let report = reopen(&journal).replay(&dev).unwrap();
        assert_eq!(report, ReplayReport::default());
        assert_eq!(dev.read_block_vec(120).unwrap(), vec![9; BS]);
    }

    #[test]
    fn flush_barrier_is_durable_but_not_a_checkpoint() {
        let (dev, journal) = fixture(32, 128);
        let mut tx = Tx::new();
        tx.write(120, vec![9; BS]);
        journal.commit(&dev, tx).unwrap();
        journal.flush_barrier(&dev).unwrap();

        // The barrier advanced no tail and wrote no anchor: the committed
        // transaction is still live in the ring, so a crash that tears the
        // home write is repaired by replay (that is what makes the barrier
        // a durability point).
        dev.write_block(120, &vec![0u8; BS]).unwrap();
        let report = reopen(&journal).replay(&dev).unwrap();
        assert_eq!(report.committed, 1);
        assert_eq!(dev.read_block_vec(120).unwrap(), vec![9; BS]);
        // (Contrast with `sync_checkpoints_so_replay_finds_nothing`: after a
        // full sync the same replay finds an empty log.)
    }

    #[test]
    fn ring_wraps_and_reclaims() {
        // Ring of 14 slots; each 2-target tx takes 4 slots.  20 commits force
        // many wraps and anchor-gated reclaims.
        let (dev, journal) = fixture(ANCHOR_SLOTS + 14, 256);
        for i in 0..20u64 {
            let mut tx = Tx::new();
            tx.write(100 + (i % 8), vec![i as u8; BS]);
            tx.write(120 + (i % 8), vec![i as u8 ^ 0xff; BS]);
            journal.commit(&dev, tx).unwrap();
        }
        for i in 12..20u64 {
            assert_eq!(
                dev.read_block_vec(100 + (i % 8)).unwrap(),
                vec![i as u8; BS]
            );
        }
        let report = reopen(&journal).replay(&dev).unwrap();
        // Everything still in the ring replays idempotently.
        for i in 12..20u64 {
            assert_eq!(
                dev.read_block_vec(100 + (i % 8)).unwrap(),
                vec![i as u8; BS]
            );
        }
        assert!(report.discarded <= 20);
    }

    #[test]
    fn oversized_tx_rejected() {
        let (dev, journal) = fixture(ANCHOR_SLOTS + 6, 256);
        let mut tx = Tx::new();
        for b in 0..8u64 {
            tx.write(100 + b, vec![1; BS]);
        }
        match journal.commit(&dev, tx) {
            Err(JournalError::Full { .. }) => {}
            other => panic!("expected Full, got {other:?}"),
        }
    }

    #[test]
    fn multi_intent_tx_roundtrips() {
        // More targets than one intent slot carries at BS=512.
        let cap = intent_capacity(BS);
        let n = cap + 3;
        let (dev, journal) = fixture(ANCHOR_SLOTS + slots_for(n, BS) + 2, 512);
        let mut tx = Tx::new();
        for i in 0..n as u64 {
            tx.write(200 + i, vec![(i % 251) as u8; BS]);
        }
        journal.commit(&dev, tx).unwrap();
        // Clobber the home writes and replay.
        for i in 0..n as u64 {
            dev.write_block(200 + i, &vec![0u8; BS]).unwrap();
        }
        let report = reopen(&journal).replay(&dev).unwrap();
        assert_eq!(report.committed, 1);
        for i in 0..n as u64 {
            assert_eq!(
                dev.read_block_vec(200 + i).unwrap(),
                vec![(i % 251) as u8; BS]
            );
        }
    }

    #[test]
    fn batched_staging_replays_each_tx_independently() {
        let (dev, journal) = fixture(64, 256);
        let txs: Vec<Tx> = (0..3u64)
            .map(|i| {
                let mut tx = Tx::new();
                tx.write(100 + i * 4, vec![i as u8 + 1; BS]);
                tx.write(101 + i * 4, vec![i as u8 + 0x11; BS]);
                tx
            })
            .collect();
        let staged = journal.stage_many(&dev, txs).unwrap();
        assert_eq!(staged.len(), 3);
        journal.persist_many(&dev, &staged).unwrap();
        // Crash before the apply: home blocks never written, but all three
        // transactions share the durable commit point and must replay — each
        // as its own transaction.
        let report = reopen(&journal).replay(&dev).unwrap();
        assert_eq!(report.committed, 3);
        assert_eq!(report.blocks_recovered, 6);
        for i in 0..3u64 {
            assert_eq!(
                dev.read_block_vec(100 + i * 4).unwrap(),
                vec![i as u8 + 1; BS]
            );
            assert_eq!(
                dev.read_block_vec(101 + i * 4).unwrap(),
                vec![i as u8 + 0x11; BS]
            );
        }
    }

    #[test]
    fn batched_apply_checkpoints_like_singles() {
        let (dev, journal) = fixture(64, 256);
        let txs: Vec<Tx> = (0..4u64)
            .map(|i| {
                let mut tx = Tx::new();
                tx.write(140 + i, vec![0x40 + i as u8; BS]);
                tx
            })
            .collect();
        let staged = journal.stage_many(&dev, txs).unwrap();
        journal.persist_many(&dev, &staged).unwrap();
        journal.apply_many(&dev, staged, || Ok(())).unwrap();
        for i in 0..4u64 {
            assert_eq!(
                dev.read_block_vec(140 + i).unwrap(),
                vec![0x40 + i as u8; BS]
            );
        }
        // After a full sync the batch is reclaimed exactly like individually
        // committed transactions: replay finds an empty log.
        journal.sync(&dev).unwrap();
        let report = reopen(&journal).replay(&dev).unwrap();
        assert_eq!(report, ReplayReport::default());
    }

    #[test]
    fn batched_stage_rejects_overfull_batch_atomically() {
        let (dev, journal) = fixture(ANCHOR_SLOTS + 8, 256);
        // Each 2-target tx takes 4 slots; four of them need 16 > 8 ring slots.
        let txs: Vec<Tx> = (0..4u64)
            .map(|i| {
                let mut tx = Tx::new();
                tx.write(100 + i * 2, vec![1; BS]);
                tx.write(101 + i * 2, vec![2; BS]);
                tx
            })
            .collect();
        match journal.stage_many(&dev, txs) {
            Err(JournalError::Full { .. }) => {}
            other => panic!("expected Full, got {:?}", other.map(|v| v.len())),
        }
        // Nothing was allocated: a ring-sized single tx still stages fine.
        let mut tx = Tx::new();
        tx.write(100, vec![3; BS]);
        journal.commit(&dev, tx).unwrap();
        assert_eq!(dev.read_block_vec(100).unwrap(), vec![3; BS]);
    }

    #[test]
    fn concurrent_commits_group_into_few_flushes() {
        use std::thread;
        let dev = Arc::new(MemBlockDevice::new(BS, 4096));
        let geo = JournalGeometry {
            start: 1,
            blocks: 512,
            block_size: BS,
        };
        let journal = Arc::new(Journal::format(geo, 1, dev.as_ref()).unwrap());
        let threads: Vec<_> = (0..8u64)
            .map(|t| {
                let dev = Arc::clone(&dev);
                let journal = Arc::clone(&journal);
                thread::spawn(move || {
                    for i in 0..16u64 {
                        let mut tx = Tx::new();
                        tx.write(1024 + t * 32 + (i % 32), vec![t as u8; BS]);
                        journal.commit(dev.as_ref(), tx).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        for t in 0..8u64 {
            assert_eq!(
                dev.read_block_vec(1024 + t * 32).unwrap(),
                vec![t as u8; BS]
            );
        }
    }
}
