//! On-disk slot format of the steganographic journal.
//!
//! The journal region is an array of *slots*, one device block each.  Every
//! slot — anchor, intent, commit, payload — is exactly one block and is
//! stored encrypted under the volume journal key, so a keyless inspector sees
//! only uniform high-entropy bytes, indistinguishable from the pseudorandom
//! fill the rest of the volume carries.  Records carry **no plain/hidden
//! tag** anywhere: an update to a hidden object's ciphertext blocks and an
//! update to plain metadata serialize to structurally identical records
//! (target block numbers plus block images), which is what keeps the journal
//! from becoming a side channel that attributes activity to hidden files.
//!
//! A transaction occupies a consecutive run of ring slots:
//!
//! ```text
//! intent(0..k0) payload*k0  intent(k0..k1) payload*(k1-k0) ... commit
//! ```
//!
//! * **intent** slots list target block numbers and a checksum of each
//!   payload image (several intents chain when the target list outgrows one
//!   slot);
//! * **payload** slots are raw target-block images with no header at all —
//!   their position and expected sequence number are derived from the intent
//!   in front of them, and their integrity from the intent's checksums;
//! * the **commit** slot terminates the run; a transaction replays only when
//!   every intent, every payload checksum and the commit validate.
//!
//! Sequence numbers are encrypted inside each structured slot (and bound
//! into every payload checksum), so replay can distinguish a current record
//! from a stale same-position record of an earlier ring generation without
//! exposing a plaintext counter on disk.

use stegfs_crypto::kdf::{derive_key, derive_subkey};
use stegfs_crypto::modes::{derive_iv, CtrCipher};
use stegfs_crypto::sha256::{sha256_concat, DIGEST_LEN};

/// Magic bytes identifying a structured journal slot (after decryption).
pub const SLOT_MAGIC: [u8; 4] = *b"SJRN";

/// Number of anchor slots at the start of the journal region (ping-pong
/// pair: a torn anchor write can destroy at most one of them).
pub const ANCHOR_SLOTS: u64 = 2;

/// Bytes of the truncated SHA-256 integrity check in each structured slot
/// and each intent payload-checksum entry.
pub const CHECK_LEN: usize = 16;

/// Byte offset where kind-specific content starts inside a structured slot.
pub const SLOT_BODY: usize = CHECK_LEN + 4 + 1 + 3 + 8 + 8; // check, magic, kind, pad, seq, txid

/// Bytes per intent entry: target block number plus payload image check.
pub const INTENT_ENTRY: usize = 8 + CHECK_LEN;

/// Fixed intent header past [`SLOT_BODY`]: total targets, first index,
/// entries in this slot.
pub const INTENT_FIXED: usize = 4 + 4 + 4;

/// The kind byte of a structured slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotKind {
    /// Declares (part of) a transaction's target list and payload checksums.
    Intent,
    /// Terminates a transaction; its presence (with every intent and payload
    /// validating) is what makes the transaction durable.
    Commit,
    /// Journal anchor: the durable tail sequence number.
    Anchor,
}

impl SlotKind {
    fn to_byte(self) -> u8 {
        match self {
            SlotKind::Intent => 1,
            SlotKind::Commit => 2,
            SlotKind::Anchor => 3,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            1 => Some(SlotKind::Intent),
            2 => Some(SlotKind::Commit),
            3 => Some(SlotKind::Anchor),
            _ => None,
        }
    }
}

/// The derived key material of the journal region.
///
/// The key derives from a salt stored in the plain superblock, so it is
/// *volume-public*: anyone holding the raw device can derive it, exactly as
/// they can parse the bitmap.  What the encryption buys is uniformity — the
/// journal region never exhibits structure a keyless snapshot could diff —
/// while the security argument against a key-deriving inspector rests on the
/// records themselves: hidden-object payloads enter the journal as object-key
/// ciphertext (the journal never sees hidden plaintext), and hidden-update
/// records are structurally identical to the dummy-file maintenance records
/// that churn constantly, so observed journal activity attributes to nothing.
pub struct JournalKeys {
    enc_key: [u8; DIGEST_LEN],
}

impl JournalKeys {
    /// Derive the journal key set from the volume's journal salt.
    pub fn derive(salt: u64) -> Self {
        let master = derive_key(&salt.to_be_bytes(), b"stegfs/journal", b"journal-region");
        JournalKeys {
            enc_key: derive_subkey(&master, b"journal-slot-encryption"),
        }
    }

    /// Encrypt or decrypt (CTR is an involution) a slot in place, keyed by
    /// its absolute device block number.
    ///
    /// Slot reuse across ring generations reuses the block-derived IV; as
    /// with hidden-object block encryption elsewhere in the workspace, the
    /// resulting multi-snapshot distinguishability is an accepted modelling
    /// assumption (a single seized image reveals nothing).
    pub fn apply(&self, abs_block: u64, data: &mut [u8]) {
        let cipher = CtrCipher::new(&self.enc_key);
        let iv = derive_iv(&self.enc_key, abs_block);
        cipher.apply(&iv, data);
    }

    /// Truncated integrity check of a payload image at sequence `seq`.
    pub fn payload_check(&self, image: &[u8], seq: u64) -> [u8; CHECK_LEN] {
        let digest = sha256_concat(&[b"stegfs-journal-payload", &seq.to_be_bytes(), image]);
        let mut out = [0u8; CHECK_LEN];
        out.copy_from_slice(&digest[..CHECK_LEN]);
        out
    }
}

fn slot_check(abs_block: u64, body: &[u8]) -> [u8; CHECK_LEN] {
    let digest = sha256_concat(&[b"stegfs-journal-slot", &abs_block.to_be_bytes(), body]);
    let mut out = [0u8; CHECK_LEN];
    out.copy_from_slice(&digest[..CHECK_LEN]);
    out
}

/// A decoded structured slot.
#[derive(Debug, Clone)]
pub struct Slot {
    /// What the slot is.
    pub kind: SlotKind,
    /// Monotonic journal sequence number of the slot.
    pub seq: u64,
    /// First sequence number of the owning transaction (doubles as its id);
    /// for anchors, unused (zero).
    pub txid: u64,
    /// Kind-specific content.
    pub body: SlotBody,
}

/// Kind-specific decoded content of a [`Slot`].
#[derive(Debug, Clone)]
pub enum SlotBody {
    /// An intent slot's slice of the transaction's target list.
    Intent {
        /// Total number of target blocks in the transaction.
        n_targets: u32,
        /// Index (into the transaction's target list) of this slot's first
        /// entry.
        first_index: u32,
        /// `(target block, payload image check)` entries carried here.
        entries: Vec<(u64, [u8; CHECK_LEN])>,
    },
    /// A commit slot.
    Commit {
        /// Total number of target blocks, cross-checked against the intents.
        n_targets: u32,
        /// Total slots the transaction occupies (intents + payloads + 1).
        total_slots: u32,
    },
    /// An anchor slot.
    Anchor {
        /// Oldest sequence number that may still need replay; everything
        /// before it has been checkpointed and its slots may be reused.
        tail_seq: u64,
    },
}

/// Number of intent entries one slot of `block_size` bytes can carry.
pub fn intent_capacity(block_size: usize) -> usize {
    block_size.saturating_sub(SLOT_BODY + INTENT_FIXED) / INTENT_ENTRY
}

/// Total ring slots a transaction of `n_targets` target blocks occupies
/// (intents + payloads + commit).
pub fn slots_for(n_targets: usize, block_size: usize) -> u64 {
    let cap = intent_capacity(block_size).max(1);
    let intents = n_targets.div_ceil(cap).max(1);
    (n_targets + intents + 1) as u64
}

fn encode_common(buf: &mut [u8], kind: SlotKind, seq: u64, txid: u64) {
    buf[CHECK_LEN..CHECK_LEN + 4].copy_from_slice(&SLOT_MAGIC);
    buf[CHECK_LEN + 4] = kind.to_byte();
    buf[CHECK_LEN + 8..CHECK_LEN + 16].copy_from_slice(&seq.to_be_bytes());
    buf[CHECK_LEN + 16..CHECK_LEN + 24].copy_from_slice(&txid.to_be_bytes());
}

/// Serialize and encrypt a structured slot for absolute block `abs_block`.
pub fn seal_slot(keys: &JournalKeys, abs_block: u64, slot: &Slot, block_size: usize) -> Vec<u8> {
    let mut buf = vec![0u8; block_size];
    encode_common(&mut buf, slot.kind, slot.seq, slot.txid);
    let mut off = SLOT_BODY;
    match &slot.body {
        SlotBody::Intent {
            n_targets,
            first_index,
            entries,
        } => {
            buf[off..off + 4].copy_from_slice(&n_targets.to_be_bytes());
            buf[off + 4..off + 8].copy_from_slice(&first_index.to_be_bytes());
            buf[off + 8..off + 12].copy_from_slice(&(entries.len() as u32).to_be_bytes());
            off += INTENT_FIXED;
            for (target, check) in entries {
                buf[off..off + 8].copy_from_slice(&target.to_be_bytes());
                buf[off + 8..off + 8 + CHECK_LEN].copy_from_slice(check);
                off += INTENT_ENTRY;
            }
        }
        SlotBody::Commit {
            n_targets,
            total_slots,
        } => {
            buf[off..off + 4].copy_from_slice(&n_targets.to_be_bytes());
            buf[off + 4..off + 8].copy_from_slice(&total_slots.to_be_bytes());
        }
        SlotBody::Anchor { tail_seq } => {
            buf[off..off + 8].copy_from_slice(&tail_seq.to_be_bytes());
        }
    }
    let check = slot_check(abs_block, &buf[CHECK_LEN..]);
    buf[..CHECK_LEN].copy_from_slice(&check);
    keys.apply(abs_block, &mut buf);
    buf
}

/// Decrypt and decode the slot read from absolute block `abs_block`.
/// Returns `None` for anything that does not validate — random fill, torn
/// writes, payload slots — which replay treats as "not a record".
pub fn open_slot(keys: &JournalKeys, abs_block: u64, raw: &[u8]) -> Option<Slot> {
    if raw.len() < SLOT_BODY + INTENT_FIXED {
        return None;
    }
    let mut buf = raw.to_vec();
    keys.apply(abs_block, &mut buf);
    if buf[..CHECK_LEN] != slot_check(abs_block, &buf[CHECK_LEN..]) {
        return None;
    }
    if buf[CHECK_LEN..CHECK_LEN + 4] != SLOT_MAGIC {
        return None;
    }
    let kind = SlotKind::from_byte(buf[CHECK_LEN + 4])?;
    let be64 = |b: &[u8]| u64::from_be_bytes(b.try_into().unwrap());
    let be32 = |b: &[u8]| u32::from_be_bytes(b.try_into().unwrap());
    let seq = be64(&buf[CHECK_LEN + 8..CHECK_LEN + 16]);
    let txid = be64(&buf[CHECK_LEN + 16..CHECK_LEN + 24]);
    let off = SLOT_BODY;
    let body = match kind {
        SlotKind::Intent => {
            let n_targets = be32(&buf[off..off + 4]);
            let first_index = be32(&buf[off + 4..off + 8]);
            let n_here = be32(&buf[off + 8..off + 12]) as usize;
            if n_here > intent_capacity(raw.len()) {
                return None;
            }
            let mut entries = Vec::with_capacity(n_here);
            let mut p = off + INTENT_FIXED;
            for _ in 0..n_here {
                let target = be64(&buf[p..p + 8]);
                let mut check = [0u8; CHECK_LEN];
                check.copy_from_slice(&buf[p + 8..p + 8 + CHECK_LEN]);
                entries.push((target, check));
                p += INTENT_ENTRY;
            }
            SlotBody::Intent {
                n_targets,
                first_index,
                entries,
            }
        }
        SlotKind::Commit => SlotBody::Commit {
            n_targets: be32(&buf[off..off + 4]),
            total_slots: be32(&buf[off + 4..off + 8]),
        },
        SlotKind::Anchor => SlotBody::Anchor {
            tail_seq: be64(&buf[off..off + 8]),
        },
    };
    Some(Slot {
        kind,
        seq,
        txid,
        body,
    })
}

/// Encrypt a payload image for absolute block `abs_block`.
pub fn seal_payload(keys: &JournalKeys, abs_block: u64, image: &[u8]) -> Vec<u8> {
    let mut buf = image.to_vec();
    keys.apply(abs_block, &mut buf);
    buf
}

/// Decrypt a payload image read from absolute block `abs_block`.
pub fn open_payload(keys: &JournalKeys, abs_block: u64, raw: &[u8]) -> Vec<u8> {
    let mut buf = raw.to_vec();
    keys.apply(abs_block, &mut buf);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_roundtrip_all_kinds() {
        let keys = JournalKeys::derive(0xfeed);
        for slot in [
            Slot {
                kind: SlotKind::Intent,
                seq: 7,
                txid: 7,
                body: SlotBody::Intent {
                    n_targets: 5,
                    first_index: 2,
                    entries: vec![(99, [1; CHECK_LEN]), (1234, [2; CHECK_LEN])],
                },
            },
            Slot {
                kind: SlotKind::Commit,
                seq: 12,
                txid: 7,
                body: SlotBody::Commit {
                    n_targets: 5,
                    total_slots: 7,
                },
            },
            Slot {
                kind: SlotKind::Anchor,
                seq: 40,
                txid: 0,
                body: SlotBody::Anchor { tail_seq: 33 },
            },
        ] {
            let sealed = seal_slot(&keys, 500, &slot, 1024);
            assert_eq!(sealed.len(), 1024);
            let opened = open_slot(&keys, 500, &sealed).expect("valid slot");
            assert_eq!(opened.kind, slot.kind);
            assert_eq!(opened.seq, slot.seq);
            assert_eq!(opened.txid, slot.txid);
            match (&opened.body, &slot.body) {
                (
                    SlotBody::Intent {
                        n_targets: a,
                        first_index: b,
                        entries: c,
                    },
                    SlotBody::Intent {
                        n_targets: x,
                        first_index: y,
                        entries: z,
                    },
                ) => {
                    assert_eq!((a, b, c), (x, y, z));
                }
                (
                    SlotBody::Commit {
                        n_targets: a,
                        total_slots: b,
                    },
                    SlotBody::Commit {
                        n_targets: x,
                        total_slots: y,
                    },
                ) => assert_eq!((a, b), (x, y)),
                (SlotBody::Anchor { tail_seq: a }, SlotBody::Anchor { tail_seq: x }) => {
                    assert_eq!(a, x)
                }
                other => panic!("kind mismatch {other:?}"),
            }
        }
    }

    #[test]
    fn wrong_position_or_torn_bytes_rejected() {
        let keys = JournalKeys::derive(1);
        let slot = Slot {
            kind: SlotKind::Commit,
            seq: 3,
            txid: 1,
            body: SlotBody::Commit {
                n_targets: 1,
                total_slots: 3,
            },
        };
        let sealed = seal_slot(&keys, 10, &slot, 512);
        // Reading from the wrong position fails (IV and check are bound to
        // the block number).
        assert!(open_slot(&keys, 11, &sealed).is_none());
        // A torn write fails.
        let mut torn = sealed.clone();
        torn[300] ^= 0x40;
        assert!(open_slot(&keys, 10, &torn).is_none());
        // Random fill fails.
        assert!(open_slot(&keys, 10, &[0xa5u8; 512]).is_none());
        // The wrong key fails.
        assert!(open_slot(&JournalKeys::derive(2), 10, &sealed).is_none());
    }

    #[test]
    fn sealed_slots_look_uniform() {
        // An all-zero commit slot must not leave recognizable structure.
        let keys = JournalKeys::derive(7);
        let slot = Slot {
            kind: SlotKind::Commit,
            seq: 1,
            txid: 1,
            body: SlotBody::Commit {
                n_targets: 0,
                total_slots: 1,
            },
        };
        let sealed = seal_slot(&keys, 42, &slot, 4096);
        let zeros = sealed.iter().filter(|&&b| b == 0).count();
        assert!(zeros < 64, "{zeros} zero bytes is too structured");
    }

    #[test]
    fn payload_checks_bind_seq_and_content() {
        let keys = JournalKeys::derive(9);
        let image = vec![0x5au8; 1024];
        let check = keys.payload_check(&image, 77);
        assert_eq!(keys.payload_check(&image, 77), check);
        assert_ne!(keys.payload_check(&image, 78), check);
        assert_ne!(keys.payload_check(&[0x5bu8; 1024], 77), check);
        let sealed = seal_payload(&keys, 100, &image);
        assert_ne!(sealed, image);
        assert_eq!(open_payload(&keys, 100, &sealed), image);
    }

    #[test]
    fn capacity_and_slot_budget() {
        assert!(intent_capacity(128) >= 2);
        assert_eq!(slots_for(0, 1024), 2); // one (empty) intent + commit
        let cap = intent_capacity(1024);
        assert_eq!(slots_for(cap, 1024), cap as u64 + 2);
        assert_eq!(slots_for(cap + 1, 1024), cap as u64 + 1 + 2 + 1);
    }
}
