//! # stegfs-journal
//!
//! Crash consistency for the StegFS reproduction: a block-granular
//! write-ahead intent journal living in a reserved on-device region, designed
//! so that durability never costs deniability.
//!
//! The paper's stack (and this reproduction before this crate) had no
//! `fsync`, no replay, and a strictly write-through cache: a crash in the
//! middle of a multi-block hidden-file rewrite — header, inode chain,
//! bitmap — could leave the published header pointing at torn extents, which
//! breaks the *availability* half of the paper's promise.  The journal closes
//! that gap with a classic redo protocol (intent → payload → commit →
//! checkpoint, see [`Journal`]) while preserving the *undetectability* half:
//!
//! * every slot is one block, encrypted, and fixed-size — the region is
//!   uniform high-entropy bytes with no plaintext structure, like the random
//!   fill around it;
//! * records carry no hidden/plain tag, and hidden-object payloads are staged
//!   as object-key ciphertext, so a record of a hidden update is structurally
//!   identical to a record of a plain update or of the constant dummy-file
//!   churn;
//! * replay needs no user keys, and after a crash plus replay a wrong-key
//!   lookup remains exactly as unanswerable as a lookup for an object that
//!   never existed.
//!
//! See [`record`] for the on-disk format and [`journal`] (the [`Journal`]
//! type) for the commit/replay protocol, the group-commit gate, and the
//! crate's lock and flush ordering rules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod journal;
pub mod record;

pub use journal::{
    Journal, JournalError, JournalGeometry, JournalResult, ReplayReport, StagedTx, Tx,
};
pub use record::{JournalKeys, ANCHOR_SLOTS};
