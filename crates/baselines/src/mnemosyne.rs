//! Mnemosyne-style dispersal store (Hand & Roscoe, IPTPS '02).
//!
//! The extension of the random-placement scheme cited in §2 of the StegFS
//! paper: instead of writing `r` identical replicas of every block, the file
//! is encoded with Rabin's IDA into `n` cipher-shares of which **any `m`**
//! suffice for reconstruction.  Storage expansion drops from `r` to `n / m`,
//! at the cost of extra encode/decode work and the residual possibility of
//! loss once more than `n − m` shares are damaged.
//!
//! Shares are placed exactly like StegRand blocks: at keyed pseudorandom
//! addresses with a per-block tag, so the same attacks (and the same silent
//! overwrites) apply.

use crate::ida::{Ida, Share};
use crate::{BaselineError, BaselineResult};
use stegfs_blockdev::BlockDevice;
use stegfs_crypto::hmac::hmac_sha256;
use stegfs_crypto::prng::{HashChainPrng, XorShiftRng};

const TAG_LEN: usize = 16;
const LEN_FIELD: usize = 2;

/// The (m, n)-dispersal steganographic store.
pub struct Mnemosyne<D: BlockDevice> {
    dev: D,
    ida: Ida,
}

impl<D: BlockDevice> Mnemosyne<D> {
    /// Initialise a volume with random fill and an (m, n) dispersal codec.
    pub fn format(dev: D, m: usize, n: usize) -> BaselineResult<Self> {
        let ida = Ida::new(m, n)?;
        let mut rng = XorShiftRng::new(0x4d4e_454d_4f53_594e);
        let mut buf = vec![0u8; dev.block_size()];
        for block in 0..dev.total_blocks() {
            rng.fill(&mut buf);
            dev.write_block(block, &buf)?;
        }
        Ok(Mnemosyne { dev, ida })
    }

    /// Storage expansion factor (`n / m`).
    pub fn expansion(&self) -> f64 {
        self.ida.expansion()
    }

    /// Access the underlying device.
    pub fn device_mut(&mut self) -> &mut D {
        &mut self.dev
    }

    fn payload_per_block(&self) -> usize {
        self.dev.block_size() - TAG_LEN - LEN_FIELD
    }

    fn tag(&self, name: &str, password: &str, share: u8, piece: u64) -> [u8; TAG_LEN] {
        let mut msg = Vec::new();
        msg.extend_from_slice(name.as_bytes());
        msg.push(0);
        msg.push(share);
        msg.extend_from_slice(&piece.to_be_bytes());
        let full = hmac_sha256(password.as_bytes(), &msg);
        full[..TAG_LEN].try_into().unwrap()
    }

    fn address(&self, name: &str, password: &str, share: u8, piece: u64) -> u64 {
        let mut seed = Vec::new();
        seed.extend_from_slice(b"mnemosyne-addr");
        seed.extend_from_slice(name.as_bytes());
        seed.push(0);
        seed.extend_from_slice(password.as_bytes());
        seed.push(share);
        seed.extend_from_slice(&piece.to_be_bytes());
        HashChainPrng::new(&seed).next_below(self.dev.total_blocks())
    }

    fn write_share(&mut self, name: &str, password: &str, share: &Share) -> BaselineResult<()> {
        let payload = self.payload_per_block();
        let bs = self.dev.block_size();
        for (piece_idx, chunk) in share.data.chunks(payload).enumerate() {
            let mut block = vec![0u8; bs];
            block[..TAG_LEN].copy_from_slice(&self.tag(
                name,
                password,
                share.index,
                piece_idx as u64,
            ));
            block[TAG_LEN..TAG_LEN + LEN_FIELD]
                .copy_from_slice(&(chunk.len() as u16).to_be_bytes());
            block[TAG_LEN + LEN_FIELD..TAG_LEN + LEN_FIELD + chunk.len()].copy_from_slice(chunk);
            let addr = self.address(name, password, share.index, piece_idx as u64);
            self.dev.write_block(addr, &block)?;
        }
        Ok(())
    }

    fn read_share(
        &mut self,
        name: &str,
        password: &str,
        share_index: u8,
        share_len: usize,
    ) -> BaselineResult<Option<Share>> {
        let payload = self.payload_per_block();
        let pieces = share_len.div_ceil(payload).max(1);
        let mut data = Vec::with_capacity(share_len);
        for piece_idx in 0..pieces {
            let tag = self.tag(name, password, share_index, piece_idx as u64);
            let addr = self.address(name, password, share_index, piece_idx as u64);
            let block = self.dev.read_block_vec(addr)?;
            if !stegfs_crypto::ct::ct_eq(&block[..TAG_LEN], &tag) {
                return Ok(None); // this share is damaged
            }
            let len = u16::from_be_bytes(block[TAG_LEN..TAG_LEN + LEN_FIELD].try_into().unwrap())
                as usize;
            if len > payload {
                return Ok(None);
            }
            data.extend_from_slice(&block[TAG_LEN + LEN_FIELD..TAG_LEN + LEN_FIELD + len]);
        }
        data.truncate(share_len);
        Ok(Some(Share {
            index: share_index,
            data,
        }))
    }

    /// Store `data` under `(name, password)`.
    pub fn store(&mut self, name: &str, password: &str, data: &[u8]) -> BaselineResult<()> {
        let shares = self.ida.split(data);
        for share in &shares {
            self.write_share(name, password, share)?;
        }
        Ok(())
    }

    /// Retrieve a file of known length, tolerating up to `n − m` damaged
    /// shares.
    pub fn load(
        &mut self,
        name: &str,
        password: &str,
        expected_len: usize,
    ) -> BaselineResult<Vec<u8>> {
        let share_len = expected_len.div_ceil(self.ida.threshold());
        let mut intact = Vec::new();
        for idx in 1..=self.ida.share_count() as u8 {
            if let Some(share) = self.read_share(name, password, idx, share_len)? {
                intact.push(share);
                if intact.len() == self.ida.threshold() {
                    break;
                }
            }
        }
        if intact.len() < self.ida.threshold() {
            if intact.is_empty() {
                return Err(BaselineError::NotFound(name.to_string()));
            }
            return Err(BaselineError::DataLoss {
                name: name.to_string(),
                lost_block: 0,
            });
        }
        self.ida.reconstruct(&intact, expected_len)
    }

    /// Damage all pieces of one share (test/experiment helper emulating an
    /// unlucky overwrite).
    pub fn clobber_share(
        &mut self,
        name: &str,
        password: &str,
        share_index: u8,
        share_len: usize,
    ) -> BaselineResult<()> {
        let payload = self.payload_per_block();
        let pieces = share_len.div_ceil(payload).max(1);
        let junk = vec![0u8; self.dev.block_size()];
        for piece_idx in 0..pieces {
            let addr = self.address(name, password, share_index, piece_idx as u64);
            self.dev.write_block(addr, &junk)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stegfs_blockdev::MemBlockDevice;

    fn store(m: usize, n: usize) -> Mnemosyne<MemBlockDevice> {
        Mnemosyne::format(MemBlockDevice::new(1024, 8192), m, n).unwrap()
    }

    #[test]
    fn roundtrip() {
        let mut s = store(3, 5);
        let data: Vec<u8> = (0..40_000u32).map(|i| (i % 251) as u8).collect();
        s.store("doc", "pw", &data).unwrap();
        assert_eq!(s.load("doc", "pw", data.len()).unwrap(), data);
        assert!((s.expansion() - 5.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn tolerates_up_to_n_minus_m_damaged_shares() {
        let mut s = store(2, 4);
        let data = vec![0x5au8; 10_000];
        s.store("doc", "pw", &data).unwrap();
        let share_len = data.len().div_ceil(2);
        // Damage two of the four shares: still recoverable.
        s.clobber_share("doc", "pw", 1, share_len).unwrap();
        s.clobber_share("doc", "pw", 3, share_len).unwrap();
        assert_eq!(s.load("doc", "pw", data.len()).unwrap(), data);
        // Damage a third: loss.
        s.clobber_share("doc", "pw", 2, share_len).unwrap();
        assert!(matches!(
            s.load("doc", "pw", data.len()),
            Err(BaselineError::DataLoss { .. }) | Err(BaselineError::NotFound(_))
        ));
    }

    #[test]
    fn wrong_password_not_found() {
        let mut s = store(2, 3);
        s.store("doc", "pw", b"secret").unwrap();
        assert!(matches!(
            s.load("doc", "nope", 6),
            Err(BaselineError::NotFound(_))
        ));
    }

    #[test]
    fn lower_expansion_than_equivalent_replication() {
        // Tolerating 2 lost copies with replication needs 3x storage; with a
        // (4, 6) dispersal it needs only 1.5x.
        let s = store(4, 6);
        assert!(s.expansion() < 3.0);
        assert_eq!(s.expansion(), 1.5);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Mnemosyne::format(MemBlockDevice::new(1024, 64), 0, 4).is_err());
        assert!(Mnemosyne::format(MemBlockDevice::new(1024, 64), 5, 4).is_err());
    }
}
