//! StegCover — the cover-file scheme of Anderson, Needham and Shamir
//! (scheme 1 in their paper, `StegCover` in the StegFS evaluation).
//!
//! The volume is initialised with a fixed number of large random *cover
//! files*.  A hidden file is embedded as the exclusive-or of a subset of
//! covers selected from the password; to store a file, one cover of the
//! subset (the *home* cover) is rewritten so that the subset XORs to the file
//! content.  Consequently **every read or write touches the whole subset** —
//! 16 cover files with the authors' recommended parameters — which is the
//! source of the order-of-magnitude I/O penalty measured in §5.3 of the
//! StegFS paper.
//!
//! Simplifications relative to the original construction (documented in
//! DESIGN.md): the subset consists of a fixed set of *mask covers* (never
//! used as homes) plus one home cover chosen by keyed probing, and a MAC
//! embedded in the plaintext confirms reconstruction.  This keeps multiple
//! hidden files independent without the linear-algebra machinery of the
//! original scheme while preserving its I/O and space behaviour, which is
//! what the benchmarks measure.

use crate::{BaselineError, BaselineResult};
use stegfs_blockdev::BlockDevice;
use stegfs_crypto::hmac::hmac_sha256;
use stegfs_crypto::prng::{HashChainPrng, XorShiftRng};

/// Number of cover files combined per hidden file (the authors' recommended
/// value, used throughout the paper's evaluation).
pub const DEFAULT_SUBSET_SIZE: usize = 16;

const MAC_LEN: usize = 32;
const LEN_FIELD: usize = 8;

/// The cover-file steganographic store.
pub struct StegCover<D: BlockDevice> {
    dev: D,
    cover_blocks: u64,
    cover_count: u64,
    subset_size: usize,
    /// Home covers already claimed during this session (occupancy is not
    /// recorded on disk — there is nowhere deniable to record it).
    claimed_homes: Vec<bool>,
}

impl<D: BlockDevice> StegCover<D> {
    /// Initialise a volume: fill every cover with random data.
    ///
    /// `cover_size_bytes` must be a multiple of the device block size and
    /// large enough for the biggest file to be stored (the paper uses 2 MB
    /// covers for files of at most 2 MB).
    pub fn format(dev: D, cover_size_bytes: u64, subset_size: usize) -> BaselineResult<Self> {
        let bs = dev.block_size() as u64;
        if cover_size_bytes == 0 || !cover_size_bytes.is_multiple_of(bs) {
            return Err(BaselineError::Invalid(format!(
                "cover size {cover_size_bytes} is not a multiple of the block size {bs}"
            )));
        }
        if subset_size < 2 {
            return Err(BaselineError::Invalid(
                "subset size must be at least 2 (one mask cover and one home)".into(),
            ));
        }
        let cover_blocks = cover_size_bytes / bs;
        let cover_count = dev.total_blocks() / cover_blocks;
        if cover_count <= subset_size as u64 {
            return Err(BaselineError::Invalid(format!(
                "volume only holds {cover_count} covers; need more than the subset size {subset_size}"
            )));
        }

        // Fill every cover with pseudorandom data (fast non-cryptographic
        // fill; see XorShiftRng's documentation).
        let mut rng = XorShiftRng::new(0x5354_4547_434f_5645);
        let mut buf = vec![0u8; bs as usize];
        for block in 0..cover_count * cover_blocks {
            rng.fill(&mut buf);
            dev.write_block(block, &buf)?;
        }

        Ok(StegCover {
            dev,
            cover_blocks,
            cover_count,
            subset_size,
            claimed_homes: vec![false; cover_count as usize],
        })
    }

    /// Number of cover files in the volume.
    pub fn cover_count(&self) -> u64 {
        self.cover_count
    }

    /// Number of covers usable as homes (total minus the mask covers).
    pub fn capacity(&self) -> u64 {
        self.cover_count - (self.subset_size as u64 - 1)
    }

    /// Maximum payload per hidden file.
    pub fn max_file_size(&self) -> u64 {
        self.cover_blocks * self.dev.block_size() as u64 - (MAC_LEN + LEN_FIELD) as u64
    }

    /// Access the underlying device (to read its clock in experiments).
    pub fn device_mut(&mut self) -> &mut D {
        &mut self.dev
    }

    /// Upper bound on home-cover probes: like the StegFS locator, the search
    /// only ever needs to skip past homes claimed by other files, so twice
    /// the number of home covers is a safe, cheap bound.
    fn max_probes(&self) -> usize {
        (self.capacity() as usize * 2).max(32)
    }

    fn mask_cover_ids(&self) -> std::ops::Range<u64> {
        0..(self.subset_size as u64 - 1)
    }

    fn home_cover_ids(&self) -> std::ops::Range<u64> {
        (self.subset_size as u64 - 1)..self.cover_count
    }

    fn read_cover(&mut self, cover: u64) -> BaselineResult<Vec<u8>> {
        let bs = self.dev.block_size();
        let mut out = vec![0u8; (self.cover_blocks as usize) * bs];
        for i in 0..self.cover_blocks {
            let offset = (i as usize) * bs;
            self.dev
                .read_block(cover * self.cover_blocks + i, &mut out[offset..offset + bs])?;
        }
        Ok(out)
    }

    fn write_cover(&mut self, cover: u64, data: &[u8]) -> BaselineResult<()> {
        let bs = self.dev.block_size();
        debug_assert_eq!(data.len(), self.cover_blocks as usize * bs);
        for i in 0..self.cover_blocks {
            let offset = (i as usize) * bs;
            self.dev
                .write_block(cover * self.cover_blocks + i, &data[offset..offset + bs])?;
        }
        Ok(())
    }

    /// XOR of all mask covers (the part of the subset shared by every file).
    fn read_mask(&mut self) -> BaselineResult<Vec<u8>> {
        let mut mask = vec![0u8; self.cover_blocks as usize * self.dev.block_size()];
        for cover in self.mask_cover_ids() {
            let data = self.read_cover(cover)?;
            for (m, d) in mask.iter_mut().zip(&data) {
                *m ^= d;
            }
        }
        Ok(mask)
    }

    fn home_candidates(&self, name: &str, password: &str) -> HashChainPrng {
        let mut seed = Vec::new();
        seed.extend_from_slice(b"stegcover-home");
        seed.extend_from_slice(name.as_bytes());
        seed.push(0);
        seed.extend_from_slice(password.as_bytes());
        HashChainPrng::new(&seed)
    }

    fn mac(&self, name: &str, password: &str, data: &[u8]) -> [u8; MAC_LEN] {
        let mut msg = Vec::with_capacity(name.len() + 1 + data.len());
        msg.extend_from_slice(name.as_bytes());
        msg.push(0);
        msg.extend_from_slice(data);
        hmac_sha256(password.as_bytes(), &msg)
    }

    /// Store `data` under `(name, password)`.  Returns the index of the home
    /// cover that now holds the (masked) file, which block-granular callers
    /// (the experiment harness) pass back to [`read_block_of`](Self::read_block_of)
    /// and [`write_block_of`](Self::write_block_of).
    pub fn store(&mut self, name: &str, password: &str, data: &[u8]) -> BaselineResult<u64> {
        if data.len() as u64 > self.max_file_size() {
            return Err(BaselineError::TooLarge {
                requested: data.len() as u64,
                maximum: self.max_file_size(),
            });
        }
        // Plaintext cover image: [len][mac][data][zero pad].
        let cover_bytes = self.cover_blocks as usize * self.dev.block_size();
        let mut plain = vec![0u8; cover_bytes];
        plain[..LEN_FIELD].copy_from_slice(&(data.len() as u64).to_be_bytes());
        plain[LEN_FIELD..LEN_FIELD + MAC_LEN].copy_from_slice(&self.mac(name, password, data));
        plain[LEN_FIELD + MAC_LEN..LEN_FIELD + MAC_LEN + data.len()].copy_from_slice(data);

        // Reading the rest of the subset is what makes StegCover expensive.
        let mask = self.read_mask()?;
        for (p, m) in plain.iter_mut().zip(&mask) {
            *p ^= m;
        }

        // Choose a home cover by keyed probing over unclaimed homes.
        let mut candidates = self.home_candidates(name, password);
        let home_range = self.home_cover_ids();
        let span = home_range.end - home_range.start;
        for _ in 0..self.max_probes() {
            let candidate = home_range.start + candidates.next_below(span);
            if !self.claimed_homes[candidate as usize] {
                self.claimed_homes[candidate as usize] = true;
                self.write_cover(candidate, &plain)?;
                return Ok(candidate);
            }
        }
        Err(BaselineError::NoSpace)
    }

    /// Read one block's worth of a stored file: touches the corresponding
    /// block of every mask cover plus the home cover (the per-access cost the
    /// paper measures).  Returns the reconstructed plaintext block.
    pub fn read_block_of(&mut self, home: u64, block_in_cover: u64) -> BaselineResult<Vec<u8>> {
        if block_in_cover >= self.cover_blocks {
            return Err(BaselineError::Invalid(format!(
                "block {block_in_cover} beyond cover size"
            )));
        }
        let bs = self.dev.block_size();
        let mut acc = vec![0u8; bs];
        let mut buf = vec![0u8; bs];
        for cover in self.mask_cover_ids() {
            self.dev
                .read_block(cover * self.cover_blocks + block_in_cover, &mut buf)?;
            for (a, b) in acc.iter_mut().zip(&buf) {
                *a ^= b;
            }
        }
        self.dev
            .read_block(home * self.cover_blocks + block_in_cover, &mut buf)?;
        for (a, b) in acc.iter_mut().zip(&buf) {
            *a ^= b;
        }
        Ok(acc)
    }

    /// Overwrite one block's worth of a stored file in place: reads the mask
    /// blocks and rewrites the home block so the subset XOR reflects the new
    /// plaintext.
    pub fn write_block_of(
        &mut self,
        home: u64,
        block_in_cover: u64,
        plaintext: &[u8],
    ) -> BaselineResult<()> {
        let bs = self.dev.block_size();
        if block_in_cover >= self.cover_blocks {
            return Err(BaselineError::Invalid(format!(
                "block {block_in_cover} beyond cover size"
            )));
        }
        if plaintext.len() != bs {
            return Err(BaselineError::Invalid(format!(
                "plaintext block must be exactly {bs} bytes"
            )));
        }
        let mut acc = plaintext.to_vec();
        let mut buf = vec![0u8; bs];
        for cover in self.mask_cover_ids() {
            self.dev
                .read_block(cover * self.cover_blocks + block_in_cover, &mut buf)?;
            for (a, b) in acc.iter_mut().zip(&buf) {
                *a ^= b;
            }
        }
        self.dev
            .write_block(home * self.cover_blocks + block_in_cover, &acc)?;
        Ok(())
    }

    /// Retrieve the file stored under `(name, password)`.
    pub fn load(&mut self, name: &str, password: &str) -> BaselineResult<Vec<u8>> {
        let mask = self.read_mask()?;
        let mut candidates = self.home_candidates(name, password);
        let home_range = self.home_cover_ids();
        let span = home_range.end - home_range.start;
        for _ in 0..self.max_probes() {
            let candidate = home_range.start + candidates.next_below(span);
            let cover = self.read_cover(candidate)?;
            let mut plain: Vec<u8> = cover.iter().zip(&mask).map(|(c, m)| c ^ m).collect();
            let len = u64::from_be_bytes(plain[..LEN_FIELD].try_into().unwrap()) as usize;
            if len > plain.len() - LEN_FIELD - MAC_LEN {
                continue;
            }
            let mac_stored: [u8; MAC_LEN] =
                plain[LEN_FIELD..LEN_FIELD + MAC_LEN].try_into().unwrap();
            let data = plain.split_off(LEN_FIELD + MAC_LEN);
            let data = &data[..len];
            if stegfs_crypto::ct::ct_eq(&mac_stored, &self.mac(name, password, data)) {
                return Ok(data.to_vec());
            }
        }
        Err(BaselineError::NotFound(name.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stegfs_blockdev::{IoStats, MemBlockDevice, MeteredDevice};

    fn store_16mb() -> StegCover<MeteredDevice<MemBlockDevice>> {
        // 16 MB volume of 1 KB blocks with 512 KB covers -> 32 covers.
        let dev = MeteredDevice::new(MemBlockDevice::new(1024, 16 * 1024));
        StegCover::format(dev, 512 * 1024, DEFAULT_SUBSET_SIZE).unwrap()
    }

    #[test]
    fn format_geometry() {
        let cover = store_16mb();
        assert_eq!(cover.cover_count(), 32);
        assert_eq!(cover.capacity(), 32 - 15);
        assert!(cover.max_file_size() > 500 * 1024);
    }

    #[test]
    fn store_load_roundtrip() {
        let mut cover = store_16mb();
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 255) as u8).collect();
        cover.store("report", "pw", &data).unwrap();
        assert_eq!(cover.load("report", "pw").unwrap(), data);
    }

    #[test]
    fn wrong_password_or_name_not_found() {
        let mut cover = store_16mb();
        cover.store("report", "pw", b"secret").unwrap();
        assert!(matches!(
            cover.load("report", "other"),
            Err(BaselineError::NotFound(_))
        ));
        assert!(matches!(
            cover.load("other", "pw"),
            Err(BaselineError::NotFound(_))
        ));
    }

    #[test]
    fn multiple_files_coexist() {
        let mut cover = store_16mb();
        for i in 0..10 {
            cover
                .store(
                    &format!("file-{i}"),
                    "pw",
                    format!("contents {i}").as_bytes(),
                )
                .unwrap();
        }
        for i in 0..10 {
            assert_eq!(
                cover.load(&format!("file-{i}"), "pw").unwrap(),
                format!("contents {i}").as_bytes()
            );
        }
    }

    #[test]
    fn every_operation_touches_the_whole_subset() {
        let mut cover = store_16mb();
        let stats_handle = cover.device_mut().stats_handle();
        stats_handle.reset();
        let cover_blocks = 512; // 512 KB covers of 1 KB blocks

        cover.store("f", "pw", &vec![1u8; 4096]).unwrap();
        let IoStats { reads, writes, .. } = stats_handle.snapshot();
        // Store: read 15 mask covers, write 1 home cover.
        assert_eq!(reads, 15 * cover_blocks);
        assert_eq!(writes, cover_blocks);

        stats_handle.reset();
        cover.load("f", "pw").unwrap();
        let IoStats { reads, writes, .. } = stats_handle.snapshot();
        // Load: read 15 mask covers + at least the home cover.
        assert!(reads >= 16 * cover_blocks);
        assert_eq!(writes, 0);
    }

    #[test]
    fn capacity_exhaustion_reported() {
        // Tiny volume: 4 covers total with subset size 3 -> 2 homes.
        let dev = MemBlockDevice::new(1024, 256);
        let mut cover = StegCover::format(dev, 64 * 1024, 3).unwrap();
        assert_eq!(cover.capacity(), 2);
        cover.store("a", "pw", b"1").unwrap();
        cover.store("b", "pw", b"2").unwrap();
        assert!(matches!(
            cover.store("c", "pw", b"3"),
            Err(BaselineError::NoSpace)
        ));
    }

    #[test]
    fn oversized_file_rejected() {
        let mut cover = store_16mb();
        let too_big = vec![0u8; cover.max_file_size() as usize + 1];
        assert!(matches!(
            cover.store("big", "pw", &too_big),
            Err(BaselineError::TooLarge { .. })
        ));
    }

    #[test]
    fn invalid_configurations_rejected() {
        let dev = MemBlockDevice::new(1024, 256);
        assert!(StegCover::format(dev, 1000, 16).is_err()); // not a block multiple
        let dev = MemBlockDevice::new(1024, 256);
        assert!(StegCover::format(dev, 64 * 1024, 1).is_err()); // subset too small
        let dev = MemBlockDevice::new(1024, 256);
        assert!(StegCover::format(dev, 128 * 1024, 16).is_err()); // fewer covers than subset
    }
}
