//! Arithmetic in GF(2⁸), the field underlying Rabin's Information Dispersal
//! Algorithm (and AES, though the AES implementation in `stegfs-crypto` keeps
//! its own inlined helpers).
//!
//! The field is GF(2)\[x\] / (x⁸ + x⁴ + x³ + x + 1), i.e. the AES polynomial
//! 0x11b.  Multiplication uses log/antilog tables built at first use.

/// The reduction polynomial (x⁸ + x⁴ + x³ + x + 1).
const POLY: u16 = 0x11b;

/// Generator used to build the log/antilog tables.
const GENERATOR: u8 = 0x03;

struct Tables {
    log: [u8; 256],
    exp: [u8; 512],
}

fn tables() -> &'static Tables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut log = [0u8; 256];
        let mut exp = [0u8; 512];
        let mut x: u8 = 1;
        for (i, e) in exp.iter_mut().enumerate().take(255) {
            *e = x;
            log[x as usize] = i as u8;
            x = mul_slow(x, GENERATOR);
        }
        for i in 255..512usize {
            exp[i] = exp[i - 255];
        }
        Tables { log, exp }
    })
}

/// Bitwise (carry-less, reduced) multiplication — used to build the tables
/// and as an independent cross-check in tests.
pub fn mul_slow(a: u8, b: u8) -> u8 {
    let mut a = a as u16;
    let mut b = b as u16;
    let mut p = 0u16;
    while b != 0 {
        if b & 1 != 0 {
            p ^= a;
        }
        a <<= 1;
        if a & 0x100 != 0 {
            a ^= POLY;
        }
        b >>= 1;
    }
    p as u8
}

/// Addition in GF(2⁸) (XOR).
#[inline]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Multiplication via log/antilog tables.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let t = tables();
    t.exp[t.log[a as usize] as usize + t.log[b as usize] as usize]
}

/// Multiplicative inverse.
///
/// # Panics
/// Panics if `a == 0` (zero has no inverse).
#[inline]
pub fn inv(a: u8) -> u8 {
    assert!(a != 0, "zero has no multiplicative inverse in GF(256)");
    let t = tables();
    t.exp[255 - t.log[a as usize] as usize]
}

/// Division `a / b`.
///
/// # Panics
/// Panics if `b == 0`.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    mul(a, inv(b))
}

/// Exponentiation `a^e`.
pub fn pow(a: u8, mut e: u32) -> u8 {
    let mut result = 1u8;
    let mut base = a;
    while e > 0 {
        if e & 1 == 1 {
            result = mul(result, base);
        }
        base = mul(base, base);
        e >>= 1;
    }
    result
}

/// Evaluate the polynomial `coeffs[0] + coeffs[1] x + …` at `x` (Horner).
pub fn poly_eval(coeffs: &[u8], x: u8) -> u8 {
    let mut acc = 0u8;
    for &c in coeffs.iter().rev() {
        acc = add(mul(acc, x), c);
    }
    acc
}

/// Solve the linear system `M · a = y` over GF(2⁸) by Gaussian elimination,
/// where `M` is given in row-major order.  Returns `None` if `M` is singular.
pub fn solve(matrix: &[Vec<u8>], rhs: &[u8]) -> Option<Vec<u8>> {
    let n = rhs.len();
    assert_eq!(matrix.len(), n, "matrix must be square");
    let mut m: Vec<Vec<u8>> = matrix
        .iter()
        .zip(rhs)
        .map(|(row, &y)| {
            assert_eq!(row.len(), n, "matrix must be square");
            let mut r = row.clone();
            r.push(y);
            r
        })
        .collect();

    for col in 0..n {
        // Find a pivot.
        let pivot = (col..n).find(|&r| m[r][col] != 0)?;
        m.swap(col, pivot);
        // Normalise the pivot row.
        let p = m[col][col];
        for v in m[col].iter_mut() {
            *v = div(*v, p);
        }
        // Eliminate the column from all other rows.
        let pivot_row = m[col].clone();
        for (row, row_vals) in m.iter_mut().enumerate().take(n) {
            if row != col && row_vals[col] != 0 {
                let factor = row_vals[col];
                for (cell, &pv) in row_vals.iter_mut().zip(&pivot_row) {
                    *cell = add(*cell, mul(factor, pv));
                }
            }
        }
    }
    Some(m.iter().map(|row| row[n]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_mul_matches_slow_mul() {
        // Exhaustive cross-check of the table construction.
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(mul(a, b), mul_slow(a, b), "{a} * {b}");
            }
        }
    }

    #[test]
    fn known_products_from_fips197() {
        assert_eq!(mul(0x57, 0x83), 0xc1);
        assert_eq!(mul(0x57, 0x13), 0xfe);
    }

    #[test]
    fn field_axioms_spot_checks() {
        for a in [1u8, 2, 7, 0x53, 0xca, 0xff] {
            assert_eq!(mul(a, inv(a)), 1, "a * a^-1 = 1 for {a}");
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(a, 0), 0);
            assert_eq!(add(a, a), 0, "characteristic 2");
        }
        // Distributivity samples.
        for (a, b, c) in [(3u8, 5u8, 7u8), (0x53, 0xca, 0x11), (255, 254, 253)] {
            assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
        }
    }

    #[test]
    #[should_panic(expected = "no multiplicative inverse")]
    fn inverse_of_zero_panics() {
        inv(0);
    }

    #[test]
    fn division_roundtrip() {
        for a in [1u8, 9, 0x42, 0xee] {
            for b in [1u8, 3, 0x80, 0xff] {
                assert_eq!(mul(div(a, b), b), a);
            }
        }
    }

    #[test]
    fn pow_basics() {
        assert_eq!(pow(0x02, 0), 1);
        assert_eq!(pow(0x02, 1), 2);
        assert_eq!(pow(0x02, 8), mul(pow(0x02, 4), pow(0x02, 4)));
        // Fermat: a^255 = 1 for a != 0.
        for a in [1u8, 2, 3, 0x53, 0xff] {
            assert_eq!(pow(a, 255), 1);
        }
        assert_eq!(pow(0, 5), 0);
    }

    #[test]
    fn poly_eval_horner() {
        // p(x) = 3 + 2x + x^2 at x = 0, 1 in GF(256).
        let p = [3u8, 2, 1];
        assert_eq!(poly_eval(&p, 0), 3);
        assert_eq!(poly_eval(&p, 1), 3 ^ 2 ^ 1);
        // Constant polynomial.
        assert_eq!(poly_eval(&[7], 0x55), 7);
        assert_eq!(poly_eval(&[], 0x55), 0);
    }

    #[test]
    fn solve_identity_and_vandermonde() {
        // Identity system.
        let m = vec![vec![1, 0, 0], vec![0, 1, 0], vec![0, 0, 1]];
        assert_eq!(solve(&m, &[5, 6, 7]).unwrap(), vec![5, 6, 7]);

        // Vandermonde system: recover coefficients from evaluations.
        let coeffs = [0x12u8, 0x34, 0x56];
        let xs = [1u8, 2, 3];
        let ys: Vec<u8> = xs.iter().map(|&x| poly_eval(&coeffs, x)).collect();
        let matrix: Vec<Vec<u8>> = xs
            .iter()
            .map(|&x| (0..3).map(|i| pow(x, i as u32)).collect())
            .collect();
        assert_eq!(solve(&matrix, &ys).unwrap(), coeffs.to_vec());
    }

    #[test]
    fn solve_detects_singular_matrix() {
        let m = vec![vec![1, 2], vec![1, 2]];
        assert!(solve(&m, &[3, 4]).is_none());
        let zero = vec![vec![0, 0], vec![0, 0]];
        assert!(solve(&zero, &[0, 0]).is_none());
    }
}
