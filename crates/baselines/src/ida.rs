//! Rabin's Information Dispersal Algorithm (IDA) over GF(2⁸).
//!
//! Hand and Roscoe's Mnemosyne (cited in §2 of the StegFS paper) improves the
//! resilience of the random-placement scheme by encoding each hidden file
//! into `n` cipher-shares such that **any `m` of them** suffice to
//! reconstruct it, instead of keeping `n` identical replicas.  The encoding
//! is Rabin's IDA: the data is chopped into groups of `m` bytes which are
//! interpreted as the coefficients of a degree-`m−1` polynomial; share `j`
//! stores the polynomial's value at evaluation point `x_j`.  Reconstruction
//! from any `m` shares solves the corresponding Vandermonde system.
//!
//! Storage blow-up is `n / m` (compared with `r` for `r`-way replication),
//! which is where Mnemosyne's space advantage over plain StegRand comes from.

use crate::gf256;
use crate::{BaselineError, BaselineResult};

/// An (m, n) information dispersal codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ida {
    m: usize,
    n: usize,
}

/// One share produced by [`Ida::split`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Share {
    /// Evaluation-point index (1-based; 0 is reserved).
    pub index: u8,
    /// Share payload; `ceil(data_len / m)` bytes.
    pub data: Vec<u8>,
}

impl Ida {
    /// Create an (m, n) codec: split into `n` shares, any `m` reconstruct.
    pub fn new(m: usize, n: usize) -> BaselineResult<Self> {
        if m == 0 || n == 0 || m > n {
            return Err(BaselineError::Invalid(format!(
                "require 0 < m <= n, got m={m}, n={n}"
            )));
        }
        if n > 255 {
            return Err(BaselineError::Invalid(format!(
                "at most 255 shares are supported, got n={n}"
            )));
        }
        Ok(Ida { m, n })
    }

    /// Number of shares required for reconstruction.
    pub fn threshold(&self) -> usize {
        self.m
    }

    /// Number of shares produced.
    pub fn share_count(&self) -> usize {
        self.n
    }

    /// Storage expansion factor `n / m`.
    pub fn expansion(&self) -> f64 {
        self.n as f64 / self.m as f64
    }

    /// Split `data` into `n` shares.
    pub fn split(&self, data: &[u8]) -> Vec<Share> {
        let groups = data.len().div_ceil(self.m);
        let mut shares: Vec<Share> = (0..self.n)
            .map(|j| Share {
                index: (j + 1) as u8,
                data: Vec::with_capacity(groups),
            })
            .collect();

        for g in 0..groups {
            // Coefficients of this group's polynomial (zero padded).
            let mut coeffs = vec![0u8; self.m];
            for (i, c) in coeffs.iter_mut().enumerate() {
                if let Some(&b) = data.get(g * self.m + i) {
                    *c = b;
                }
            }
            for share in shares.iter_mut() {
                share.data.push(gf256::poly_eval(&coeffs, share.index));
            }
        }
        shares
    }

    /// Reconstruct the original data (of known length `data_len`) from any
    /// `m` or more shares.
    pub fn reconstruct(&self, shares: &[Share], data_len: usize) -> BaselineResult<Vec<u8>> {
        if shares.len() < self.m {
            return Err(BaselineError::Invalid(format!(
                "need at least {} shares, got {}",
                self.m,
                shares.len()
            )));
        }
        let selected = &shares[..self.m];
        // All selected shares must have distinct indices and equal length.
        let groups = data_len.div_ceil(self.m);
        for s in selected {
            if s.index == 0 {
                return Err(BaselineError::Invalid("share index 0 is reserved".into()));
            }
            if s.data.len() < groups {
                return Err(BaselineError::Invalid(format!(
                    "share {} is too short ({} < {groups})",
                    s.index,
                    s.data.len()
                )));
            }
        }
        let mut seen = [false; 256];
        for s in selected {
            if seen[s.index as usize] {
                return Err(BaselineError::Invalid(format!(
                    "duplicate share index {}",
                    s.index
                )));
            }
            seen[s.index as usize] = true;
        }

        // Vandermonde matrix rows: [1, x, x^2, ..., x^(m-1)] for each share.
        let matrix: Vec<Vec<u8>> = selected
            .iter()
            .map(|s| (0..self.m).map(|i| gf256::pow(s.index, i as u32)).collect())
            .collect();

        let mut out = Vec::with_capacity(groups * self.m);
        for g in 0..groups {
            let rhs: Vec<u8> = selected.iter().map(|s| s.data[g]).collect();
            let coeffs = gf256::solve(&matrix, &rhs).ok_or_else(|| {
                BaselineError::Invalid("share indices form a singular system".into())
            })?;
            out.extend_from_slice(&coeffs);
        }
        out.truncate(data_len);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 31 % 251) as u8).collect()
    }

    #[test]
    fn split_reconstruct_all_shares() {
        let ida = Ida::new(4, 7).unwrap();
        let data = sample_data(1000);
        let shares = ida.split(&data);
        assert_eq!(shares.len(), 7);
        assert!(shares.iter().all(|s| s.data.len() == 250));
        assert_eq!(ida.reconstruct(&shares, data.len()).unwrap(), data);
    }

    #[test]
    fn any_m_shares_suffice() {
        let ida = Ida::new(3, 6).unwrap();
        let data = sample_data(500);
        let shares = ida.split(&data);
        // Try every combination of exactly m shares.
        for a in 0..6 {
            for b in (a + 1)..6 {
                for c in (b + 1)..6 {
                    let subset = vec![shares[a].clone(), shares[b].clone(), shares[c].clone()];
                    assert_eq!(
                        ida.reconstruct(&subset, data.len()).unwrap(),
                        data,
                        "shares {a},{b},{c}"
                    );
                }
            }
        }
    }

    #[test]
    fn fewer_than_m_shares_fail() {
        let ida = Ida::new(3, 5).unwrap();
        let data = sample_data(100);
        let shares = ida.split(&data);
        assert!(ida.reconstruct(&shares[..2], data.len()).is_err());
        assert!(ida.reconstruct(&[], data.len()).is_err());
    }

    #[test]
    fn corrupt_share_changes_output_but_other_subset_recovers() {
        let ida = Ida::new(2, 4).unwrap();
        let data = sample_data(64);
        let mut shares = ida.split(&data);
        shares[0].data[0] ^= 0xff;
        // Using the corrupted share gives wrong data...
        let wrong = ida
            .reconstruct(&[shares[0].clone(), shares[1].clone()], data.len())
            .unwrap();
        assert_ne!(wrong, data);
        // ...but any two intact shares still reconstruct.
        let right = ida
            .reconstruct(&[shares[2].clone(), shares[3].clone()], data.len())
            .unwrap();
        assert_eq!(right, data);
    }

    #[test]
    fn duplicate_share_indices_rejected() {
        let ida = Ida::new(2, 3).unwrap();
        let data = sample_data(10);
        let shares = ida.split(&data);
        let dup = vec![shares[0].clone(), shares[0].clone()];
        assert!(ida.reconstruct(&dup, data.len()).is_err());
    }

    #[test]
    fn empty_and_unaligned_data() {
        let ida = Ida::new(4, 5).unwrap();
        for len in [0usize, 1, 3, 4, 5, 17] {
            let data = sample_data(len);
            let shares = ida.split(&data);
            assert_eq!(ida.reconstruct(&shares, len).unwrap(), data, "len {len}");
        }
    }

    #[test]
    fn replication_is_the_m_equals_1_special_case() {
        let ida = Ida::new(1, 3).unwrap();
        let data = sample_data(32);
        let shares = ida.split(&data);
        // With m = 1 every share is a full copy of the data.
        for s in &shares {
            assert_eq!(s.data, data);
        }
        assert_eq!(ida.expansion(), 3.0);
    }

    #[test]
    fn expansion_factor() {
        assert_eq!(Ida::new(4, 8).unwrap().expansion(), 2.0);
        assert!((Ida::new(3, 5).unwrap().expansion() - 1.6667).abs() < 1e-3);
        assert_eq!(Ida::new(4, 8).unwrap().threshold(), 4);
        assert_eq!(Ida::new(4, 8).unwrap().share_count(), 8);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Ida::new(0, 5).is_err());
        assert!(Ida::new(5, 0).is_err());
        assert!(Ida::new(6, 5).is_err());
        assert!(Ida::new(4, 300).is_err());
    }

    #[test]
    fn share_too_short_rejected() {
        let ida = Ida::new(2, 3).unwrap();
        let data = sample_data(100);
        let mut shares = ida.split(&data);
        shares[0].data.truncate(3);
        assert!(ida.reconstruct(&shares, data.len()).is_err());
    }
}
