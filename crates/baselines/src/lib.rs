//! # stegfs-baselines
//!
//! The prior steganographic storage schemes that the StegFS paper benchmarks
//! against (Section 2 and Section 5), implemented over the same
//! [`stegfs_blockdev::BlockDevice`] abstraction so they can be driven by the
//! same workloads and the same disk timing model:
//!
//! * [`stegcover::StegCover`] — Anderson, Needham and Shamir's first scheme:
//!   a hidden file is embedded as the exclusive-or of a password-selected
//!   subset of large random *cover files*; every read or write touches the
//!   whole subset (16 cover files in the paper's configuration).
//! * [`stegrand::StegRand`] — their second scheme: file blocks are written to
//!   absolute disk addresses produced by a keyed pseudorandom process,
//!   replicated to reduce (but never eliminate) the risk that a later file
//!   overwrites every copy of a block.
//! * [`gf256`] / [`ida`] / [`mnemosyne`] — Rabin's Information Dispersal
//!   Algorithm over GF(2⁸) and the Mnemosyne-style extension of StegRand
//!   that replaces plain replication with (m, n) dispersal.
//!
//! None of these schemes maintain a bitmap or a central directory — that is
//! precisely the property that makes them deniable and, as the paper shows,
//! impractical.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gf256;
pub mod ida;
pub mod mnemosyne;
pub mod stegcover;
pub mod stegrand;

pub use ida::Ida;
pub use mnemosyne::Mnemosyne;
pub use stegcover::StegCover;
pub use stegrand::{StegRand, StegRandSpaceModel};

/// Error type shared by the baseline schemes.
#[derive(Debug, PartialEq)]
pub enum BaselineError {
    /// The named object could not be found or reconstructed with this
    /// password (deliberately indistinguishable cases, as in StegFS).
    NotFound(String),
    /// A stored object was found but some of its blocks have been overwritten
    /// beyond recovery — the failure mode StegRand is prone to.
    DataLoss {
        /// Object name.
        name: String,
        /// Index of the first unrecoverable block.
        lost_block: u64,
    },
    /// The store is out of capacity (cover slots or address space).
    NoSpace,
    /// The object is too large for this store's configuration.
    TooLarge {
        /// Requested size in bytes.
        requested: u64,
        /// Maximum supported size in bytes.
        maximum: u64,
    },
    /// Invalid configuration or argument.
    Invalid(String),
    /// Error from the underlying block device.
    Block(stegfs_blockdev::BlockError),
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::NotFound(n) => write!(f, "object not found (or wrong password): {n}"),
            BaselineError::DataLoss { name, lost_block } => {
                write!(f, "object {name} lost block {lost_block} to overwriting")
            }
            BaselineError::NoSpace => write!(f, "no capacity left"),
            BaselineError::TooLarge { requested, maximum } => {
                write!(f, "object of {requested} bytes exceeds maximum {maximum}")
            }
            BaselineError::Invalid(msg) => write!(f, "invalid argument: {msg}"),
            BaselineError::Block(e) => write!(f, "block device error: {e}"),
        }
    }
}

impl std::error::Error for BaselineError {}

impl From<stegfs_blockdev::BlockError> for BaselineError {
    fn from(e: stegfs_blockdev::BlockError) -> Self {
        BaselineError::Block(e)
    }
}

/// Result alias for the baseline schemes.
pub type BaselineResult<T> = Result<T, BaselineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(BaselineError::NotFound("x".into())
            .to_string()
            .contains("wrong password"));
        assert!(BaselineError::DataLoss {
            name: "f".into(),
            lost_block: 3
        }
        .to_string()
        .contains("lost block 3"));
        assert!(BaselineError::NoSpace.to_string().contains("capacity"));
        assert!(BaselineError::TooLarge {
            requested: 10,
            maximum: 5
        }
        .to_string()
        .contains("exceeds"));
        assert!(BaselineError::Invalid("bad".into())
            .to_string()
            .contains("bad"));
    }
}
