//! Property-based tests for the coding math the survival subsystem builds
//! on: GF(2^8) must actually be a field, and Rabin's IDA must survive the
//! loss of any `n - m` shares — for *arbitrary* share subsets, not just the
//! first `m` the unit tests pick.

use proptest::prelude::*;
use stegfs_baselines::gf256;
use stegfs_baselines::ida::Share;
use stegfs_baselines::Ida;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    })]

    // ---------------------------------------------------------------
    // GF(256) field axioms
    // ---------------------------------------------------------------

    #[test]
    fn gf256_addition_group(a in any::<u8>(), b in any::<u8>(), c in any::<u8>()) {
        // Commutative, associative, identity 0, every element self-inverse
        // (characteristic 2).
        prop_assert_eq!(gf256::add(a, b), gf256::add(b, a));
        prop_assert_eq!(
            gf256::add(gf256::add(a, b), c),
            gf256::add(a, gf256::add(b, c))
        );
        prop_assert_eq!(gf256::add(a, 0), a);
        prop_assert_eq!(gf256::add(a, a), 0);
    }

    #[test]
    fn gf256_multiplicative_group(a in any::<u8>(), b in any::<u8>(), c in any::<u8>()) {
        prop_assert_eq!(gf256::mul(a, b), gf256::mul(b, a));
        prop_assert_eq!(
            gf256::mul(gf256::mul(a, b), c),
            gf256::mul(a, gf256::mul(b, c))
        );
        prop_assert_eq!(gf256::mul(a, 1), a);
        prop_assert_eq!(gf256::mul(a, 0), 0);
        // The table-driven multiply must agree with the shift-and-add one.
        prop_assert_eq!(gf256::mul(a, b), gf256::mul_slow(a, b));
        if a != 0 {
            prop_assert_eq!(gf256::mul(a, gf256::inv(a)), 1);
            prop_assert_eq!(gf256::div(gf256::mul(a, b), a), b);
        }
    }

    #[test]
    fn gf256_distributivity(a in any::<u8>(), b in any::<u8>(), c in any::<u8>()) {
        prop_assert_eq!(
            gf256::mul(a, gf256::add(b, c)),
            gf256::add(gf256::mul(a, b), gf256::mul(a, c))
        );
    }

    // ---------------------------------------------------------------
    // IDA round trip under arbitrary share loss
    // ---------------------------------------------------------------

    #[test]
    fn ida_survives_any_n_minus_m_share_losses(
        data in proptest::collection::vec(any::<u8>(), 1..2048),
        params in 0usize..5,
        subset_seed in any::<u64>()
    ) {
        let (m, n) = [(1, 2), (2, 3), (2, 4), (3, 5), (4, 6)][params];
        let ida = Ida::new(m, n).unwrap();
        let shares = ida.split(&data);
        prop_assert_eq!(shares.len(), n);

        // Drop n - m shares chosen by the seed: keep an arbitrary m-subset.
        let mut pool: Vec<Share> = shares;
        let mut rng = subset_seed ^ 0x9e37_79b9_7f4a_7c15;
        while pool.len() > m {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let drop_at = (rng % pool.len() as u64) as usize;
            pool.swap_remove(drop_at);
        }

        let rebuilt = ida.reconstruct(&pool, data.len()).unwrap();
        prop_assert_eq!(&rebuilt[..data.len()], &data[..]);
        // The tail beyond data_len is the zero padding of the last group.
        prop_assert!(rebuilt[data.len()..].iter().all(|&b| b == 0));
    }

    #[test]
    fn ida_split_is_deterministic(
        data in proptest::collection::vec(any::<u8>(), 1..512)
    ) {
        // Determinism is what lets the scavenger rebuild a damaged share to
        // the byte-identical ciphertext the volume originally held.
        let ida = Ida::new(2, 4).unwrap();
        let a = ida.split(&data);
        let b = ida.split(&data);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert_eq!(x.index, y.index);
            prop_assert_eq!(&x.data, &y.data);
        }
    }

    #[test]
    fn ida_fewer_than_m_shares_reconstruct_nothing(
        data in proptest::collection::vec(any::<u8>(), 1..512)
    ) {
        let ida = Ida::new(3, 5).unwrap();
        let shares = ida.split(&data);
        prop_assert!(ida.reconstruct(&shares[..2], data.len()).is_err());
        prop_assert!(ida.reconstruct(&[], data.len()).is_err());
    }
}
