//! Block cipher modes of operation used by StegFS.
//!
//! Hidden objects are encrypted at disk-block granularity: each disk block of
//! a hidden file is encrypted independently under the file access key with an
//! IV derived from `(key, logical block index)`.  That keeps random access
//! cheap (the paper decrypts blocks "on-the-fly during retrieval") while still
//! making every hidden block look like the uniform random fill that the
//! formatter writes into free blocks.
//!
//! Two modes are provided:
//!
//! * [`CbcCipher`] — CBC with PKCS#7 padding, used for variable-length
//!   records such as the encrypted UAK directory entries and the sharing
//!   `entryfile` payloads.
//! * [`CtrCipher`] — CTR keystream encryption, used for whole disk blocks
//!   where the ciphertext must have exactly the same length as the plaintext.

use crate::aes::{Aes, BLOCK_LEN};
use crate::sha256::sha256_concat;

/// Error returned when a ciphertext cannot be decrypted into a well-formed
/// plaintext (bad length or bad padding).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CipherError {
    /// Ciphertext length is not a multiple of the block size.
    BadLength,
    /// PKCS#7 padding was malformed; usually means the wrong key was used.
    BadPadding,
}

impl std::fmt::Display for CipherError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CipherError::BadLength => write!(f, "ciphertext length is not a multiple of 16"),
            CipherError::BadPadding => write!(f, "invalid PKCS#7 padding (wrong key?)"),
        }
    }
}

impl std::error::Error for CipherError {}

/// Derive a 16-byte IV for a given key and logical sector index.
///
/// The derivation is `SHA-256(key ‖ "stegfs-iv" ‖ index)[..16]`, so IVs are
/// unique per (key, sector) pair and reproducible without storing them.
pub fn derive_iv(key: &[u8], index: u64) -> [u8; BLOCK_LEN] {
    let digest = sha256_concat(&[key, b"stegfs-iv", &index.to_be_bytes()]);
    let mut iv = [0u8; BLOCK_LEN];
    iv.copy_from_slice(&digest[..BLOCK_LEN]);
    iv
}

/// AES-CBC with PKCS#7 padding.
pub struct CbcCipher {
    aes: Aes,
}

impl CbcCipher {
    /// Create a CBC cipher from raw AES key material (16/24/32 bytes).
    pub fn new(key: &[u8]) -> Self {
        CbcCipher { aes: Aes::new(key) }
    }

    /// Encrypt `plaintext` with the given IV.  The output length is always a
    /// non-zero multiple of 16 bytes (PKCS#7 adds a full block when the input
    /// is already aligned).
    pub fn encrypt(&self, iv: &[u8; BLOCK_LEN], plaintext: &[u8]) -> Vec<u8> {
        let padded = pkcs7_pad(plaintext);
        let mut out = Vec::with_capacity(padded.len());
        let mut prev = *iv;
        for chunk in padded.chunks_exact(BLOCK_LEN) {
            let mut block = [0u8; BLOCK_LEN];
            for i in 0..BLOCK_LEN {
                block[i] = chunk[i] ^ prev[i];
            }
            self.aes.encrypt_block(&mut block);
            out.extend_from_slice(&block);
            prev = block;
        }
        out
    }

    /// Decrypt and strip PKCS#7 padding.
    pub fn decrypt(&self, iv: &[u8; BLOCK_LEN], ciphertext: &[u8]) -> Result<Vec<u8>, CipherError> {
        if ciphertext.is_empty() || !ciphertext.len().is_multiple_of(BLOCK_LEN) {
            return Err(CipherError::BadLength);
        }
        let mut out = Vec::with_capacity(ciphertext.len());
        let mut prev = *iv;
        for chunk in ciphertext.chunks_exact(BLOCK_LEN) {
            let mut block = [0u8; BLOCK_LEN];
            block.copy_from_slice(chunk);
            let saved = block;
            self.aes.decrypt_block(&mut block);
            for i in 0..BLOCK_LEN {
                block[i] ^= prev[i];
            }
            out.extend_from_slice(&block);
            prev = saved;
        }
        pkcs7_unpad(&mut out)?;
        Ok(out)
    }
}

/// AES-CTR keystream cipher: length-preserving, random-access friendly.
///
/// `CtrCipher` *is* the expanded key schedule: [`CtrCipher::new`] runs AES
/// key expansion once, and every subsequent [`apply`](CtrCipher::apply) call
/// reuses the cached round keys.  Hot paths that encrypt many blocks under
/// one key (the hidden-object layer's `ObjectKeys`) must therefore build
/// the cipher once per key and hold on to it — constructing a fresh
/// `CtrCipher` per block re-pays the expansion every time.  The discipline
/// is testable via [`Aes::key_expansions`].
#[derive(Clone)]
pub struct CtrCipher {
    aes: Aes,
}

impl CtrCipher {
    /// Create a CTR cipher from raw AES key material (16/24/32 bytes).
    /// This is the one place key expansion happens; reuse the returned
    /// cipher for every block encrypted under this key.
    pub fn new(key: &[u8]) -> Self {
        CtrCipher { aes: Aes::new(key) }
    }

    /// Wrap an already expanded AES key schedule.
    pub fn from_aes(aes: Aes) -> Self {
        CtrCipher { aes }
    }

    /// XOR `data` in place with the keystream generated from `nonce`.
    /// Encryption and decryption are the same operation.
    pub fn apply(&self, nonce: &[u8; BLOCK_LEN], data: &mut [u8]) {
        let mut counter_block = *nonce;
        let mut offset = 0usize;
        while offset < data.len() {
            let mut keystream = counter_block;
            self.aes.encrypt_block(&mut keystream);
            let take = BLOCK_LEN.min(data.len() - offset);
            for i in 0..take {
                data[offset + i] ^= keystream[i];
            }
            offset += take;
            increment_counter(&mut counter_block);
        }
    }

    /// Convenience wrapper returning a new vector instead of mutating in place.
    pub fn transform(&self, nonce: &[u8; BLOCK_LEN], data: &[u8]) -> Vec<u8> {
        let mut out = data.to_vec();
        self.apply(nonce, &mut out);
        out
    }
}

fn increment_counter(block: &mut [u8; BLOCK_LEN]) {
    for byte in block.iter_mut().rev() {
        let (new, overflow) = byte.overflowing_add(1);
        *byte = new;
        if !overflow {
            break;
        }
    }
}

fn pkcs7_pad(data: &[u8]) -> Vec<u8> {
    let pad = BLOCK_LEN - (data.len() % BLOCK_LEN);
    let mut out = Vec::with_capacity(data.len() + pad);
    out.extend_from_slice(data);
    out.extend(std::iter::repeat_n(pad as u8, pad));
    out
}

fn pkcs7_unpad(data: &mut Vec<u8>) -> Result<(), CipherError> {
    let pad = *data.last().ok_or(CipherError::BadPadding)? as usize;
    if pad == 0 || pad > BLOCK_LEN || pad > data.len() {
        return Err(CipherError::BadPadding);
    }
    if data[data.len() - pad..].iter().any(|&b| b as usize != pad) {
        return Err(CipherError::BadPadding);
    }
    data.truncate(data.len() - pad);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn ctr_matches_sp800_38a_aes256() {
        // NIST SP 800-38A F.5.5 CTR-AES256.Encrypt, first two blocks.
        let key = from_hex("603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4");
        let nonce: [u8; 16] = from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
            .try_into()
            .unwrap();
        let plaintext =
            from_hex("6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51");
        let expected = from_hex("601ec313775789a5b7a7f504bbf3d228f443e3ca4d62b59aca84e990cacaf5c5");
        let ctr = CtrCipher::new(&key);
        assert_eq!(ctr.transform(&nonce, &plaintext), expected);
    }

    #[test]
    fn ctr_roundtrip_unaligned_lengths() {
        let ctr = CtrCipher::new(&[9u8; 32]);
        let nonce = [3u8; 16];
        for len in [0usize, 1, 15, 16, 17, 100, 1024, 4097] {
            let data: Vec<u8> = (0..len).map(|i| (i % 256) as u8).collect();
            let enc = ctr.transform(&nonce, &data);
            assert_eq!(enc.len(), data.len());
            if len > 0 {
                assert_ne!(enc, data, "len {len}");
            }
            assert_eq!(ctr.transform(&nonce, &enc), data);
        }
    }

    #[test]
    fn ctr_counter_wraps_across_byte_boundary() {
        let mut c = [0xffu8; 16];
        increment_counter(&mut c);
        assert_eq!(c, [0u8; 16]);
        let mut c2 = [0u8; 16];
        c2[15] = 0xff;
        increment_counter(&mut c2);
        assert_eq!(c2[15], 0);
        assert_eq!(c2[14], 1);
    }

    #[test]
    fn cbc_roundtrip_various_lengths() {
        let cbc = CbcCipher::new(&[7u8; 32]);
        let iv = [1u8; 16];
        for len in [0usize, 1, 15, 16, 17, 31, 32, 33, 1000] {
            let data: Vec<u8> = (0..len).map(|i| (i * 7 % 256) as u8).collect();
            let enc = cbc.encrypt(&iv, &data);
            assert_eq!(enc.len() % 16, 0);
            assert!(enc.len() > data.len(), "padding always adds bytes");
            assert_eq!(cbc.decrypt(&iv, &enc).unwrap(), data);
        }
    }

    #[test]
    fn cbc_wrong_key_fails_or_garbles() {
        let cbc = CbcCipher::new(&[7u8; 32]);
        let wrong = CbcCipher::new(&[8u8; 32]);
        let iv = [0u8; 16];
        let data = b"the hidden budget spreadsheet".to_vec();
        let enc = cbc.encrypt(&iv, &data);
        match wrong.decrypt(&iv, &enc) {
            Err(CipherError::BadPadding) => {}
            Ok(pt) => assert_ne!(pt, data),
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }

    #[test]
    fn cbc_rejects_truncated_ciphertext() {
        let cbc = CbcCipher::new(&[7u8; 32]);
        let iv = [0u8; 16];
        let enc = cbc.encrypt(&iv, b"hello");
        assert_eq!(cbc.decrypt(&iv, &enc[..15]), Err(CipherError::BadLength));
        assert_eq!(cbc.decrypt(&iv, &[]), Err(CipherError::BadLength));
    }

    #[test]
    fn derive_iv_unique_per_index_and_key() {
        let a = derive_iv(b"key-a", 0);
        let b = derive_iv(b"key-a", 1);
        let c = derive_iv(b"key-b", 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, derive_iv(b"key-a", 0), "must be deterministic");
    }

    #[test]
    fn pkcs7_full_block_padding() {
        let padded = pkcs7_pad(&[0u8; 16]);
        assert_eq!(padded.len(), 32);
        assert!(padded[16..].iter().all(|&b| b == 16));
    }

    #[test]
    fn ctr_same_nonce_same_keystream_detected() {
        // Documenting the classic CTR pitfall: two messages under the same
        // (key, nonce) XOR to the XOR of plaintexts.  StegFS avoids this by
        // deriving a distinct nonce per (file key, block index) pair.
        let ctr = CtrCipher::new(&[5u8; 32]);
        let nonce = [0u8; 16];
        let m1 = vec![0xaau8; 32];
        let m2 = vec![0x55u8; 32];
        let c1 = ctr.transform(&nonce, &m1);
        let c2 = ctr.transform(&nonce, &m2);
        let xored: Vec<u8> = c1.iter().zip(&c2).map(|(a, b)| a ^ b).collect();
        let expected: Vec<u8> = m1.iter().zip(&m2).map(|(a, b)| a ^ b).collect();
        assert_eq!(xored, expected);
    }
}
