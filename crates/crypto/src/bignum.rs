//! Arbitrary-precision unsigned integers for the RSA sharing protocol.
//!
//! The only consumer is [`crate::rsa`], so the API is tailored to what RSA key
//! generation and modular exponentiation need: schoolbook multiplication,
//! small-divisor division, and Montgomery modular arithmetic (which avoids the
//! need for a general long-division routine).  Limbs are 64-bit,
//! little-endian.

use std::cmp::Ordering;

/// An arbitrary-precision unsigned integer (little-endian 64-bit limbs, no
/// redundant leading zero limbs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value 0.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        BigUint::from_u64(1)
    }

    /// Construct from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            BigUint::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Construct from big-endian bytes.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut chunk_start = bytes.len();
        while chunk_start > 0 {
            let lo = chunk_start.saturating_sub(8);
            let mut limb = 0u64;
            for &b in &bytes[lo..chunk_start] {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
            chunk_start = lo;
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// Serialise to big-endian bytes with no leading zeros (empty for 0).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                // Skip leading zeros of the most significant limb.
                let first = bytes.iter().position(|&b| b != 0).unwrap_or(7);
                out.extend_from_slice(&bytes[first..]);
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Serialise to exactly `len` big-endian bytes, left-padded with zeros.
    ///
    /// # Panics
    /// Panics if the value does not fit in `len` bytes.
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(raw.len() <= len, "value does not fit in {len} bytes");
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// True if the value is 0.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True if the value is even (0 counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (0 for the value 0).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * 64 + (64 - top.leading_zeros() as usize),
        }
    }

    /// Value of bit `i` (0 = least significant).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    /// Number of limbs (no leading zero limbs).
    pub fn limb_count(&self) -> usize {
        self.limbs.len()
    }

    /// Compare two values.
    pub fn cmp_big(&self, other: &BigUint) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// `self + other`.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let mut limbs = Vec::with_capacity(self.limbs.len().max(other.limbs.len()) + 1);
        let mut carry = 0u128;
        for i in 0..self.limbs.len().max(other.limbs.len()) {
            let a = *self.limbs.get(i).unwrap_or(&0) as u128;
            let b = *other.limbs.get(i).unwrap_or(&0) as u128;
            let sum = a + b + carry;
            limbs.push(sum as u64);
            carry = sum >> 64;
        }
        if carry != 0 {
            limbs.push(carry as u64);
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// `self + v` for a small addend.
    pub fn add_small(&self, v: u64) -> BigUint {
        self.add(&BigUint::from_u64(v))
    }

    /// `self - other`.
    ///
    /// # Panics
    /// Panics if `other > self`.
    pub fn sub(&self, other: &BigUint) -> BigUint {
        assert!(
            self.cmp_big(other) != Ordering::Less,
            "BigUint subtraction underflow"
        );
        let mut limbs = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i128;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i] as i128;
            let b = *other.limbs.get(i).unwrap_or(&0) as i128;
            let mut diff = a - b - borrow;
            if diff < 0 {
                diff += 1i128 << 64;
                borrow = 1;
            } else {
                borrow = 0;
            }
            limbs.push(diff as u64);
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// `self - v` for a small subtrahend.
    pub fn sub_small(&self, v: u64) -> BigUint {
        self.sub(&BigUint::from_u64(v))
    }

    /// Schoolbook multiplication `self * other`.
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut limbs = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = limbs[i + j] as u128 + (a as u128) * (b as u128) + carry;
                limbs[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = limbs[k] as u128 + carry;
                limbs[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// `self * v` for a small multiplier.
    pub fn mul_small(&self, v: u64) -> BigUint {
        self.mul(&BigUint::from_u64(v))
    }

    /// Divide by a small divisor, returning `(quotient, remainder)`.
    ///
    /// # Panics
    /// Panics if `divisor == 0`.
    pub fn div_rem_small(&self, divisor: u64) -> (BigUint, u64) {
        assert!(divisor != 0, "division by zero");
        let mut quotient = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            quotient[i] = (cur / divisor as u128) as u64;
            rem = cur % divisor as u128;
        }
        let mut q = BigUint { limbs: quotient };
        q.normalize();
        (q, rem as u64)
    }

    /// Remainder modulo a small divisor.
    pub fn mod_small(&self, divisor: u64) -> u64 {
        self.div_rem_small(divisor).1
    }

    /// `self mod modulus` computed with repeated conditional subtraction of
    /// shifted copies of the modulus (binary long division without keeping
    /// the quotient).  Adequate for the occasional use during key generation.
    pub fn rem(&self, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "modulo zero");
        if self.cmp_big(modulus) == Ordering::Less {
            return self.clone();
        }
        let shift = self.bit_len() - modulus.bit_len();
        let mut rem = self.clone();
        for s in (0..=shift).rev() {
            let shifted = modulus.shl_bits(s);
            if rem.cmp_big(&shifted) != Ordering::Less {
                rem = rem.sub(&shifted);
            }
        }
        rem
    }

    /// Left shift by `bits`.
    pub fn shl_bits(&self, bits: usize) -> BigUint {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = bits / 64;
        let bit_shift = bits % 64;
        let mut limbs = vec![0u64; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                limbs.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                limbs.push(carry);
            }
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// Right shift by `bits`.
    pub fn shr_bits(&self, bits: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = bits / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 64;
        let src = &self.limbs[limb_shift..];
        let mut limbs = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            limbs.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = if i + 1 < src.len() {
                    src[i + 1] << (64 - bit_shift)
                } else {
                    0
                };
                limbs.push(lo | hi);
            }
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// Modular exponentiation `self^exponent mod modulus` using Montgomery
    /// multiplication.  The modulus must be odd (always true for RSA moduli
    /// and primes).
    pub fn modpow(&self, exponent: &BigUint, modulus: &BigUint) -> BigUint {
        let ctx = MontgomeryCtx::new(modulus);
        ctx.modpow(self, exponent)
    }
}

/// Montgomery arithmetic context for a fixed odd modulus.
pub struct MontgomeryCtx {
    modulus: Vec<u64>,
    n0_inv: u64,
    r2: Vec<u64>,
    limbs: usize,
}

impl MontgomeryCtx {
    /// Create a context.
    ///
    /// # Panics
    /// Panics if the modulus is zero or even.
    pub fn new(modulus: &BigUint) -> Self {
        assert!(!modulus.is_zero(), "modulus must be nonzero");
        assert!(
            !modulus.is_even(),
            "Montgomery arithmetic requires an odd modulus"
        );
        let limbs = modulus.limbs.len();
        let n0 = modulus.limbs[0];

        // Newton iteration for n0^{-1} mod 2^64.
        let mut inv = n0;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        let n0_inv = inv.wrapping_neg();

        // R^2 mod n, computed by 2 * 64 * limbs doublings of (R mod n ... )
        // starting from 1: after 64*limbs doublings we have R mod n, after
        // another 64*limbs we have R^2... that is only true modulo n, which is
        // exactly what we want.
        let mut r = BigUint::one().rem(modulus);
        for _ in 0..(2 * 64 * limbs) {
            r = r.add(&r);
            if r.cmp_big(modulus) != Ordering::Less {
                r = r.sub(modulus);
            }
        }
        let mut r2 = r.limbs.clone();
        r2.resize(limbs, 0);

        MontgomeryCtx {
            modulus: modulus.limbs.clone(),
            n0_inv,
            r2,
            limbs,
        }
    }

    /// Montgomery multiplication (CIOS): returns `a * b * R^{-1} mod n` where
    /// inputs and output are `limbs`-length little-endian slices.
    fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let n = &self.modulus;
        let s = self.limbs;
        let mut t = vec![0u64; s + 2];

        for &ai in a.iter().take(s) {
            // t += ai * b
            let mut carry = 0u128;
            for j in 0..s {
                let cur = t[j] as u128 + (ai as u128) * (b[j] as u128) + carry;
                t[j] = cur as u64;
                carry = cur >> 64;
            }
            let cur = t[s] as u128 + carry;
            t[s] = cur as u64;
            t[s + 1] = (cur >> 64) as u64;

            // m = t[0] * n0_inv mod 2^64; t += m * n; t >>= 64
            let m = t[0].wrapping_mul(self.n0_inv);
            let cur = t[0] as u128 + (m as u128) * (n[0] as u128);
            let mut carry = cur >> 64;
            for j in 1..s {
                let cur = t[j] as u128 + (m as u128) * (n[j] as u128) + carry;
                t[j - 1] = cur as u64;
                carry = cur >> 64;
            }
            let cur = t[s] as u128 + carry;
            t[s - 1] = cur as u64;
            t[s] = t[s + 1] + (cur >> 64) as u64;
            t[s + 1] = 0;
        }

        // Final conditional subtraction.
        let mut result: Vec<u64> = t[..s].to_vec();
        let overflow = t[s] != 0;
        if overflow || cmp_slices(&result, n) != Ordering::Less {
            sub_in_place(&mut result, n);
        }
        result
    }

    fn to_mont(&self, a: &BigUint) -> Vec<u64> {
        let reduced = a.rem(&BigUint {
            limbs: self.modulus.clone(),
        });
        let mut padded = reduced.limbs;
        padded.resize(self.limbs, 0);
        self.mont_mul(&padded, &self.r2)
    }

    fn mont_back(&self, a: &[u64]) -> BigUint {
        let one = {
            let mut v = vec![0u64; self.limbs];
            v[0] = 1;
            v
        };
        let mut out = BigUint {
            limbs: self.mont_mul(a, &one),
        };
        out.normalize();
        out
    }

    /// `base^exponent mod n` (left-to-right binary exponentiation).
    pub fn modpow(&self, base: &BigUint, exponent: &BigUint) -> BigUint {
        if exponent.is_zero() {
            return BigUint::one().rem(&BigUint {
                limbs: self.modulus.clone(),
            });
        }
        let base_m = self.to_mont(base);
        let mut acc = self.to_mont(&BigUint::one());
        for i in (0..exponent.bit_len()).rev() {
            acc = self.mont_mul(&acc, &acc);
            if exponent.bit(i) {
                acc = self.mont_mul(&acc, &base_m);
            }
        }
        self.mont_back(&acc)
    }
}

fn cmp_slices(a: &[u64], b: &[u64]) -> Ordering {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            Ordering::Equal => continue,
            ord => return ord,
        }
    }
    Ordering::Equal
}

fn sub_in_place(a: &mut [u64], b: &[u64]) {
    let mut borrow = 0i128;
    for i in 0..a.len() {
        let mut diff = a[i] as i128 - b[i] as i128 - borrow;
        if diff < 0 {
            diff += 1i128 << 64;
            borrow = 1;
        } else {
            borrow = 0;
        }
        a[i] = diff as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn byte_roundtrip() {
        for bytes in [
            vec![],
            vec![0u8],
            vec![1u8],
            vec![0xff; 9],
            vec![0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde, 0xf0, 0x11],
        ] {
            let n = BigUint::from_bytes_be(&bytes);
            let back = n.to_bytes_be();
            // Leading zeros are dropped, so compare numerically.
            assert_eq!(BigUint::from_bytes_be(&back), n);
        }
    }

    #[test]
    fn padded_bytes() {
        let n = BigUint::from_u64(0x1234);
        assert_eq!(n.to_bytes_be_padded(4), vec![0, 0, 0x12, 0x34]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn padded_bytes_too_small_panics() {
        BigUint::from_u64(0x123456).to_bytes_be_padded(2);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = BigUint::from_bytes_be(&[0xff; 20]);
        let b = BigUint::from_bytes_be(&[0xab; 13]);
        let sum = a.add(&b);
        assert_eq!(sum.sub(&b), a);
        assert_eq!(sum.sub(&a), b);
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = BigUint::from_bytes_be(&[0xff; 16]); // 2^128 - 1
        let sum = a.add_small(1);
        assert_eq!(sum.bit_len(), 129);
        assert_eq!(sum.sub_small(1), a);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        big(1).sub(&big(2));
    }

    #[test]
    fn mul_matches_u128() {
        let a = 0xdead_beef_1234_5678u64;
        let b = 0xcafe_babe_8765_4321u64;
        let expected = (a as u128) * (b as u128);
        let got = big(a).mul(&big(b));
        let mut bytes = got.to_bytes_be();
        while bytes.len() < 16 {
            bytes.insert(0, 0);
        }
        assert_eq!(u128::from_be_bytes(bytes.try_into().unwrap()), expected);
    }

    #[test]
    fn mul_by_zero_and_one() {
        let a = BigUint::from_bytes_be(&[7u8; 25]);
        assert!(a.mul(&BigUint::zero()).is_zero());
        assert_eq!(a.mul(&BigUint::one()), a);
    }

    #[test]
    fn div_rem_small_matches_u128() {
        let value = BigUint::from_bytes_be(&[0x3a; 16]);
        let as_u128 = u128::from_be_bytes([0x3a; 16]);
        for d in [1u64, 2, 3, 10, 97, u64::MAX] {
            let (q, r) = value.div_rem_small(d);
            assert_eq!(r as u128, as_u128 % d as u128, "divisor {d}");
            let recomposed = q.mul_small(d).add_small(r);
            assert_eq!(recomposed, value, "divisor {d}");
        }
    }

    #[test]
    fn rem_basic() {
        let a = big(1000);
        assert_eq!(a.rem(&big(7)), big(1000 % 7));
        assert_eq!(big(5).rem(&big(7)), big(5));
        assert_eq!(big(14).rem(&big(7)), BigUint::zero());
    }

    #[test]
    fn shifts() {
        let a = big(0b1011);
        assert_eq!(a.shl_bits(3), big(0b1011000));
        assert_eq!(a.shl_bits(0), a);
        assert_eq!(a.shl_bits(64).shr_bits(64), a);
        assert_eq!(a.shr_bits(2), big(0b10));
        assert_eq!(a.shr_bits(100), BigUint::zero());
    }

    #[test]
    fn bit_len_and_bits() {
        assert_eq!(BigUint::zero().bit_len(), 0);
        assert_eq!(big(1).bit_len(), 1);
        assert_eq!(big(0xff).bit_len(), 8);
        let big_val = BigUint::one().shl_bits(200);
        assert_eq!(big_val.bit_len(), 201);
        assert!(big_val.bit(200));
        assert!(!big_val.bit(199));
        assert!(!big_val.bit(1000));
    }

    #[test]
    fn modpow_small_values() {
        // 4^13 mod 497 = 445 (classic textbook example).
        assert_eq!(big(4).modpow(&big(13), &big(497)), big(445));
        // Fermat: 2^(p-1) mod p = 1 for prime p.
        assert_eq!(big(2).modpow(&big(1008), &big(1009)), big(1));
        // exponent 0 => 1.
        assert_eq!(big(12345).modpow(&BigUint::zero(), &big(997)), big(1));
    }

    #[test]
    fn modpow_matches_naive_for_random_small_cases() {
        // Deterministic pseudo-random small cases checked against u128 math.
        let mut x = 0x12345678u64;
        let mut next = || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            x >> 33
        };
        for _ in 0..50 {
            let base = next() % 1000 + 1;
            let exp = next() % 50;
            let modulus = (next() % 5000) * 2 + 3; // odd, >= 3
            let mut expected: u128 = 1;
            for _ in 0..exp {
                expected = expected * base as u128 % modulus as u128;
            }
            assert_eq!(
                big(base).modpow(&big(exp), &big(modulus)),
                big(expected as u64),
                "base={base} exp={exp} mod={modulus}"
            );
        }
    }

    #[test]
    fn modpow_large_modulus_roundtrip() {
        // (m^e)^d == m mod n for a tiny RSA instance:
        // p = 61, q = 53, n = 3233, phi = 3120, e = 17, d = 2753.
        let n = big(3233);
        let m = big(65);
        let c = m.modpow(&big(17), &n);
        assert_eq!(c, big(2790));
        assert_eq!(c.modpow(&big(2753), &n), m);
    }

    #[test]
    fn montgomery_rejects_even_modulus() {
        let result = std::panic::catch_unwind(|| MontgomeryCtx::new(&big(100)));
        assert!(result.is_err());
    }

    #[test]
    fn cmp_orderings() {
        assert_eq!(big(5).cmp_big(&big(5)), Ordering::Equal);
        assert_eq!(big(4).cmp_big(&big(5)), Ordering::Less);
        assert_eq!(big(6).cmp_big(&big(5)), Ordering::Greater);
        let large = BigUint::one().shl_bits(128);
        assert_eq!(large.cmp_big(&big(u64::MAX)), Ordering::Greater);
    }
}
