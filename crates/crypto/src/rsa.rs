//! Textbook RSA for the StegFS file-sharing protocol.
//!
//! When the owner of a hidden file shares it (Figure 4 of the paper), the
//! `(file name, FAK)` pair is encrypted under the *recipient's public key* and
//! shipped out of band; the recipient decrypts it with their private key and
//! folds the entry into their own UAK directory.  Any public-key encryption
//! scheme fills that role; this module provides a small, self-contained RSA
//! implementation so the workspace has no external cryptography dependencies.
//!
//! **Scope**: simulation-grade.  Key generation is deterministic from a
//! caller-provided seed (which makes experiments reproducible), padding is a
//! simple randomized scheme in the spirit of PKCS#1 v1.5 type 2, and nothing
//! here is constant-time.  Do not reuse outside this reproduction.

use crate::bignum::BigUint;
use crate::prng::DeterministicRng;

/// Errors from RSA operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsaError {
    /// Message too long for the modulus with the mandatory padding.
    MessageTooLong,
    /// Ciphertext is not a valid encryption under this key.
    InvalidCiphertext,
}

impl std::fmt::Display for RsaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RsaError::MessageTooLong => write!(f, "message too long for RSA modulus"),
            RsaError::InvalidCiphertext => write!(f, "invalid RSA ciphertext or wrong key"),
        }
    }
}

impl std::error::Error for RsaError {}

const PUBLIC_EXPONENT: u64 = 65_537;
/// Minimum number of random non-zero padding bytes, as in PKCS#1 v1.5.
const MIN_PAD: usize = 8;

/// An RSA public key `(n, e)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RsaPublicKey {
    n: BigUint,
    e: BigUint,
    modulus_len: usize,
}

/// An RSA private key `(n, d)`.
#[derive(Clone, Debug)]
pub struct RsaPrivateKey {
    n: BigUint,
    d: BigUint,
    modulus_len: usize,
}

/// A matched public/private key pair.
#[derive(Clone, Debug)]
pub struct RsaKeyPair {
    /// Public half, safe to distribute.
    pub public: RsaPublicKey,
    /// Private half, kept by the key owner.
    pub private: RsaPrivateKey,
}

impl RsaKeyPair {
    /// Deterministically generate a key pair of roughly `bits` modulus bits
    /// from `seed`.  The same seed always yields the same key pair, which the
    /// experiments rely on for reproducibility.
    ///
    /// # Panics
    /// Panics if `bits < 128` (too small to hold any padded message).
    pub fn generate(bits: usize, seed: &[u8]) -> Self {
        assert!(bits >= 128, "modulus must be at least 128 bits");
        let mut rng = DeterministicRng::new(seed);
        let half = bits / 2;

        loop {
            let p = generate_prime(half, &mut rng);
            let q = generate_prime(bits - half, &mut rng);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            let phi = p.sub_small(1).mul(&q.sub_small(1));
            // e must be invertible mod phi.
            if phi.mod_small(PUBLIC_EXPONENT) == 0 {
                continue;
            }
            let d = match invert_small_exponent(PUBLIC_EXPONENT, &phi) {
                Some(d) => d,
                None => continue,
            };
            let modulus_len = n.to_bytes_be().len();
            return RsaKeyPair {
                public: RsaPublicKey {
                    n: n.clone(),
                    e: BigUint::from_u64(PUBLIC_EXPONENT),
                    modulus_len,
                },
                private: RsaPrivateKey { n, d, modulus_len },
            };
        }
    }
}

impl RsaPublicKey {
    /// Maximum plaintext length accepted by [`encrypt`](Self::encrypt).
    pub fn max_message_len(&self) -> usize {
        self.modulus_len.saturating_sub(MIN_PAD + 3)
    }

    /// Modulus length in bytes; ciphertexts have exactly this length.
    pub fn modulus_len(&self) -> usize {
        self.modulus_len
    }

    /// Serialise as `len(n) ‖ n ‖ e` for storage in key files.
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.n.to_bytes_be();
        let e = self.e.to_bytes_be();
        let mut out = Vec::with_capacity(4 + n.len() + e.len());
        out.extend_from_slice(&(n.len() as u32).to_be_bytes());
        out.extend_from_slice(&n);
        out.extend_from_slice(&e);
        out
    }

    /// Parse the serialisation produced by [`to_bytes`](Self::to_bytes).
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 4 {
            return None;
        }
        let n_len = u32::from_be_bytes(bytes[..4].try_into().ok()?) as usize;
        if bytes.len() < 4 + n_len + 1 {
            return None;
        }
        let n = BigUint::from_bytes_be(&bytes[4..4 + n_len]);
        let e = BigUint::from_bytes_be(&bytes[4 + n_len..]);
        if n.is_zero() || e.is_zero() {
            return None;
        }
        let modulus_len = n.to_bytes_be().len();
        Some(RsaPublicKey { n, e, modulus_len })
    }

    /// Encrypt `message` with randomized padding drawn from `pad_seed`.
    pub fn encrypt(&self, message: &[u8], pad_seed: &[u8]) -> Result<Vec<u8>, RsaError> {
        if message.len() > self.max_message_len() {
            return Err(RsaError::MessageTooLong);
        }
        // Padded block: 0x00 0x02 <non-zero random bytes> 0x00 <message>
        let mut rng = DeterministicRng::new(pad_seed);
        let pad_len = self.modulus_len - 3 - message.len();
        let mut block = Vec::with_capacity(self.modulus_len);
        block.push(0x00);
        block.push(0x02);
        for _ in 0..pad_len {
            let mut byte = [0u8; 1];
            loop {
                rng.fill(&mut byte);
                if byte[0] != 0 {
                    break;
                }
            }
            block.push(byte[0]);
        }
        block.push(0x00);
        block.extend_from_slice(message);
        debug_assert_eq!(block.len(), self.modulus_len);

        let m = BigUint::from_bytes_be(&block);
        let c = m.modpow(&self.e, &self.n);
        Ok(c.to_bytes_be_padded(self.modulus_len))
    }
}

impl RsaPrivateKey {
    /// Decrypt a ciphertext produced by the matching public key.
    pub fn decrypt(&self, ciphertext: &[u8]) -> Result<Vec<u8>, RsaError> {
        if ciphertext.len() != self.modulus_len {
            return Err(RsaError::InvalidCiphertext);
        }
        let c = BigUint::from_bytes_be(ciphertext);
        if c.cmp_big(&self.n) != std::cmp::Ordering::Less {
            return Err(RsaError::InvalidCiphertext);
        }
        let m = c.modpow(&self.d, &self.n);
        let block = m.to_bytes_be_padded(self.modulus_len);
        // Expect 0x00 0x02 <pad> 0x00 <message>.
        if block.len() < 3 + MIN_PAD || block[0] != 0x00 || block[1] != 0x02 {
            return Err(RsaError::InvalidCiphertext);
        }
        let sep = block[2..]
            .iter()
            .position(|&b| b == 0)
            .ok_or(RsaError::InvalidCiphertext)?;
        if sep < MIN_PAD {
            return Err(RsaError::InvalidCiphertext);
        }
        Ok(block[2 + sep + 1..].to_vec())
    }

    /// Modulus length in bytes.
    pub fn modulus_len(&self) -> usize {
        self.modulus_len
    }
}

/// Compute `d = e^{-1} mod phi` for a small (machine-word) public exponent
/// using the identity `d = (1 + k*phi) / e` where `k = -phi^{-1} mod e`.
fn invert_small_exponent(e: u64, phi: &BigUint) -> Option<BigUint> {
    let phi_mod_e = phi.mod_small(e);
    let inv = mod_inverse_u64(phi_mod_e, e)?;
    // k = (-phi^{-1}) mod e = (e - inv) mod e
    let k = (e - inv) % e;
    let numerator = phi.mul_small(k).add_small(1);
    let (d, rem) = numerator.div_rem_small(e);
    if rem != 0 {
        return None;
    }
    Some(d)
}

/// Modular inverse of `a` modulo `m` for machine words (extended Euclid).
fn mod_inverse_u64(a: u64, m: u64) -> Option<u64> {
    if m == 0 {
        return None;
    }
    let (mut old_r, mut r) = (a as i128, m as i128);
    let (mut old_s, mut s) = (1i128, 0i128);
    while r != 0 {
        let q = old_r / r;
        (old_r, r) = (r, old_r - q * r);
        (old_s, s) = (s, old_s - q * s);
    }
    if old_r != 1 {
        return None;
    }
    let mut inv = old_s % m as i128;
    if inv < 0 {
        inv += m as i128;
    }
    Some(inv as u64)
}

const SMALL_PRIMES: [u64; 54] = [
    3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257,
];

fn generate_prime(bits: usize, rng: &mut DeterministicRng) -> BigUint {
    assert!(bits >= 16, "prime too small");
    loop {
        let byte_len = bits.div_ceil(8);
        let mut bytes = rng.bytes(byte_len);
        // Force the exact bit length (top bit set) and oddness.
        let top_bit = (bits - 1) % 8;
        let mask = if top_bit == 7 {
            0xffu8
        } else {
            (1u8 << (top_bit + 1)) - 1
        };
        bytes[0] &= mask;
        bytes[0] |= 1 << top_bit;
        // Also set the second-highest bit so p*q has full length.
        if bits >= 2 {
            let second = bits - 2;
            let idx = byte_len - 1 - second / 8;
            bytes[idx] |= 1 << (second % 8);
        }
        *bytes.last_mut().expect("nonempty") |= 1;
        let candidate = BigUint::from_bytes_be(&bytes);

        if SMALL_PRIMES
            .iter()
            .any(|&p| candidate.mod_small(p) == 0 && candidate != BigUint::from_u64(p))
        {
            continue;
        }
        if is_probable_prime(&candidate, 16, rng) {
            return candidate;
        }
    }
}

/// Miller–Rabin primality test.  For values that fit in 63 bits a fixed set
/// of deterministic witnesses is used (exact for that range); larger values
/// use `rounds` random 62-bit bases, which cannot collide with a multiple of
/// the (much larger) candidate.
fn is_probable_prime(n: &BigUint, rounds: usize, rng: &mut DeterministicRng) -> bool {
    // Dispose of small and even values first.
    if n.cmp_big(&BigUint::from_u64(2)) == std::cmp::Ordering::Less {
        return false;
    }
    for &p in SMALL_PRIMES.iter().chain(std::iter::once(&2u64)) {
        if *n == BigUint::from_u64(p) {
            return true;
        }
        if n.mod_small(p) == 0 {
            return false;
        }
    }

    // n - 1 = d * 2^s with d odd.
    let n_minus_1 = n.sub_small(1);
    let mut d = n_minus_1.clone();
    let mut s = 0usize;
    while d.is_even() {
        d = d.shr_bits(1);
        s += 1;
    }

    // Deterministic witness set for n < 3.3 * 10^24 (covers all u64 values);
    // random bases otherwise.
    let small = n.bit_len() <= 63;
    let deterministic_bases: [u64; 12] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37];
    let total = if small {
        deterministic_bases.len()
    } else {
        rounds
    };

    // Indexing keeps the RNG draw order identical to the original loop
    // (pre-collecting bases would change key-generation determinism).
    #[allow(clippy::needless_range_loop)]
    'witness: for round in 0..total {
        let a = if small {
            BigUint::from_u64(deterministic_bases[round])
        } else {
            BigUint::from_u64(rng.next_in_range(2, 1u64 << 62))
        };
        let mut x = a.modpow(&d, n);
        if x == BigUint::one() || x == n_minus_1 {
            continue 'witness;
        }
        for _ in 0..s.saturating_sub(1) {
            x = x.modpow(&BigUint::from_u64(2), n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_keypair() -> RsaKeyPair {
        // 512-bit keys keep debug-mode tests fast while exercising the full
        // multi-limb code paths.
        RsaKeyPair::generate(512, b"stegfs test key seed")
    }

    #[test]
    fn keygen_is_deterministic() {
        let a = RsaKeyPair::generate(256, b"seed-x");
        let b = RsaKeyPair::generate(256, b"seed-x");
        assert_eq!(a.public, b.public);
        let c = RsaKeyPair::generate(256, b"seed-y");
        assert_ne!(a.public, c.public);
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let kp = test_keypair();
        let message = b"budget.xls:FAK=0123456789abcdef";
        let ct = kp.public.encrypt(message, b"pad-seed").unwrap();
        assert_eq!(ct.len(), kp.public.modulus_len());
        assert_eq!(kp.private.decrypt(&ct).unwrap(), message);
    }

    #[test]
    fn empty_message_roundtrip() {
        let kp = test_keypair();
        let ct = kp.public.encrypt(b"", b"pad").unwrap();
        assert_eq!(kp.private.decrypt(&ct).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn message_too_long_rejected() {
        let kp = test_keypair();
        let too_long = vec![0u8; kp.public.max_message_len() + 1];
        assert_eq!(
            kp.public.encrypt(&too_long, b"pad"),
            Err(RsaError::MessageTooLong)
        );
        let just_right = vec![7u8; kp.public.max_message_len()];
        let ct = kp.public.encrypt(&just_right, b"pad").unwrap();
        assert_eq!(kp.private.decrypt(&ct).unwrap(), just_right);
    }

    #[test]
    fn wrong_key_fails_to_decrypt() {
        let kp1 = RsaKeyPair::generate(512, b"recipient");
        let kp2 = RsaKeyPair::generate(512, b"impostor");
        let ct = kp1.public.encrypt(b"secret entry", b"pad").unwrap();
        // Either an explicit error or garbage that differs from the message.
        match kp2.private.decrypt(&ct) {
            Err(_) => {}
            Ok(pt) => assert_ne!(pt, b"secret entry"),
        }
    }

    #[test]
    fn tampered_ciphertext_rejected_or_garbled() {
        let kp = test_keypair();
        let mut ct = kp.public.encrypt(b"share this file", b"pad").unwrap();
        ct[10] ^= 0xff;
        match kp.private.decrypt(&ct) {
            Err(_) => {}
            Ok(pt) => assert_ne!(pt, b"share this file"),
        }
    }

    #[test]
    fn ciphertext_length_validation() {
        let kp = test_keypair();
        assert_eq!(
            kp.private.decrypt(&[0u8; 10]),
            Err(RsaError::InvalidCiphertext)
        );
    }

    #[test]
    fn public_key_serialization_roundtrip() {
        let kp = test_keypair();
        let bytes = kp.public.to_bytes();
        let parsed = RsaPublicKey::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, kp.public);
        // Encryption under the parsed key is still decryptable.
        let ct = parsed.encrypt(b"roundtrip", b"pad").unwrap();
        assert_eq!(kp.private.decrypt(&ct).unwrap(), b"roundtrip");
    }

    #[test]
    fn public_key_parse_rejects_garbage() {
        assert!(RsaPublicKey::from_bytes(&[]).is_none());
        assert!(RsaPublicKey::from_bytes(&[0, 0, 0, 200, 1, 2, 3]).is_none());
    }

    #[test]
    fn mod_inverse_u64_basics() {
        assert_eq!(mod_inverse_u64(3, 11), Some(4));
        assert_eq!(mod_inverse_u64(10, 17), Some(12));
        assert_eq!(mod_inverse_u64(6, 9), None); // not coprime
        assert_eq!(mod_inverse_u64(5, 0), None);
    }

    #[test]
    fn miller_rabin_classifies_known_values() {
        let mut rng = DeterministicRng::new(b"mr");
        for p in [2u64, 3, 5, 7, 65537, 1_000_000_007, 2_147_483_647] {
            assert!(
                is_probable_prime(&BigUint::from_u64(p), 16, &mut rng),
                "{p} should be prime"
            );
        }
        for c in [1u64, 4, 9, 15, 561, 1105, 1729, 2465, 6601, 1_000_000_008] {
            assert!(
                !is_probable_prime(&BigUint::from_u64(c), 16, &mut rng),
                "{c} should be composite"
            );
        }
    }

    #[test]
    fn generated_primes_have_requested_length() {
        let mut rng = DeterministicRng::new(b"prime-len");
        for bits in [64usize, 96, 128] {
            let p = generate_prime(bits, &mut rng);
            assert_eq!(p.bit_len(), bits, "requested {bits} bits");
            assert!(!p.is_even());
        }
    }

    #[test]
    fn different_pad_seeds_give_different_ciphertexts() {
        let kp = test_keypair();
        let c1 = kp.public.encrypt(b"same message", b"pad-1").unwrap();
        let c2 = kp.public.encrypt(b"same message", b"pad-2").unwrap();
        assert_ne!(c1, c2);
        assert_eq!(kp.private.decrypt(&c1).unwrap(), b"same message");
        assert_eq!(kp.private.decrypt(&c2).unwrap(), b"same message");
    }
}
