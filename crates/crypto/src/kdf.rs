//! Key derivation from pass-phrases.
//!
//! The paper treats "access keys" (UAKs and FAKs) abstractly; in the Linux
//! implementation they are strings supplied by the user.  This module turns an
//! arbitrary-length pass-phrase plus a context label into fixed-length AES key
//! material using an iterated HMAC construction (PBKDF2-style with a single
//! block, which is all that is needed for a 32-byte output).

use crate::hmac::hmac_sha256;
use crate::sha256::DIGEST_LEN;

/// Default iteration count.  Kept modest because the experiments create
/// thousands of hidden files; the construction is the interesting part, not
/// the work factor.
pub const DEFAULT_ITERATIONS: u32 = 1_000;

/// Derive a 32-byte key from `passphrase`, bound to `context` (for example
/// `"stegfs/fak"` or `"stegfs/uak-directory"`) and `salt`.
pub fn derive_key(passphrase: &[u8], context: &[u8], salt: &[u8]) -> [u8; DIGEST_LEN] {
    derive_key_with_iterations(passphrase, context, salt, DEFAULT_ITERATIONS)
}

/// Derive a 32-byte key with an explicit iteration count.
pub fn derive_key_with_iterations(
    passphrase: &[u8],
    context: &[u8],
    salt: &[u8],
    iterations: u32,
) -> [u8; DIGEST_LEN] {
    assert!(iterations > 0, "iteration count must be positive");

    // PBKDF2-HMAC-SHA256 with a single output block (block index 1), with the
    // context label folded into the salt.
    let mut salted = Vec::with_capacity(context.len() + 1 + salt.len() + 4);
    salted.extend_from_slice(context);
    salted.push(0u8);
    salted.extend_from_slice(salt);
    salted.extend_from_slice(&1u32.to_be_bytes());

    let mut u = hmac_sha256(passphrase, &salted);
    let mut output = u;
    for _ in 1..iterations {
        u = hmac_sha256(passphrase, &u);
        for i in 0..DIGEST_LEN {
            output[i] ^= u[i];
        }
    }
    output
}

/// Derive a sub-key from an existing 32-byte key and a purpose label, e.g.
/// separating the encryption key of a hidden file from its signature key.
pub fn derive_subkey(master: &[u8; DIGEST_LEN], purpose: &[u8]) -> [u8; DIGEST_LEN] {
    hmac_sha256(master, purpose)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = derive_key(b"hunter2", b"stegfs/fak", b"salt");
        let b = derive_key(b"hunter2", b"stegfs/fak", b"salt");
        assert_eq!(a, b);
    }

    #[test]
    fn passphrase_context_salt_all_matter() {
        let base = derive_key(b"hunter2", b"stegfs/fak", b"salt");
        assert_ne!(base, derive_key(b"hunter3", b"stegfs/fak", b"salt"));
        assert_ne!(base, derive_key(b"hunter2", b"stegfs/uak", b"salt"));
        assert_ne!(base, derive_key(b"hunter2", b"stegfs/fak", b"pepper"));
    }

    #[test]
    fn iterations_change_output() {
        let a = derive_key_with_iterations(b"p", b"c", b"s", 1);
        let b = derive_key_with_iterations(b"p", b"c", b"s", 2);
        assert_ne!(a, b);
    }

    #[test]
    fn pbkdf2_single_iteration_matches_hmac_definition() {
        // With one iteration the output is exactly HMAC(pass, context||0||salt||be32(1)).
        let out = derive_key_with_iterations(b"pw", b"ctx", b"salt", 1);
        let mut msg = Vec::new();
        msg.extend_from_slice(b"ctx");
        msg.push(0);
        msg.extend_from_slice(b"salt");
        msg.extend_from_slice(&1u32.to_be_bytes());
        assert_eq!(out, crate::hmac::hmac_sha256(b"pw", &msg));
    }

    #[test]
    fn subkeys_are_domain_separated() {
        let master = derive_key(b"pw", b"ctx", b"salt");
        let enc = derive_subkey(&master, b"encrypt");
        let sig = derive_subkey(&master, b"signature");
        assert_ne!(enc, sig);
        assert_ne!(enc, master);
    }

    #[test]
    #[should_panic(expected = "iteration count must be positive")]
    fn zero_iterations_rejected() {
        derive_key_with_iterations(b"p", b"c", b"s", 0);
    }
}
