//! AES block cipher (FIPS 197), supporting 128-, 192- and 256-bit keys.
//!
//! StegFS encrypts every block of a hidden object (header, inode blocks and
//! data blocks) so that allocated-but-hidden blocks are indistinguishable from
//! the pseudorandom fill written into the volume at format time.  The paper
//! names AES as the block cipher; the implementation here is the classic
//! T-table software variant (SubBytes + ShiftRows + MixColumns fused into
//! four 1 KiB lookup tables, four table reads per column per round — the
//! form OpenSSL and the Linux kernel use without AES-NI), validated against
//! the FIPS 197 and NIST SP 800-38A test vectors.  Every block in the write
//! path crosses this cipher at least twice (object CTR + journal slot), so
//! its per-block cost bounds hidden-I/O throughput on a CPU-saturated box.

/// AES block size in bytes.
pub const BLOCK_LEN: usize = 16;

const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

const INV_SBOX: [u8; 256] = {
    let mut inv = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        inv[SBOX[i] as usize] = i as u8;
        i += 1;
    }
    inv
};

const RCON: [u8; 11] = [
    0x00, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36,
];

#[inline]
const fn xtime(x: u8) -> u8 {
    (x << 1) ^ (((x >> 7) & 1) * 0x1b)
}

#[inline]
const fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    let mut i = 0;
    while i < 8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
        i += 1;
    }
    p
}

// --- T-tables -------------------------------------------------------------
//
// One encryption round maps input columns (s0, s1, s2, s3) to
//   t_j = TE0[s_j >> 24] ^ TE1[(s_{j+1} >> 16) & 0xff]
//       ^ TE2[(s_{j+2} >> 8) & 0xff] ^ TE3[s_{j+3} & 0xff] ^ rk_j
// where each TEi entry pre-combines SubBytes with that byte's MixColumns
// contribution ([2,1,1,3] rotated per row).  Decryption uses the
// "equivalent inverse cipher" (FIPS 197 §5.3.5): TD tables over INV_SBOX
// with the [0e,09,0d,0b] matrix, and round keys pre-passed through
// InvMixColumns so the round shape matches encryption.

const fn te_entry(x: usize, rot: u32) -> u32 {
    let s = SBOX[x];
    let s2 = xtime(s);
    let s3 = s2 ^ s;
    let w = ((s2 as u32) << 24) | ((s as u32) << 16) | ((s as u32) << 8) | (s3 as u32);
    w.rotate_right(rot)
}

const fn td_entry(x: usize, rot: u32) -> u32 {
    let s = INV_SBOX[x];
    let w = ((gf_mul(s, 0x0e) as u32) << 24)
        | ((gf_mul(s, 0x09) as u32) << 16)
        | ((gf_mul(s, 0x0d) as u32) << 8)
        | (gf_mul(s, 0x0b) as u32);
    w.rotate_right(rot)
}

const fn build_table(enc: bool, rot: u32) -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        t[i] = if enc {
            te_entry(i, rot)
        } else {
            td_entry(i, rot)
        };
        i += 1;
    }
    t
}

const TE0: [u32; 256] = build_table(true, 0);
const TE1: [u32; 256] = build_table(true, 8);
const TE2: [u32; 256] = build_table(true, 16);
const TE3: [u32; 256] = build_table(true, 24);
const TD0: [u32; 256] = build_table(false, 0);
const TD1: [u32; 256] = build_table(false, 8);
const TD2: [u32; 256] = build_table(false, 16);
const TD3: [u32; 256] = build_table(false, 24);

/// Key size variants supported by [`Aes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeySize {
    /// 128-bit key, 10 rounds.
    Aes128,
    /// 192-bit key, 12 rounds.
    Aes192,
    /// 256-bit key, 14 rounds.
    Aes256,
}

impl KeySize {
    fn rounds(self) -> usize {
        match self {
            KeySize::Aes128 => 10,
            KeySize::Aes192 => 12,
            KeySize::Aes256 => 14,
        }
    }

    fn key_words(self) -> usize {
        match self {
            KeySize::Aes128 => 4,
            KeySize::Aes192 => 6,
            KeySize::Aes256 => 8,
        }
    }
}

/// Process-wide count of key schedules built (see [`Aes::key_expansions`]).
static KEY_EXPANSIONS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// An expanded AES key ready to encrypt or decrypt 16-byte blocks.
///
/// Holds both schedules: the encryption round keys as big-endian words, and
/// the equivalent-inverse-cipher keys (round keys passed through
/// InvMixColumns) that the T-table decryption rounds consume.
#[derive(Clone)]
pub struct Aes {
    enc_keys: Vec<u32>,
    dec_keys: Vec<u32>,
    rounds: usize,
}

impl Aes {
    /// Expand `key` (16, 24 or 32 bytes).
    ///
    /// # Panics
    /// Panics if the key length is not one of the three AES key sizes; key
    /// material inside StegFS is always produced by the KDF and has a fixed
    /// length, so a wrong length is a programming error rather than an I/O
    /// error.
    pub fn new(key: &[u8]) -> Self {
        let size = match key.len() {
            16 => KeySize::Aes128,
            24 => KeySize::Aes192,
            32 => KeySize::Aes256,
            other => panic!("invalid AES key length: {other} bytes"),
        };
        Self::with_key_size(key, size)
    }

    /// Number of key expansions performed by this process so far.
    ///
    /// Key expansion is the expensive, once-per-key part of AES; layers above
    /// are expected to build an [`Aes`] (or a cipher wrapping one) once per
    /// object and reuse it across blocks.  This process-wide counter lets
    /// tests assert that discipline: snapshot it, run N block operations, and
    /// require that the count grew by the number of *keys*, not blocks.
    pub fn key_expansions() -> u64 {
        KEY_EXPANSIONS.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Expand a key whose size is stated explicitly.
    pub fn with_key_size(key: &[u8], size: KeySize) -> Self {
        assert_eq!(key.len(), size.key_words() * 4, "key length mismatch");
        KEY_EXPANSIONS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let nk = size.key_words();
        let rounds = size.rounds();
        let total_words = 4 * (rounds + 1);

        let mut w = vec![[0u8; 4]; total_words];
        for (i, word) in w.iter_mut().take(nk).enumerate() {
            word.copy_from_slice(&key[i * 4..i * 4 + 4]);
        }
        for i in nk..total_words {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp.rotate_left(1);
                for b in temp.iter_mut() {
                    *b = SBOX[*b as usize];
                }
                temp[0] ^= RCON[i / nk];
            } else if nk > 6 && i % nk == 4 {
                for b in temp.iter_mut() {
                    *b = SBOX[*b as usize];
                }
            }
            for j in 0..4 {
                w[i][j] = w[i - nk][j] ^ temp[j];
            }
        }

        let enc_keys: Vec<u32> = w.iter().map(|word| u32::from_be_bytes(*word)).collect();

        // Equivalent inverse cipher: dk[0] = rk[last], middle round keys are
        // InvMixColumns(rk[mirror]), dk[last] = rk[0].
        let mut dec_keys = vec![0u32; enc_keys.len()];
        for r in 0..=rounds {
            for c in 0..4 {
                let src = enc_keys[(rounds - r) * 4 + c];
                dec_keys[r * 4 + c] = if r == 0 || r == rounds {
                    src
                } else {
                    inv_mix_word(src)
                };
            }
        }

        Aes {
            enc_keys,
            dec_keys,
            rounds,
        }
    }

    /// Encrypt a single 16-byte block in place.
    #[inline]
    pub fn encrypt_block(&self, block: &mut [u8; BLOCK_LEN]) {
        let rk = &self.enc_keys;
        let (mut s0, mut s1, mut s2, mut s3) = load_state(block);
        s0 ^= rk[0];
        s1 ^= rk[1];
        s2 ^= rk[2];
        s3 ^= rk[3];
        let mut i = 4;
        for _ in 1..self.rounds {
            let t0 = TE0[(s0 >> 24) as usize]
                ^ TE1[((s1 >> 16) & 0xff) as usize]
                ^ TE2[((s2 >> 8) & 0xff) as usize]
                ^ TE3[(s3 & 0xff) as usize]
                ^ rk[i];
            let t1 = TE0[(s1 >> 24) as usize]
                ^ TE1[((s2 >> 16) & 0xff) as usize]
                ^ TE2[((s3 >> 8) & 0xff) as usize]
                ^ TE3[(s0 & 0xff) as usize]
                ^ rk[i + 1];
            let t2 = TE0[(s2 >> 24) as usize]
                ^ TE1[((s3 >> 16) & 0xff) as usize]
                ^ TE2[((s0 >> 8) & 0xff) as usize]
                ^ TE3[(s1 & 0xff) as usize]
                ^ rk[i + 2];
            let t3 = TE0[(s3 >> 24) as usize]
                ^ TE1[((s0 >> 16) & 0xff) as usize]
                ^ TE2[((s1 >> 8) & 0xff) as usize]
                ^ TE3[(s2 & 0xff) as usize]
                ^ rk[i + 3];
            s0 = t0;
            s1 = t1;
            s2 = t2;
            s3 = t3;
            i += 4;
        }
        let t0 = sbox_word(s0, s1, s2, s3) ^ rk[i];
        let t1 = sbox_word(s1, s2, s3, s0) ^ rk[i + 1];
        let t2 = sbox_word(s2, s3, s0, s1) ^ rk[i + 2];
        let t3 = sbox_word(s3, s0, s1, s2) ^ rk[i + 3];
        store_state(block, t0, t1, t2, t3);
    }

    /// Decrypt a single 16-byte block in place.
    #[inline]
    pub fn decrypt_block(&self, block: &mut [u8; BLOCK_LEN]) {
        let dk = &self.dec_keys;
        let (mut s0, mut s1, mut s2, mut s3) = load_state(block);
        s0 ^= dk[0];
        s1 ^= dk[1];
        s2 ^= dk[2];
        s3 ^= dk[3];
        let mut i = 4;
        for _ in 1..self.rounds {
            let t0 = TD0[(s0 >> 24) as usize]
                ^ TD1[((s3 >> 16) & 0xff) as usize]
                ^ TD2[((s2 >> 8) & 0xff) as usize]
                ^ TD3[(s1 & 0xff) as usize]
                ^ dk[i];
            let t1 = TD0[(s1 >> 24) as usize]
                ^ TD1[((s0 >> 16) & 0xff) as usize]
                ^ TD2[((s3 >> 8) & 0xff) as usize]
                ^ TD3[(s2 & 0xff) as usize]
                ^ dk[i + 1];
            let t2 = TD0[(s2 >> 24) as usize]
                ^ TD1[((s1 >> 16) & 0xff) as usize]
                ^ TD2[((s0 >> 8) & 0xff) as usize]
                ^ TD3[(s3 & 0xff) as usize]
                ^ dk[i + 2];
            let t3 = TD0[(s3 >> 24) as usize]
                ^ TD1[((s2 >> 16) & 0xff) as usize]
                ^ TD2[((s1 >> 8) & 0xff) as usize]
                ^ TD3[(s0 & 0xff) as usize]
                ^ dk[i + 3];
            s0 = t0;
            s1 = t1;
            s2 = t2;
            s3 = t3;
            i += 4;
        }
        let t0 = inv_sbox_word(s0, s3, s2, s1) ^ dk[i];
        let t1 = inv_sbox_word(s1, s0, s3, s2) ^ dk[i + 1];
        let t2 = inv_sbox_word(s2, s1, s0, s3) ^ dk[i + 2];
        let t3 = inv_sbox_word(s3, s2, s1, s0) ^ dk[i + 3];
        store_state(block, t0, t1, t2, t3);
    }

    /// Number of AES rounds for this key size (10, 12 or 14).
    pub fn rounds(&self) -> usize {
        self.rounds
    }
}

// The state is stored column-major as in FIPS 197: byte (row r, column c) is
// state[c * 4 + r], so column c loads as one big-endian u32 with row 0 in
// the most significant byte.

#[inline]
fn load_state(block: &[u8; BLOCK_LEN]) -> (u32, u32, u32, u32) {
    (
        u32::from_be_bytes([block[0], block[1], block[2], block[3]]),
        u32::from_be_bytes([block[4], block[5], block[6], block[7]]),
        u32::from_be_bytes([block[8], block[9], block[10], block[11]]),
        u32::from_be_bytes([block[12], block[13], block[14], block[15]]),
    )
}

#[inline]
fn store_state(block: &mut [u8; BLOCK_LEN], s0: u32, s1: u32, s2: u32, s3: u32) {
    block[0..4].copy_from_slice(&s0.to_be_bytes());
    block[4..8].copy_from_slice(&s1.to_be_bytes());
    block[8..12].copy_from_slice(&s2.to_be_bytes());
    block[12..16].copy_from_slice(&s3.to_be_bytes());
}

/// Final encryption round for one output column: SubBytes + ShiftRows (row r
/// reads column j+r), no MixColumns.
#[inline]
fn sbox_word(a: u32, b: u32, c: u32, d: u32) -> u32 {
    ((SBOX[(a >> 24) as usize] as u32) << 24)
        | ((SBOX[((b >> 16) & 0xff) as usize] as u32) << 16)
        | ((SBOX[((c >> 8) & 0xff) as usize] as u32) << 8)
        | (SBOX[(d & 0xff) as usize] as u32)
}

/// Final decryption round for one output column: InvSubBytes + InvShiftRows
/// (row r reads column j-r).
#[inline]
fn inv_sbox_word(a: u32, b: u32, c: u32, d: u32) -> u32 {
    ((INV_SBOX[(a >> 24) as usize] as u32) << 24)
        | ((INV_SBOX[((b >> 16) & 0xff) as usize] as u32) << 16)
        | ((INV_SBOX[((c >> 8) & 0xff) as usize] as u32) << 8)
        | (INV_SBOX[(d & 0xff) as usize] as u32)
}

/// InvMixColumns applied to one round-key word (schedule transform for the
/// equivalent inverse cipher; runs once per key expansion).
fn inv_mix_word(w: u32) -> u32 {
    let [a, b, c, d] = w.to_be_bytes();
    u32::from_be_bytes([
        gf_mul(a, 0x0e) ^ gf_mul(b, 0x0b) ^ gf_mul(c, 0x0d) ^ gf_mul(d, 0x09),
        gf_mul(a, 0x09) ^ gf_mul(b, 0x0e) ^ gf_mul(c, 0x0b) ^ gf_mul(d, 0x0d),
        gf_mul(a, 0x0d) ^ gf_mul(b, 0x09) ^ gf_mul(c, 0x0e) ^ gf_mul(d, 0x0b),
        gf_mul(a, 0x0b) ^ gf_mul(b, 0x0d) ^ gf_mul(c, 0x09) ^ gf_mul(d, 0x0e),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn block(s: &str) -> [u8; BLOCK_LEN] {
        let v = from_hex(s);
        let mut b = [0u8; BLOCK_LEN];
        b.copy_from_slice(&v);
        b
    }

    #[test]
    fn fips197_appendix_b_aes128() {
        let aes = Aes::new(&from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
        let mut state = block("3243f6a8885a308d313198a2e0370734");
        aes.encrypt_block(&mut state);
        assert_eq!(state, block("3925841d02dc09fbdc118597196a0b32"));
        aes.decrypt_block(&mut state);
        assert_eq!(state, block("3243f6a8885a308d313198a2e0370734"));
    }

    #[test]
    fn fips197_appendix_c1_aes128() {
        let aes = Aes::new(&from_hex("000102030405060708090a0b0c0d0e0f"));
        let mut state = block("00112233445566778899aabbccddeeff");
        aes.encrypt_block(&mut state);
        assert_eq!(state, block("69c4e0d86a7b0430d8cdb78070b4c55a"));
    }

    #[test]
    fn fips197_appendix_c2_aes192() {
        let aes = Aes::new(&from_hex(
            "000102030405060708090a0b0c0d0e0f1011121314151617",
        ));
        let mut state = block("00112233445566778899aabbccddeeff");
        aes.encrypt_block(&mut state);
        assert_eq!(state, block("dda97ca4864cdfe06eaf70a0ec0d7191"));
        aes.decrypt_block(&mut state);
        assert_eq!(state, block("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn fips197_appendix_c3_aes256() {
        let aes = Aes::new(&from_hex(
            "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
        ));
        let mut state = block("00112233445566778899aabbccddeeff");
        aes.encrypt_block(&mut state);
        assert_eq!(state, block("8ea2b7ca516745bfeafc49904b496089"));
        aes.decrypt_block(&mut state);
        assert_eq!(state, block("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn sp800_38a_ecb_aes256_first_block() {
        let aes = Aes::new(&from_hex(
            "603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4",
        ));
        let mut state = block("6bc1bee22e409f96e93d7e117393172a");
        aes.encrypt_block(&mut state);
        assert_eq!(state, block("f3eed1bdb5d2a03c064b5a7e3db181f8"));
    }

    #[test]
    fn round_counts() {
        assert_eq!(Aes::new(&[0u8; 16]).rounds(), 10);
        assert_eq!(Aes::new(&[0u8; 24]).rounds(), 12);
        assert_eq!(Aes::new(&[0u8; 32]).rounds(), 14);
    }

    #[test]
    #[should_panic(expected = "invalid AES key length")]
    fn rejects_bad_key_length() {
        let _ = Aes::new(&[0u8; 20]);
    }

    #[test]
    fn encrypt_decrypt_roundtrip_many() {
        let aes = Aes::new(b"0123456789abcdef0123456789abcdef");
        for i in 0..256u32 {
            let mut b = [0u8; BLOCK_LEN];
            for (j, byte) in b.iter_mut().enumerate() {
                *byte = (i as u8).wrapping_mul(31).wrapping_add(j as u8);
            }
            let original = b;
            aes.encrypt_block(&mut b);
            assert_ne!(b, original, "ciphertext must differ from plaintext");
            aes.decrypt_block(&mut b);
            assert_eq!(b, original);
        }
    }

    #[test]
    fn different_keys_different_ciphertexts() {
        let a = Aes::new(&[1u8; 32]);
        let b = Aes::new(&[2u8; 32]);
        let mut x = [7u8; BLOCK_LEN];
        let mut y = [7u8; BLOCK_LEN];
        a.encrypt_block(&mut x);
        b.encrypt_block(&mut y);
        assert_ne!(x, y);
    }

    #[test]
    fn gf_mul_agrees_with_known_products() {
        // Classic GF(2^8) examples from FIPS 197 section 4.2.
        assert_eq!(gf_mul(0x57, 0x83), 0xc1);
        assert_eq!(gf_mul(0x57, 0x13), 0xfe);
        assert_eq!(gf_mul(0x01, 0xab), 0xab);
        assert_eq!(gf_mul(0x00, 0xab), 0x00);
    }
}
