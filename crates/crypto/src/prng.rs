//! Pseudorandom generators used by StegFS.
//!
//! Section 4 of the paper states that the hidden-object locator uses SHA-256
//! "as the pseudorandom number generator … (the seed is recursively hashed to
//! generate the pseudorandom numbers)".  [`HashChainPrng`] implements exactly
//! that construction; [`BlockLocator`] specialises it to produce candidate
//! block numbers within a volume.  [`DeterministicRng`] is a counter-mode
//! SHA-256 byte generator used wherever the file system needs reproducible
//! "random" bytes (formatting fill, dummy-file content, free-pool picks) from
//! a seed.

use crate::sha256::{sha256_concat, Sha256, DIGEST_LEN};

/// The recursive-hash pseudorandom generator from the paper: each call hashes
/// the previous state and interprets a prefix of the digest as an unsigned
/// integer.
#[derive(Clone)]
pub struct HashChainPrng {
    state: [u8; DIGEST_LEN],
}

impl HashChainPrng {
    /// Seed the chain.  StegFS seeds it with `SHA-256(physical name ‖ key)`.
    pub fn new(seed: &[u8]) -> Self {
        HashChainPrng {
            state: crate::sha256::sha256(seed),
        }
    }

    /// Seed the chain from already-hashed material without re-hashing.
    pub fn from_digest(digest: [u8; DIGEST_LEN]) -> Self {
        HashChainPrng { state: digest }
    }

    /// Advance the chain and return the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = crate::sha256::sha256(&self.state);
        u64::from_be_bytes(self.state[..8].try_into().expect("digest >= 8 bytes"))
    }

    /// Advance the chain and return a value uniform in `[0, bound)`.
    ///
    /// Uses rejection sampling so the result is unbiased even when `bound`
    /// does not divide `2^64`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Current internal state (exposed for tests and for serialising locator
    /// progress inside the core crate).
    pub fn state(&self) -> &[u8; DIGEST_LEN] {
        &self.state
    }
}

/// Candidate block-number generator for locating hidden-object headers.
///
/// During creation, StegFS walks this sequence until it finds a free block to
/// hold the header; during retrieval it walks the same sequence looking for an
/// allocated block whose decrypted signature matches.  The sequence therefore
/// has to be a pure function of `(physical name, access key)`, which this type
/// guarantees.
#[derive(Clone)]
pub struct BlockLocator {
    prng: HashChainPrng,
    total_blocks: u64,
}

impl BlockLocator {
    /// Build the locator for a volume of `total_blocks` blocks.
    ///
    /// The seed is `SHA-256(name ‖ 0x00 ‖ key)`; the separator byte prevents
    /// ambiguity between `("ab","c")` and `("a","bc")`.
    pub fn new(physical_name: &[u8], access_key: &[u8], total_blocks: u64) -> Self {
        assert!(total_blocks > 0, "volume must contain at least one block");
        let seed = sha256_concat(&[physical_name, &[0u8], access_key]);
        BlockLocator {
            prng: HashChainPrng::from_digest(seed),
            total_blocks,
        }
    }

    /// Number of blocks in the volume this locator was built for.
    pub fn total_blocks(&self) -> u64 {
        self.total_blocks
    }

    /// Next candidate block number in `[0, total_blocks)`.
    pub fn next_candidate(&mut self) -> u64 {
        self.prng.next_below(self.total_blocks)
    }

    /// Produce the first `n` candidates (convenience for tests and analysis).
    pub fn candidates(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.next_candidate()).collect()
    }
}

/// Deterministic byte generator (SHA-256 in counter mode).
///
/// Not the paper's locator PRNG — this is the utility generator the rest of
/// the reproduction uses whenever it needs a reproducible stream of bytes,
/// e.g. the random fill written into every block at format time, dummy hidden
/// file contents, and randomized-but-repeatable workload generation.
#[derive(Clone)]
pub struct DeterministicRng {
    seed: [u8; DIGEST_LEN],
    counter: u64,
    buffer: [u8; DIGEST_LEN],
    buffer_pos: usize,
}

impl DeterministicRng {
    /// Create a generator from an arbitrary seed string.
    pub fn new(seed: &[u8]) -> Self {
        DeterministicRng {
            seed: crate::sha256::sha256(seed),
            counter: 0,
            buffer: [0u8; DIGEST_LEN],
            buffer_pos: DIGEST_LEN,
        }
    }

    fn refill(&mut self) {
        let mut h = Sha256::new();
        h.update(&self.seed);
        h.update(&self.counter.to_be_bytes());
        self.buffer = h.finalize();
        self.counter += 1;
        self.buffer_pos = 0;
    }

    /// Fill `out` with pseudorandom bytes.
    pub fn fill(&mut self, out: &mut [u8]) {
        for byte in out.iter_mut() {
            if self.buffer_pos == DIGEST_LEN {
                self.refill();
            }
            *byte = self.buffer[self.buffer_pos];
            self.buffer_pos += 1;
        }
    }

    /// Return `len` pseudorandom bytes.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        self.fill(&mut v);
        v
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill(&mut b);
        u64::from_be_bytes(b)
    }

    /// Uniform value in `[0, bound)` via rejection sampling.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    pub fn next_in_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        lo + self.next_below(hi - lo + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn hash_chain_is_deterministic() {
        let mut a = HashChainPrng::new(b"seed");
        let mut b = HashChainPrng::new(b"seed");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn hash_chain_different_seeds_diverge() {
        let mut a = HashChainPrng::new(b"seed-1");
        let mut b = HashChainPrng::new(b"seed-2");
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut p = HashChainPrng::new(b"bound-test");
        for bound in [1u64, 2, 3, 7, 100, 1 << 20] {
            for _ in 0..200 {
                assert!(p.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_bound_one_is_always_zero() {
        let mut p = HashChainPrng::new(b"one");
        for _ in 0..10 {
            assert_eq!(p.next_below(1), 0);
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        HashChainPrng::new(b"x").next_below(0);
    }

    #[test]
    fn locator_same_name_key_same_sequence() {
        let mut a = BlockLocator::new(b"u1:/secret/plans", b"key", 4096);
        let mut b = BlockLocator::new(b"u1:/secret/plans", b"key", 4096);
        assert_eq!(a.candidates(50), b.candidates(50));
    }

    #[test]
    fn locator_key_changes_sequence() {
        let mut a = BlockLocator::new(b"u1:/secret/plans", b"key-a", 4096);
        let mut b = BlockLocator::new(b"u1:/secret/plans", b"key-b", 4096);
        assert_ne!(a.candidates(20), b.candidates(20));
    }

    #[test]
    fn locator_separator_prevents_concatenation_ambiguity() {
        let mut a = BlockLocator::new(b"ab", b"c", 1 << 16);
        let mut b = BlockLocator::new(b"a", b"bc", 1 << 16);
        assert_ne!(a.candidates(20), b.candidates(20));
    }

    #[test]
    fn locator_candidates_in_range_and_spread() {
        let total = 1000u64;
        let mut loc = BlockLocator::new(b"spread", b"k", total);
        let cands = loc.candidates(500);
        assert!(cands.iter().all(|&c| c < total));
        let distinct: HashSet<_> = cands.iter().collect();
        // 500 draws from 1000 buckets should hit well over 300 distinct values.
        assert!(distinct.len() > 300, "only {} distinct", distinct.len());
    }

    #[test]
    fn deterministic_rng_reproducible() {
        let mut a = DeterministicRng::new(b"fill");
        let mut b = DeterministicRng::new(b"fill");
        assert_eq!(a.bytes(1000), b.bytes(1000));
    }

    #[test]
    fn deterministic_rng_fill_split_matches_contiguous() {
        let mut a = DeterministicRng::new(b"split");
        let mut b = DeterministicRng::new(b"split");
        let whole = a.bytes(100);
        let mut parts = Vec::new();
        for chunk in [10usize, 1, 32, 7, 50] {
            parts.extend(b.bytes(chunk));
        }
        assert_eq!(whole, parts);
    }

    #[test]
    fn deterministic_rng_range() {
        let mut r = DeterministicRng::new(b"range");
        for _ in 0..500 {
            let v = r.next_in_range(5, 9);
            assert!((5..=9).contains(&v));
        }
    }

    #[test]
    fn deterministic_rng_bytes_look_uniform() {
        // Rough sanity check: over 64 KiB, every byte value should appear.
        let mut r = DeterministicRng::new(b"uniform");
        let data = r.bytes(64 * 1024);
        let mut seen = [false; 256];
        for &b in &data {
            seen[b as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

/// A fast, non-cryptographic xorshift64* generator.
///
/// The simulation and formatting paths need large volumes of *reproducible*
/// but not unpredictable randomness (random fill of gigabyte volumes,
/// workload generation, the StegRand allocation model).  Using the SHA-based
/// [`DeterministicRng`] there would dominate experiment run time for no
/// security benefit, so those paths use this generator instead.  Never use it
/// for keys, FAKs or anything an adversary must not predict.
#[derive(Debug, Clone)]
pub struct XorShiftRng {
    state: u64,
}

impl XorShiftRng {
    /// Seed the generator (a zero seed is remapped to a fixed constant).
    pub fn new(seed: u64) -> Self {
        XorShiftRng {
            state: if seed == 0 {
                0x9e37_79b9_7f4a_7c15
            } else {
                seed
            },
        }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state ^= self.state >> 12;
        self.state ^= self.state << 25;
        self.state ^= self.state >> 27;
        self.state.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    pub fn next_in_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Fill `out` with pseudorandom bytes.
    pub fn fill(&mut self, out: &mut [u8]) {
        for chunk in out.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&v[..n]);
        }
    }
}

#[cfg(test)]
mod xorshift_tests {
    use super::XorShiftRng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = XorShiftRng::new(1);
        let mut b = XorShiftRng::new(1);
        let mut c = XorShiftRng::new(2);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = XorShiftRng::new(0);
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn bounds_respected() {
        let mut r = XorShiftRng::new(99);
        for _ in 0..1000 {
            assert!(r.next_below(7) < 7);
            let v = r.next_in_range(10, 12);
            assert!((10..=12).contains(&v));
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn fill_covers_unaligned_lengths() {
        let mut r = XorShiftRng::new(5);
        let mut buf = vec![0u8; 13];
        r.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        XorShiftRng::new(1).next_below(0);
    }
}
