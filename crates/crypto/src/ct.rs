//! Constant-time comparison helpers.
//!
//! Signature matching during hidden-file lookup compares attacker-influenced
//! bytes against a secret-derived value; doing that with early-exit `==`
//! would leak how many leading bytes matched.  These helpers compare entire
//! slices regardless of where the first difference occurs.

/// Compare two byte slices in time dependent only on their lengths.
/// Returns `false` immediately if the lengths differ (length is not secret).
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

/// Constant-time selection: returns `if choice { a } else { b }` for byte
/// values without branching on `choice`.
pub fn ct_select(choice: bool, a: u8, b: u8) -> u8 {
    let mask = (choice as u8).wrapping_neg();
    (a & mask) | (b & !mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_slices() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"abc", b"abc"));
        assert!(ct_eq(&[0u8; 64], &[0u8; 64]));
    }

    #[test]
    fn unequal_slices() {
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"abcd"));
        assert!(!ct_eq(b"abc", b""));
        // Differences at every position are detected, not just the first.
        assert!(!ct_eq(b"xbc", b"abc"));
        assert!(!ct_eq(b"abx", b"abc"));
    }

    #[test]
    fn select() {
        assert_eq!(ct_select(true, 0xaa, 0x55), 0xaa);
        assert_eq!(ct_select(false, 0xaa, 0x55), 0x55);
    }
}
