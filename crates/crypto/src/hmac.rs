//! HMAC-SHA256 (RFC 2104 / FIPS 198-1).
//!
//! StegFS uses HMAC in two supporting roles: authenticating backup images so
//! that a corrupted restore is detected rather than silently applied, and as
//! the pseudorandom function inside the key-derivation routine in [`crate::kdf`].

use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// Compute `HMAC-SHA256(key, message)`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    let mut hmac = HmacSha256::new(key);
    hmac.update(message);
    hmac.finalize()
}

/// Incremental HMAC-SHA256.
pub struct HmacSha256 {
    inner: Sha256,
    outer_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Start a new MAC computation keyed by `key` (any length).
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let digest = crate::sha256::sha256(key);
            key_block[..DIGEST_LEN].copy_from_slice(&digest);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }

        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = key_block[i] ^ 0x36;
            opad[i] = key_block[i] ^ 0x5c;
        }

        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 {
            inner,
            outer_key: opad,
        }
    }

    /// Absorb more message bytes.
    pub fn update(&mut self, message: &[u8]) {
        self.inner.update(message);
    }

    /// Finish and return the 32-byte tag.
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.outer_key);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // Test vectors from RFC 4231.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let msg = [0xddu8; 50];
        let tag = hmac_sha256(&key, &msg);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn rfc4231_case_7_long_key_and_data() {
        let key = [0xaau8; 131];
        let msg = b"This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm.";
        let tag = hmac_sha256(&key, msg);
        assert_eq!(
            hex(&tag),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = b"backup-auth-key";
        let msg: Vec<u8> = (0..500u16).map(|i| (i % 251) as u8).collect();
        let mut mac = HmacSha256::new(key);
        for chunk in msg.chunks(7) {
            mac.update(chunk);
        }
        assert_eq!(mac.finalize(), hmac_sha256(key, &msg));
    }

    #[test]
    fn different_keys_different_tags() {
        assert_ne!(hmac_sha256(b"k1", b"msg"), hmac_sha256(b"k2", b"msg"));
        assert_ne!(hmac_sha256(b"k1", b"msg"), hmac_sha256(b"k1", b"msh"));
    }
}
