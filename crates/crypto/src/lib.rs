//! # stegfs-crypto
//!
//! Self-contained cryptographic primitives for the StegFS reproduction.
//!
//! The original StegFS paper (Pang, Tan, Zhou — ICDE 2003) relies on three
//! cryptographic building blocks:
//!
//! * **SHA-256** (FIPS 180-2) — used both as the one-way hash that derives the
//!   hidden-file *signature* from the file name and access key, and (through
//!   recursive hashing of a seed) as the pseudorandom block-number generator
//!   that locates the hidden-file header on disk.
//! * **AES** (FIPS 197) — the block cipher that encrypts every block of a
//!   hidden object so that it is indistinguishable from the random fill
//!   written into free blocks at format time.
//! * **A public-key scheme** — used only by the file-sharing protocol
//!   (`steg_getentry` / `steg_addentry`), where the `(file name, FAK)` pair is
//!   encrypted under the recipient's public key.
//!
//! Because this reproduction must be buildable offline without external
//! cryptography crates, all three are implemented here from scratch and
//! validated against published test vectors in the module tests.  The RSA
//! implementation is *textbook* RSA over a small fixed-width bignum: it is
//! entirely adequate for reproducing the sharing protocol and the paper's
//! experiments, but it is not constant-time and must not be used to protect
//! real data.
//!
//! The module layout is:
//!
//! * [`mod@sha256`] — SHA-256 and the incremental hasher.
//! * [`hmac`] — HMAC-SHA256.
//! * [`aes`] — the AES-128/192/256 block cipher.
//! * [`modes`] — CBC and CTR modes over AES, plus PKCS#7 padding helpers.
//! * [`prng`] — the hash-chain pseudorandom block-number generator from the
//!   paper and a counter-mode deterministic byte generator.
//! * [`kdf`] — iterated-hash key derivation from pass-phrases.
//! * [`bignum`] — fixed-capacity big unsigned integers.
//! * [`rsa`] — textbook RSA key generation, encryption and decryption.
//! * [`ct`] — constant-time comparison helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod bignum;
pub mod ct;
pub mod hmac;
pub mod kdf;
pub mod modes;
pub mod prng;
pub mod rsa;
pub mod sha256;

pub use aes::Aes;
pub use hmac::hmac_sha256;
pub use kdf::derive_key;
pub use modes::{CbcCipher, CtrCipher};
pub use prng::{BlockLocator, HashChainPrng, XorShiftRng};
pub use rsa::{RsaKeyPair, RsaPrivateKey, RsaPublicKey};
pub use sha256::{sha256, Sha256};

/// Length in bytes of a SHA-256 digest.
pub const DIGEST_LEN: usize = 32;

/// Length in bytes of an AES block.
pub const AES_BLOCK_LEN: usize = 16;

/// Length in bytes of the symmetric keys used throughout StegFS (AES-256).
pub const SYM_KEY_LEN: usize = 32;
