//! Inodes and the inode table (the paper's "central directory").
//!
//! Every *plain* file and directory is described by an inode stored in a
//! fixed-size on-disk table.  Hidden StegFS objects are deliberately **not**
//! represented here — their inode-like metadata lives inside the hidden
//! object itself (`stegfs-core::header`).
//!
//! Each inode maps a file to its blocks through 12 direct pointers, one
//! single-indirect block and one double-indirect block, like a miniature
//! ext2.  With the paper's default 1 KB blocks that supports files up to
//! ~16 MB, far beyond the 2 MB maximum in the workloads.

use crate::error::{FsError, FsResult};
use crate::layout::{Superblock, INODE_SIZE};
use stegfs_blockdev::BlockDevice;

/// Index of an inode within the inode table.
pub type InodeId = u64;

/// Number of direct block pointers in an inode.
pub const DIRECT_POINTERS: usize = 12;

/// Sentinel for "no block assigned".
pub const NO_BLOCK: u64 = u64::MAX;

/// What an inode describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// The inode slot is unused.
    Free,
    /// A regular file.
    File,
    /// A directory.
    Directory,
}

impl FileKind {
    fn to_byte(self) -> u8 {
        match self {
            FileKind::Free => 0,
            FileKind::File => 1,
            FileKind::Directory => 2,
        }
    }

    fn from_byte(b: u8) -> FsResult<Self> {
        match b {
            0 => Ok(FileKind::Free),
            1 => Ok(FileKind::File),
            2 => Ok(FileKind::Directory),
            other => Err(FsError::Corrupt(format!("invalid inode kind {other}"))),
        }
    }
}

/// An on-disk inode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inode {
    /// What this inode describes.
    pub kind: FileKind,
    /// Length of the file in bytes (or of the serialised directory).
    pub size: u64,
    /// Direct block pointers ([`NO_BLOCK`] when unassigned).
    pub direct: [u64; DIRECT_POINTERS],
    /// Single-indirect block pointer.
    pub indirect: u64,
    /// Double-indirect block pointer.
    pub double_indirect: u64,
}

impl Inode {
    /// A fresh, empty inode of the given kind.
    pub fn empty(kind: FileKind) -> Self {
        Inode {
            kind,
            size: 0,
            direct: [NO_BLOCK; DIRECT_POINTERS],
            indirect: NO_BLOCK,
            double_indirect: NO_BLOCK,
        }
    }

    /// Serialise into [`INODE_SIZE`] bytes.
    pub fn serialize(&self) -> [u8; INODE_SIZE] {
        let mut buf = [0u8; INODE_SIZE];
        buf[0] = self.kind.to_byte();
        buf[8..16].copy_from_slice(&self.size.to_be_bytes());
        for (i, &ptr) in self.direct.iter().enumerate() {
            let off = 16 + i * 8;
            buf[off..off + 8].copy_from_slice(&ptr.to_be_bytes());
        }
        buf[112..120].copy_from_slice(&self.indirect.to_be_bytes());
        buf[120..128].copy_from_slice(&self.double_indirect.to_be_bytes());
        buf
    }

    /// Parse an inode from [`INODE_SIZE`] bytes.
    pub fn deserialize(buf: &[u8]) -> FsResult<Self> {
        if buf.len() < INODE_SIZE {
            return Err(FsError::Corrupt("inode buffer too small".into()));
        }
        let kind = FileKind::from_byte(buf[0])?;
        let get_u64 = |off: usize| u64::from_be_bytes(buf[off..off + 8].try_into().unwrap());
        let mut direct = [NO_BLOCK; DIRECT_POINTERS];
        for (i, slot) in direct.iter_mut().enumerate() {
            *slot = get_u64(16 + i * 8);
        }
        Ok(Inode {
            kind,
            size: get_u64(8),
            direct,
            indirect: get_u64(112),
            double_indirect: get_u64(120),
        })
    }

    /// Maximum file size representable with this inode layout at the given
    /// block size.
    pub fn max_file_size(block_size: usize) -> u64 {
        let ptrs_per_block = (block_size / 8) as u64;
        let blocks = DIRECT_POINTERS as u64 + ptrs_per_block + ptrs_per_block * ptrs_per_block;
        blocks * block_size as u64
    }
}

/// Reader/writer for the on-disk inode table.
pub struct InodeTable {
    sb: Superblock,
}

impl InodeTable {
    /// Create a view over the inode table described by `sb`.
    pub fn new(sb: Superblock) -> Self {
        InodeTable { sb }
    }

    /// Number of inodes in the table.
    pub fn count(&self) -> u64 {
        self.sb.inode_count
    }

    pub(crate) fn location(&self, id: InodeId) -> FsResult<(u64, usize)> {
        if id >= self.sb.inode_count {
            return Err(FsError::Corrupt(format!(
                "inode {id} out of range ({} inodes)",
                self.sb.inode_count
            )));
        }
        let per_block = self.sb.inodes_per_block();
        let block = self.sb.inode_table_start + id / per_block;
        let offset = (id % per_block) as usize * INODE_SIZE;
        Ok((block, offset))
    }

    /// Read inode `id` from the device.
    pub fn read(&self, dev: &dyn BlockDevice, id: InodeId) -> FsResult<Inode> {
        let (block, offset) = self.location(id)?;
        let mut buf = vec![0u8; self.sb.block_size as usize];
        dev.read_block(block, &mut buf)?;
        Inode::deserialize(&buf[offset..offset + INODE_SIZE])
    }

    /// Write inode `id` to the device (read-modify-write of its block).
    pub fn write(&self, dev: &dyn BlockDevice, id: InodeId, inode: &Inode) -> FsResult<()> {
        let (block, offset) = self.location(id)?;
        let mut buf = vec![0u8; self.sb.block_size as usize];
        dev.read_block(block, &mut buf)?;
        buf[offset..offset + INODE_SIZE].copy_from_slice(&inode.serialize());
        dev.write_block(block, &buf)?;
        Ok(())
    }

    /// Find the first free inode slot, scanning from inode 0.
    pub fn find_free(&self, dev: &dyn BlockDevice) -> FsResult<Option<InodeId>> {
        let per_block = self.sb.inodes_per_block();
        let mut buf = vec![0u8; self.sb.block_size as usize];
        for table_block in 0..self.sb.inode_table_blocks {
            dev.read_block(self.sb.inode_table_start + table_block, &mut buf)?;
            for slot in 0..per_block {
                let id = table_block * per_block + slot;
                if id >= self.sb.inode_count {
                    return Ok(None);
                }
                let off = slot as usize * INODE_SIZE;
                if FileKind::from_byte(buf[off])? == FileKind::Free {
                    return Ok(Some(id));
                }
            }
        }
        Ok(None)
    }

    /// Iterate over every allocated inode, returning `(id, inode)` pairs.
    /// Used by backup (to learn which blocks belong to plain files) and by
    /// consistency checks.
    pub fn scan_allocated(&self, dev: &dyn BlockDevice) -> FsResult<Vec<(InodeId, Inode)>> {
        let per_block = self.sb.inodes_per_block();
        let mut out = Vec::new();
        let mut buf = vec![0u8; self.sb.block_size as usize];
        for table_block in 0..self.sb.inode_table_blocks {
            dev.read_block(self.sb.inode_table_start + table_block, &mut buf)?;
            for slot in 0..per_block {
                let id = table_block * per_block + slot;
                if id >= self.sb.inode_count {
                    break;
                }
                let off = slot as usize * INODE_SIZE;
                let inode = Inode::deserialize(&buf[off..off + INODE_SIZE])?;
                if inode.kind != FileKind::Free {
                    out.push((id, inode));
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stegfs_blockdev::MemBlockDevice;

    #[test]
    fn inode_serialization_roundtrip() {
        let mut inode = Inode::empty(FileKind::File);
        inode.size = 123_456;
        inode.direct[0] = 77;
        inode.direct[11] = 99;
        inode.indirect = 1000;
        inode.double_indirect = 2000;
        let buf = inode.serialize();
        assert_eq!(buf.len(), INODE_SIZE);
        assert_eq!(Inode::deserialize(&buf).unwrap(), inode);
    }

    #[test]
    fn empty_inode_has_no_blocks() {
        let inode = Inode::empty(FileKind::Directory);
        assert_eq!(inode.size, 0);
        assert!(inode.direct.iter().all(|&b| b == NO_BLOCK));
        assert_eq!(inode.indirect, NO_BLOCK);
        assert_eq!(inode.double_indirect, NO_BLOCK);
    }

    #[test]
    fn deserialize_rejects_bad_kind() {
        let mut buf = [0u8; INODE_SIZE];
        buf[0] = 9;
        assert!(Inode::deserialize(&buf).is_err());
        assert!(Inode::deserialize(&buf[..50]).is_err());
    }

    #[test]
    fn max_file_size_covers_paper_workloads() {
        // 2 MB files must be representable at every block size in Figure 9.
        for bs in [512usize, 1024, 2048, 4096, 8192, 16384, 32768, 65536] {
            assert!(
                Inode::max_file_size(bs) >= 2 * 1024 * 1024,
                "block size {bs}"
            );
        }
    }

    fn table_fixture() -> (InodeTable, MemBlockDevice) {
        let sb = Superblock::compute(1024, 4096, 64, 0).unwrap();
        let dev = MemBlockDevice::new(1024, 4096);
        (InodeTable::new(sb), dev)
    }

    #[test]
    fn table_read_write_roundtrip() {
        let (table, dev) = table_fixture();
        let mut inode = Inode::empty(FileKind::File);
        inode.size = 42;
        inode.direct[3] = 777;
        table.write(&dev, 10, &inode).unwrap();
        assert_eq!(table.read(&dev, 10).unwrap(), inode);
        // Neighbouring slots unaffected.
        assert_eq!(table.read(&dev, 9).unwrap().kind, FileKind::Free);
        assert_eq!(table.read(&dev, 11).unwrap().kind, FileKind::Free);
    }

    #[test]
    fn table_rejects_out_of_range() {
        let (table, dev) = table_fixture();
        assert!(table.read(&dev, 64).is_err());
        assert!(table
            .write(&dev, 1000, &Inode::empty(FileKind::File))
            .is_err());
    }

    #[test]
    fn find_free_skips_allocated() {
        let (table, dev) = table_fixture();
        assert_eq!(table.find_free(&dev).unwrap(), Some(0));
        table
            .write(&dev, 0, &Inode::empty(FileKind::Directory))
            .unwrap();
        table.write(&dev, 1, &Inode::empty(FileKind::File)).unwrap();
        assert_eq!(table.find_free(&dev).unwrap(), Some(2));
    }

    #[test]
    fn find_free_exhausted() {
        let (table, dev) = table_fixture();
        for id in 0..table.count() {
            table
                .write(&dev, id, &Inode::empty(FileKind::File))
                .unwrap();
        }
        assert_eq!(table.find_free(&dev).unwrap(), None);
    }

    #[test]
    fn scan_allocated_lists_only_used_inodes() {
        let (table, dev) = table_fixture();
        let mut a = Inode::empty(FileKind::File);
        a.size = 1;
        let mut b = Inode::empty(FileKind::Directory);
        b.size = 2;
        table.write(&dev, 3, &a).unwrap();
        table.write(&dev, 40, &b).unwrap();
        let scanned = table.scan_allocated(&dev).unwrap();
        assert_eq!(scanned.len(), 2);
        assert_eq!(scanned[0].0, 3);
        assert_eq!(scanned[0].1, a);
        assert_eq!(scanned[1].0, 40);
        assert_eq!(scanned[1].1, b);
    }
}
