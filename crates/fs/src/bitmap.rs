//! The block bitmap.
//!
//! One bit per block: 0 = free, 1 = allocated, exactly as in Figure 1 of the
//! paper.  The bitmap is the *only* structure shared by plain and hidden
//! objects — hidden files mark their blocks here so the space is not handed
//! out again, but nothing else about them is recorded anywhere visible.
//!
//! The bitmap is held in memory while the file system is mounted and written
//! back block-by-block; only bitmap blocks that actually changed are flushed.

use crate::error::{FsError, FsResult};
use crate::layout::Superblock;
use std::collections::BTreeSet;
use stegfs_blockdev::BlockDevice;

/// In-memory copy of the on-disk block bitmap with dirty tracking.
///
/// Free-space queries scan the bitmap **a `u64` word (64 blocks) at a
/// time**: fully allocated words are skipped with one comparison and the
/// first free bit of a mixed word falls out of `trailing_zeros`, so a scan
/// over a fragmented, mostly full volume costs `total / 64` word probes
/// instead of an O(total) bit walk.  A rotating *next-free hint* (the
/// invariant: every block below [`Bitmap::next_free_hint`] is allocated)
/// additionally lets first-fit searches skip the allocated prefix outright.
/// Both are pure accelerations — the blocks returned are bit-for-bit the
/// ones the naive walk would have found, so allocation layouts (and hence
/// disk images) are unchanged.
pub struct Bitmap {
    bits: Vec<u8>,
    total_blocks: u64,
    block_size: usize,
    bitmap_start: u64,
    dirty_bitmap_blocks: BTreeSet<u64>,
    allocated: u64,
    /// Lower bound of the free space: all blocks `< free_hint` are
    /// allocated.  Rotates forward on allocation, snaps back on free.
    free_hint: u64,
}

impl Bitmap {
    /// Create a fresh all-free bitmap for a volume described by `sb`.
    pub fn new(sb: &Superblock) -> Self {
        let bytes = (sb.total_blocks as usize).div_ceil(8);
        Bitmap {
            bits: vec![0u8; bytes],
            total_blocks: sb.total_blocks,
            block_size: sb.block_size as usize,
            bitmap_start: sb.bitmap_start,
            dirty_bitmap_blocks: BTreeSet::new(),
            allocated: 0,
            free_hint: 0,
        }
    }

    /// Load the bitmap from the device.
    pub fn load(sb: &Superblock, dev: &dyn BlockDevice) -> FsResult<Self> {
        let mut bits = Vec::with_capacity((sb.total_blocks as usize).div_ceil(8));
        let mut buf = vec![0u8; sb.block_size as usize];
        for i in 0..sb.bitmap_blocks {
            dev.read_block(sb.bitmap_start + i, &mut buf)?;
            bits.extend_from_slice(&buf);
        }
        bits.truncate((sb.total_blocks as usize).div_ceil(8));
        let allocated = bits.iter().map(|b| b.count_ones() as u64).sum::<u64>();
        // Bits beyond total_blocks in the final byte are never set by this
        // implementation, so the popcount is exact.
        Ok(Bitmap {
            bits,
            total_blocks: sb.total_blocks,
            block_size: sb.block_size as usize,
            bitmap_start: sb.bitmap_start,
            dirty_bitmap_blocks: BTreeSet::new(),
            allocated,
            free_hint: 0,
        })
    }

    /// Total number of blocks tracked.
    pub fn total_blocks(&self) -> u64 {
        self.total_blocks
    }

    /// Number of blocks currently marked allocated.
    pub fn allocated_blocks(&self) -> u64 {
        self.allocated
    }

    /// Number of blocks currently free.
    pub fn free_blocks(&self) -> u64 {
        self.total_blocks - self.allocated
    }

    fn check(&self, block: u64) -> FsResult<()> {
        if block >= self.total_blocks {
            return Err(FsError::Corrupt(format!(
                "bitmap access to block {block} beyond volume end {}",
                self.total_blocks
            )));
        }
        Ok(())
    }

    /// True if `block` is marked allocated.
    pub fn is_allocated(&self, block: u64) -> bool {
        debug_assert!(block < self.total_blocks);
        let byte = (block / 8) as usize;
        let bit = block % 8;
        (self.bits[byte] >> bit) & 1 == 1
    }

    fn mark_dirty(&mut self, block: u64) {
        // Which bitmap block stores the bit for `block`?
        let bits_per_block = self.block_size as u64 * 8;
        self.dirty_bitmap_blocks.insert(block / bits_per_block);
    }

    /// Mark `block` allocated.  Returns an error if it was already allocated
    /// (double allocation indicates a logic bug or corruption).
    pub fn allocate(&mut self, block: u64) -> FsResult<()> {
        self.check(block)?;
        if self.is_allocated(block) {
            return Err(FsError::Corrupt(format!("block {block} already allocated")));
        }
        let byte = (block / 8) as usize;
        self.bits[byte] |= 1 << (block % 8);
        self.allocated += 1;
        if block == self.free_hint {
            // Everything below `block` was already allocated (invariant),
            // and `block` just joined them: rotate the hint forward.
            self.free_hint = block + 1;
        }
        self.mark_dirty(block);
        Ok(())
    }

    /// Mark `block` free.  Returns an error if it was already free.
    pub fn free(&mut self, block: u64) -> FsResult<()> {
        self.check(block)?;
        if !self.is_allocated(block) {
            return Err(FsError::Corrupt(format!("block {block} already free")));
        }
        let byte = (block / 8) as usize;
        self.bits[byte] &= !(1 << (block % 8));
        self.allocated -= 1;
        self.free_hint = self.free_hint.min(block);
        self.mark_dirty(block);
        Ok(())
    }

    /// Lower bound of the free space: every block strictly below the hint is
    /// allocated, so first-fit searches may start here instead of at 0.
    pub fn next_free_hint(&self) -> u64 {
        self.free_hint
    }

    /// The 64-block word whose first bit is `block` (which must be 64-aligned
    /// and have all 64 bits in range).  Bit `i` of the result is the
    /// allocation bit of `block + i`.
    fn word_at(&self, block: u64) -> u64 {
        debug_assert!(block.is_multiple_of(64) && block + 64 <= self.bits.len() as u64 * 8);
        let byte = (block / 8) as usize;
        u64::from_le_bytes(self.bits[byte..byte + 8].try_into().expect("8 bytes"))
    }

    /// First free block in `[from, to)`, scanning a word at a time.
    fn scan_free(&self, from: u64, to: u64) -> Option<u64> {
        let mut b = from;
        // Head: individual bits up to the next word boundary.
        while b < to && !b.is_multiple_of(64) {
            if !self.is_allocated(b) {
                return Some(b);
            }
            b += 1;
        }
        // Body: whole words (fully in range, so the first zero bit of a
        // non-full word is always a valid answer).
        while b + 64 <= to {
            let word = self.word_at(b);
            if word != u64::MAX {
                return Some(b + (!word).trailing_zeros() as u64);
            }
            b += 64;
        }
        // Tail: the final partial word.
        while b < to {
            if !self.is_allocated(b) {
                return Some(b);
            }
            b += 1;
        }
        None
    }

    /// Find the first free block at or after `start` within `[region_start,
    /// region_end)`, wrapping around once.  Word-level scan plus the
    /// next-free hint; returns exactly what the naive bit walk would.
    pub fn find_free_from(&self, start: u64, region_start: u64, region_end: u64) -> Option<u64> {
        if region_start >= region_end {
            return None;
        }
        let start = start.clamp(region_start, region_end - 1);
        // All blocks below the hint are allocated, so both passes may begin
        // at the hint without skipping any candidate the walk would find.
        self.scan_free(start.max(self.free_hint), region_end)
            .or_else(|| self.scan_free(region_start.max(self.free_hint), start))
    }

    /// Find a run of `len` consecutive free blocks within `[region_start,
    /// region_end)`, searching from `hint`.
    pub fn find_free_run(
        &self,
        len: u64,
        hint: u64,
        region_start: u64,
        region_end: u64,
    ) -> Option<u64> {
        if len == 0 || region_start >= region_end || region_end - region_start < len {
            return None;
        }
        let hint = hint.clamp(region_start, region_end - 1);
        // Search from the hint to the end, then from the region start to the
        // hint, so a fresh volume fills front-to-back (contiguous files).
        let search = |from: u64, to: u64| -> Option<u64> {
            let mut run_start = from;
            let mut run_len = 0u64;
            let mut b = from;
            while b < to {
                // Between runs, skip fully allocated words with one compare.
                if run_len == 0
                    && b.is_multiple_of(64)
                    && b + 64 <= to
                    && self.word_at(b) == u64::MAX
                {
                    b += 64;
                    run_start = b;
                    continue;
                }
                if self.is_allocated(b) {
                    run_len = 0;
                    run_start = b + 1;
                } else {
                    run_len += 1;
                    if run_len == len {
                        return Some(run_start);
                    }
                }
                b += 1;
            }
            None
        };
        search(hint, region_end).or_else(|| search(region_start, (hint + len).min(region_end)))
    }

    /// Count free blocks within `[region_start, region_end)` — a word-level
    /// popcount, since the allocator consults this before every multi-block
    /// allocation.
    pub fn free_in_region(&self, region_start: u64, region_end: u64) -> u64 {
        let mut free = 0u64;
        let mut b = region_start;
        while b < region_end && !b.is_multiple_of(64) {
            free += u64::from(!self.is_allocated(b));
            b += 1;
        }
        while b + 64 <= region_end {
            free += u64::from(self.word_at(b).count_zeros());
            b += 64;
        }
        while b < region_end {
            free += u64::from(!self.is_allocated(b));
            b += 1;
        }
        free
    }

    /// Write all dirty bitmap blocks back to the device.
    pub fn flush(&mut self, dev: &dyn BlockDevice) -> FsResult<()> {
        let dirty: Vec<u64> = self.dirty_bitmap_blocks.iter().copied().collect();
        for bitmap_block in dirty {
            let buf = self.serialize_block(bitmap_block);
            dev.write_block(self.bitmap_start + bitmap_block, &buf)?;
        }
        self.dirty_bitmap_blocks.clear();
        Ok(())
    }

    /// Number of bitmap blocks currently dirty (exposed for tests).
    pub fn dirty_count(&self) -> usize {
        self.dirty_bitmap_blocks.len()
    }

    /// Index (within the bitmap region) of the bitmap block that stores the
    /// allocation bit of `block`.
    pub fn bitmap_block_of(&self, block: u64) -> u64 {
        block / (self.block_size as u64 * 8)
    }

    /// Device block number of the bitmap block at region index `index`.
    pub fn device_block_of(&self, index: u64) -> u64 {
        self.bitmap_start + index
    }

    /// Serialise the current contents of the bitmap block at region index
    /// `index` — the snapshot the journal stages so a committed allocation
    /// survives a crash.
    pub fn serialize_block(&self, index: u64) -> Vec<u8> {
        let mut buf = vec![0u8; self.block_size];
        let byte_start = (index as usize) * self.block_size;
        let byte_end = (byte_start + self.block_size).min(self.bits.len());
        if byte_start < self.bits.len() {
            buf[..byte_end - byte_start].copy_from_slice(&self.bits[byte_start..byte_end]);
        }
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stegfs_blockdev::MemBlockDevice;

    fn small_sb() -> Superblock {
        Superblock::compute(1024, 4096, 256, 0).unwrap()
    }

    #[test]
    fn allocate_and_free_update_counts() {
        let sb = small_sb();
        let mut bm = Bitmap::new(&sb);
        assert_eq!(bm.free_blocks(), 4096);
        bm.allocate(100).unwrap();
        bm.allocate(101).unwrap();
        assert!(bm.is_allocated(100));
        assert!(!bm.is_allocated(99));
        assert_eq!(bm.allocated_blocks(), 2);
        bm.free(100).unwrap();
        assert_eq!(bm.allocated_blocks(), 1);
        assert!(!bm.is_allocated(100));
    }

    #[test]
    fn double_allocate_and_double_free_rejected() {
        let sb = small_sb();
        let mut bm = Bitmap::new(&sb);
        bm.allocate(5).unwrap();
        assert!(bm.allocate(5).is_err());
        bm.free(5).unwrap();
        assert!(bm.free(5).is_err());
    }

    #[test]
    fn out_of_range_rejected() {
        let sb = small_sb();
        let mut bm = Bitmap::new(&sb);
        assert!(bm.allocate(4096).is_err());
        assert!(bm.free(9999).is_err());
    }

    #[test]
    fn find_free_from_wraps() {
        let sb = small_sb();
        let mut bm = Bitmap::new(&sb);
        // Fill 10..20, search starting at 15 inside region [10, 20): nothing.
        for b in 10..20 {
            bm.allocate(b).unwrap();
        }
        assert_eq!(bm.find_free_from(15, 10, 20), None);
        // Region [10, 25): first free after 15 is 20.
        assert_eq!(bm.find_free_from(15, 10, 25), Some(20));
        // Wrap: region [5, 20) starting at 15 -> free blocks are 5..10.
        assert_eq!(bm.find_free_from(15, 5, 20), Some(5));
    }

    #[test]
    fn find_free_run_basic() {
        let sb = small_sb();
        let mut bm = Bitmap::new(&sb);
        assert_eq!(bm.find_free_run(8, 0, 0, 4096), Some(0));
        // Poke a hole so the first run of 8 starts later.
        for b in 0..5 {
            bm.allocate(b).unwrap();
        }
        bm.allocate(7).unwrap();
        assert_eq!(bm.find_free_run(8, 0, 0, 4096), Some(8));
        // A run of 2 fits in the gap 5..7.
        assert_eq!(bm.find_free_run(2, 0, 0, 4096), Some(5));
        // Run longer than the region fails.
        assert_eq!(bm.find_free_run(100, 0, 0, 50), None);
        assert_eq!(bm.find_free_run(0, 0, 0, 4096), None);
    }

    #[test]
    fn find_free_run_respects_hint_then_wraps() {
        let sb = small_sb();
        let mut bm = Bitmap::new(&sb);
        // Allocate everything from 2000 on so a hint past it must wrap back.
        for b in 2000..4096 {
            bm.allocate(b).unwrap();
        }
        assert_eq!(bm.find_free_run(4, 3000, 0, 4096), Some(0));
        assert_eq!(bm.find_free_run(4, 100, 0, 4096), Some(100));
    }

    #[test]
    fn free_in_region_counts() {
        let sb = small_sb();
        let mut bm = Bitmap::new(&sb);
        for b in 10..20 {
            bm.allocate(b).unwrap();
        }
        assert_eq!(bm.free_in_region(0, 30), 20);
        assert_eq!(bm.free_in_region(10, 20), 0);
    }

    #[test]
    fn word_scan_matches_naive_walk() {
        // A deliberately ragged pattern across word boundaries.
        let sb = small_sb();
        let mut bm = Bitmap::new(&sb);
        for b in 0..4096u64 {
            if b % 3 != 0 || (640..832).contains(&b) || b < 130 {
                bm.allocate(b).unwrap();
            }
        }
        let naive = |start: u64, rs: u64, re: u64| -> Option<u64> {
            if rs >= re {
                return None;
            }
            let start = start.clamp(rs, re - 1);
            let mut b = start;
            loop {
                if !bm.is_allocated(b) {
                    return Some(b);
                }
                b += 1;
                if b >= re {
                    b = rs;
                }
                if b == start {
                    return None;
                }
            }
        };
        for (start, rs, re) in [
            (0u64, 0u64, 4096u64),
            (1, 0, 4096),
            (63, 0, 4096),
            (64, 0, 4096),
            (100, 50, 700),
            (650, 600, 900),
            (4095, 0, 4096),
            (700, 640, 832),
            (10, 130, 131),
        ] {
            assert_eq!(
                bm.find_free_from(start, rs, re),
                naive(start, rs, re),
                "start {start}, region [{rs}, {re})"
            );
        }
        // Popcount agrees with the filter-count for odd-aligned regions.
        for (rs, re) in [(0u64, 4096u64), (1, 4095), (63, 65), (600, 900), (130, 130)] {
            let expect = (rs..re).filter(|&b| !bm.is_allocated(b)).count() as u64;
            assert_eq!(bm.free_in_region(rs, re), expect, "region [{rs}, {re})");
        }
    }

    #[test]
    fn next_free_hint_rotates_and_snaps_back() {
        let sb = small_sb();
        let mut bm = Bitmap::new(&sb);
        assert_eq!(bm.next_free_hint(), 0);
        // Allocating the prefix rotates the hint forward with it.
        for b in 0..200u64 {
            bm.allocate(b).unwrap();
        }
        assert_eq!(bm.next_free_hint(), 200);
        // An out-of-order allocation leaves the hint alone...
        bm.allocate(1000).unwrap();
        assert_eq!(bm.next_free_hint(), 200);
        // ...and a free below it snaps it back.
        bm.free(50).unwrap();
        assert_eq!(bm.next_free_hint(), 50);
        assert_eq!(bm.find_free_from(0, 0, 4096), Some(50));
        bm.allocate(50).unwrap();
        assert_eq!(bm.next_free_hint(), 51);
        // The invariant holds: everything below the hint is allocated.
        for b in 0..bm.next_free_hint() {
            assert!(bm.is_allocated(b));
        }
        assert_eq!(bm.find_free_from(0, 0, 4096), Some(200));
    }

    #[test]
    fn flush_and_reload_roundtrip() {
        let sb = small_sb();
        let dev = MemBlockDevice::new(1024, 4096);
        let mut bm = Bitmap::new(&sb);
        for b in [0u64, 7, 8, 1000, 4095] {
            bm.allocate(b).unwrap();
        }
        assert!(bm.dirty_count() > 0);
        bm.flush(&dev).unwrap();
        assert_eq!(bm.dirty_count(), 0);

        let loaded = Bitmap::load(&sb, &dev).unwrap();
        assert_eq!(loaded.allocated_blocks(), 5);
        for b in [0u64, 7, 8, 1000, 4095] {
            assert!(loaded.is_allocated(b), "block {b}");
        }
        assert!(!loaded.is_allocated(1));
    }

    #[test]
    fn flush_only_writes_dirty_blocks() {
        // A volume large enough to need several bitmap blocks: 64k blocks at
        // 1 KB block size -> 8192 bits per bitmap block -> 8 bitmap blocks.
        let sb = Superblock::compute(1024, 65536, 256, 0).unwrap();
        let metered = stegfs_blockdev::MeteredDevice::new(MemBlockDevice::new(1024, 65536));
        let stats = metered.stats_handle();
        let dev = metered;
        let mut bm = Bitmap::new(&sb);
        bm.allocate(0).unwrap(); // bit in bitmap block 0
        bm.allocate(60000).unwrap(); // bit in bitmap block 7
        bm.flush(&dev).unwrap();
        assert_eq!(stats.snapshot().writes, 2, "only two bitmap blocks dirty");
    }
}
