//! The block bitmap, sharded into independently locked segments.
//!
//! One bit per block: 0 = free, 1 = allocated, exactly as in Figure 1 of the
//! paper.  The bitmap is the *only* structure shared by plain and hidden
//! objects — hidden files mark their blocks here so the space is not handed
//! out again, but nothing else about them is recorded anywhere visible.
//!
//! # Sharding
//!
//! The in-memory bitmap is split into [`BITMAP_SHARDS`] contiguous
//! *segments*, each behind its own mutex, like per-CPU free lists: marking a
//! block allocated or free locks only the segment that owns it, so disjoint
//! writers allocating in different parts of the volume stop serialising on
//! one global allocator lock.  Segment boundaries are 64-block aligned (so
//! word-level scans never straddle a lock) and are an *in-memory* notion
//! only — the on-disk bitmap layout is unchanged, byte for byte, and a
//! volume formatted before sharding mounts identically.
//!
//! Each segment keeps its own rotating *next-free hint* (the invariant:
//! every block of the segment below its hint is allocated).  Hints being
//! per-shard means one full region cannot drag every writer's first-fit
//! scan back to the front of the volume.  Both the word-level scan and the
//! hints are pure accelerations — the blocks returned are bit-for-bit the
//! ones the naive walk would have found.
//!
//! Multi-segment operations (journal bitmap snapshots via
//! [`Bitmap::lock_blocks`], whole-volume scans for contiguous runs, flush)
//! lock the segments they need in ascending index order, so no cycle can
//! form.  The journal-staging contract from the transaction layer survives
//! per shard: a committer holds every segment covering its touched bitmap
//! blocks across snapshot *and* sequence assignment, so for any given
//! bitmap block, snapshot order still agrees with journal sequence order.

use crate::error::{FsError, FsResult};
use crate::layout::Superblock;
use std::collections::BTreeSet;
use std::sync::Arc;
use stegfs_blockdev::BlockDevice;
use stegfs_obs::{LockStats, TimedMutex, TimedMutexGuard};

/// Number of bitmap segments (and `fs.alloc.<shard>` lock families).
///
/// Fixed so the observability snapshot shape is static; small volumes simply
/// leave trailing segments empty.
pub const BITMAP_SHARDS: usize = 8;

/// One contiguous, independently locked slice of the bitmap.
struct Segment {
    /// Allocation bits for blocks `[start, end)`; `start` is 64-aligned so
    /// the slice is byte- and word-aligned.
    bits: Vec<u8>,
    /// First block this segment owns (absolute).
    start: u64,
    /// One past the last block this segment owns (absolute).
    end: u64,
    /// Blocks currently marked allocated within this segment.
    allocated: u64,
    /// Per-shard next-free hint (absolute): every block in
    /// `[start, free_hint)` is allocated.  Rotates forward on allocation,
    /// snaps back on free.
    free_hint: u64,
    /// Global bitmap-block indices this segment has dirtied.
    dirty: BTreeSet<u64>,
    /// Bits per on-disk bitmap block (block_size * 8), for dirty tracking.
    bits_per_block: u64,
}

impl Segment {
    fn len(&self) -> u64 {
        self.end - self.start
    }

    #[inline]
    fn is_allocated(&self, block: u64) -> bool {
        debug_assert!(block >= self.start && block < self.end);
        let local = block - self.start;
        (self.bits[(local / 8) as usize] >> (local % 8)) & 1 == 1
    }

    fn mark_dirty(&mut self, block: u64) {
        self.dirty.insert(block / self.bits_per_block);
    }

    fn allocate(&mut self, block: u64) -> FsResult<()> {
        if self.is_allocated(block) {
            return Err(FsError::Corrupt(format!("block {block} already allocated")));
        }
        let local = block - self.start;
        self.bits[(local / 8) as usize] |= 1 << (local % 8);
        self.allocated += 1;
        if block == self.free_hint {
            // Everything below `block` in this segment was already allocated
            // (invariant), and `block` just joined them: rotate forward.
            self.free_hint = block + 1;
        }
        self.mark_dirty(block);
        Ok(())
    }

    fn free(&mut self, block: u64) -> FsResult<()> {
        if !self.is_allocated(block) {
            return Err(FsError::Corrupt(format!("block {block} already free")));
        }
        let local = block - self.start;
        self.bits[(local / 8) as usize] &= !(1 << (local % 8));
        self.allocated -= 1;
        self.free_hint = self.free_hint.min(block);
        self.mark_dirty(block);
        Ok(())
    }

    /// The 64-block word whose first bit is `block` (64-aligned, fully in
    /// this segment).  Bit `i` of the result is the bit of `block + i`.
    #[inline]
    fn word_at(&self, block: u64) -> u64 {
        debug_assert!(block.is_multiple_of(64) && block >= self.start);
        let byte = ((block - self.start) / 8) as usize;
        u64::from_le_bytes(self.bits[byte..byte + 8].try_into().expect("8 bytes"))
    }

    /// First free block in `[from, to)` (both within this segment), scanning
    /// a word at a time.  Starts at the segment hint when that is higher —
    /// transparent, since everything below the hint is allocated.
    fn scan_free(&self, from: u64, to: u64) -> Option<u64> {
        let mut b = from.max(self.free_hint);
        // Head: individual bits up to the next word boundary.
        while b < to && !b.is_multiple_of(64) {
            if !self.is_allocated(b) {
                return Some(b);
            }
            b += 1;
        }
        // Body: whole words (fully in range, so the first zero bit of a
        // non-full word is always a valid answer).
        while b + 64 <= to {
            let word = self.word_at(b);
            if word != u64::MAX {
                return Some(b + (!word).trailing_zeros() as u64);
            }
            b += 64;
        }
        // Tail: the final partial word.
        while b < to {
            if !self.is_allocated(b) {
                return Some(b);
            }
            b += 1;
        }
        None
    }

    /// Count free blocks in `[from, to)` (both within this segment) — a
    /// word-level popcount.
    fn count_free(&self, from: u64, to: u64) -> u64 {
        let mut free = 0u64;
        let mut b = from;
        while b < to && !b.is_multiple_of(64) {
            free += u64::from(!self.is_allocated(b));
            b += 1;
        }
        while b + 64 <= to {
            free += u64::from(self.word_at(b).count_zeros());
            b += 64;
        }
        while b < to {
            free += u64::from(!self.is_allocated(b));
            b += 1;
        }
        free
    }
}

/// In-memory copy of the on-disk block bitmap: [`BITMAP_SHARDS`] locked
/// segments with per-shard dirty tracking and free hints.  All methods take
/// `&self`; see the module docs for the locking discipline.
pub struct Bitmap {
    segments: Vec<TimedMutex<Segment>>,
    /// Blocks per segment (64-aligned); the last segments may own fewer (or
    /// zero) blocks.
    seg_span: u64,
    total_blocks: u64,
    block_size: usize,
    bitmap_start: u64,
}

impl Bitmap {
    fn assemble(sb: &Superblock, all_bits: &[u8]) -> Self {
        let total = sb.total_blocks;
        // 64-aligned span so segment slices are word-aligned and a word scan
        // never crosses a lock boundary.
        let seg_span = (total.div_ceil(BITMAP_SHARDS as u64)).div_ceil(64).max(1) * 64;
        let bits_per_block = sb.block_size as u64 * 8;
        let segments = (0..BITMAP_SHARDS as u64)
            .map(|i| {
                let start = (i * seg_span).min(total);
                let end = ((i + 1) * seg_span).min(total);
                let byte_start = (start / 8) as usize;
                let byte_end = (end as usize).div_ceil(8);
                let mut bits = vec![0u8; ((end - start) as usize).div_ceil(8)];
                if byte_start < all_bits.len() {
                    let src = &all_bits[byte_start..byte_end.min(all_bits.len())];
                    bits[..src.len()].copy_from_slice(src);
                }
                let allocated = bits.iter().map(|b| b.count_ones() as u64).sum();
                TimedMutex::new(Segment {
                    bits,
                    start,
                    end,
                    allocated,
                    free_hint: start,
                    dirty: BTreeSet::new(),
                    bits_per_block,
                })
            })
            .collect();
        Bitmap {
            segments,
            seg_span,
            total_blocks: total,
            block_size: sb.block_size as usize,
            bitmap_start: sb.bitmap_start,
        }
    }

    /// Create a fresh all-free bitmap for a volume described by `sb`.
    pub fn new(sb: &Superblock) -> Self {
        Self::assemble(sb, &[])
    }

    /// Load the bitmap from the device.
    pub fn load(sb: &Superblock, dev: &dyn BlockDevice) -> FsResult<Self> {
        let mut bits = Vec::with_capacity((sb.total_blocks as usize).div_ceil(8));
        let mut buf = vec![0u8; sb.block_size as usize];
        for i in 0..sb.bitmap_blocks {
            dev.read_block(sb.bitmap_start + i, &mut buf)?;
            bits.extend_from_slice(&buf);
        }
        bits.truncate((sb.total_blocks as usize).div_ceil(8));
        // Bits beyond total_blocks in the final byte are never set by this
        // implementation, so the per-segment popcounts are exact.
        Ok(Self::assemble(sb, &bits))
    }

    /// Join the per-segment locks to the `fs.alloc.<shard>` observability
    /// families.  Called once during volume assembly (`&mut`: before the
    /// bitmap is shared).
    pub fn set_shard_stats(&mut self, stats: &[Arc<LockStats>]) {
        for (seg, s) in self.segments.iter_mut().zip(stats) {
            seg.set_stats(s.clone());
        }
    }

    /// Total number of blocks tracked.
    pub fn total_blocks(&self) -> u64 {
        self.total_blocks
    }

    /// Number of blocks currently marked allocated.
    pub fn allocated_blocks(&self) -> u64 {
        self.segments.iter().map(|s| s.lock().allocated).sum()
    }

    /// Number of blocks currently free.
    pub fn free_blocks(&self) -> u64 {
        self.total_blocks - self.allocated_blocks()
    }

    fn check(&self, block: u64) -> FsResult<()> {
        if block >= self.total_blocks {
            return Err(FsError::Corrupt(format!(
                "bitmap access to block {block} beyond volume end {}",
                self.total_blocks
            )));
        }
        Ok(())
    }

    /// Index of the segment owning `block`.
    #[inline]
    fn shard_of(&self, block: u64) -> usize {
        ((block / self.seg_span) as usize).min(BITMAP_SHARDS - 1)
    }

    /// True if `block` is marked allocated.
    pub fn is_allocated(&self, block: u64) -> bool {
        debug_assert!(block < self.total_blocks);
        self.segments[self.shard_of(block)]
            .lock()
            .is_allocated(block)
    }

    /// Mark `block` allocated.  Returns an error if it was already allocated
    /// (double allocation indicates a logic bug or corruption).
    pub fn allocate(&self, block: u64) -> FsResult<()> {
        self.check(block)?;
        self.segments[self.shard_of(block)].lock().allocate(block)
    }

    /// Atomically check-and-claim `block` under its segment lock: `Ok(true)`
    /// if this caller claimed it, `Ok(false)` if it was already taken.
    pub fn try_allocate(&self, block: u64) -> FsResult<bool> {
        self.check(block)?;
        let mut seg = self.segments[self.shard_of(block)].lock();
        if seg.is_allocated(block) {
            return Ok(false);
        }
        seg.allocate(block)?;
        Ok(true)
    }

    /// Mark `block` free.  Returns an error if it was already free.
    pub fn free(&self, block: u64) -> FsResult<()> {
        self.check(block)?;
        self.segments[self.shard_of(block)].lock().free(block)
    }

    /// Lower bound of the free space: every block strictly below the
    /// returned hint is allocated.  Computed from the per-shard hints by
    /// walking the fully allocated segment prefix.
    pub fn next_free_hint(&self) -> u64 {
        for seg in &self.segments {
            let seg = seg.lock();
            if seg.free_hint < seg.end || seg.len() == 0 {
                return seg.free_hint;
            }
        }
        self.total_blocks
    }

    /// The next-free hint of one shard (absolute block index).  Exposed so
    /// tests can assert a full shard does not drag other shards' scans back.
    pub fn shard_free_hint(&self, shard: usize) -> u64 {
        self.segments[shard].lock().free_hint
    }

    /// Number of segments with a non-empty block range on this volume.
    pub fn live_shards(&self) -> usize {
        self.segments
            .iter()
            .filter(|s| {
                let s = s.lock();
                s.len() > 0
            })
            .count()
    }

    /// First free block in `[from, to)`, locking one segment at a time.
    fn scan_free(&self, from: u64, to: u64) -> Option<u64> {
        if from >= to {
            return None;
        }
        let first = self.shard_of(from);
        let last = self.shard_of(to - 1);
        for i in first..=last {
            let seg = self.segments[i].lock();
            if seg.len() == 0 {
                continue;
            }
            if let Some(b) = seg.scan_free(from.max(seg.start), to.min(seg.end)) {
                return Some(b);
            }
        }
        None
    }

    /// Find the first free block at or after `start` within `[region_start,
    /// region_end)`, wrapping around once.  Word-level scan plus the
    /// per-shard next-free hints; returns exactly what the naive bit walk
    /// would.  Racy under concurrency by design (callers re-check with an
    /// atomic claim); see [`Self::claim_free_from`].
    pub fn find_free_from(&self, start: u64, region_start: u64, region_end: u64) -> Option<u64> {
        if region_start >= region_end {
            return None;
        }
        let start = start.clamp(region_start, region_end - 1);
        self.scan_free(start, region_end)
            .or_else(|| self.scan_free(region_start, start))
    }

    /// [`Self::find_free_from`] fused with the claim: the found block is
    /// marked allocated under the same segment lock the scan ran under, so
    /// concurrent claimers can never be handed the same block.
    pub fn claim_free_from(&self, start: u64, region_start: u64, region_end: u64) -> Option<u64> {
        if region_start >= region_end {
            return None;
        }
        let start = start.clamp(region_start, region_end - 1);
        for (from, to) in [(start, region_end), (region_start, start)] {
            if from >= to {
                continue;
            }
            let first = self.shard_of(from);
            let last = self.shard_of(to - 1);
            for i in first..=last {
                let mut seg = self.segments[i].lock();
                if seg.len() == 0 {
                    continue;
                }
                if let Some(b) = seg.scan_free(from.max(seg.start), to.min(seg.end)) {
                    seg.allocate(b).ok()?;
                    return Some(b);
                }
            }
        }
        None
    }

    /// Atomically probe-and-claim: try each candidate in order with one
    /// segment lock per probe, then fall back to a claiming scan from
    /// `origin`.  This is the hidden-placement hot path — the caller draws
    /// the randomness up front (under the small allocator meta lock) and no
    /// lock is held across more than one segment here.
    pub fn claim_random(
        &self,
        probes: &[u64],
        origin: u64,
        region_start: u64,
        region_end: u64,
    ) -> Option<u64> {
        for &candidate in probes {
            if let Ok(true) = self.try_allocate(candidate) {
                return Some(candidate);
            }
        }
        self.claim_free_from(origin, region_start, region_end)
    }

    /// Lock every segment, ascending (for whole-volume searches and flush).
    fn lock_all(&self) -> Vec<TimedMutexGuard<'_, Segment>> {
        self.segments.iter().map(|s| s.lock()).collect()
    }

    /// Find a run of `len` consecutive free blocks within `[region_start,
    /// region_end)`, searching from `hint`.  Locks all segments for a
    /// consistent view (runs cross shard boundaries); used by the rare
    /// contiguous/fragmented experiment policies.
    pub fn find_free_run(
        &self,
        len: u64,
        hint: u64,
        region_start: u64,
        region_end: u64,
    ) -> Option<u64> {
        let segs = self.lock_all();
        find_run_in(&segs, len, hint, region_start, region_end)
    }

    /// [`Self::find_free_run`] fused with the claim: the whole run is marked
    /// allocated under the same all-segments hold the search ran under.
    pub fn claim_run(
        &self,
        len: u64,
        hint: u64,
        region_start: u64,
        region_end: u64,
    ) -> Option<u64> {
        let mut segs = self.lock_all();
        let start = find_run_in(&segs, len, hint, region_start, region_end)?;
        for b in start..start + len {
            let i = self.shard_of(b);
            segs[i].allocate(b).ok()?;
        }
        Some(start)
    }

    /// Count free blocks within `[region_start, region_end)` — a word-level
    /// popcount, one segment lock at a time.
    pub fn free_in_region(&self, region_start: u64, region_end: u64) -> u64 {
        if region_start >= region_end {
            return 0;
        }
        let first = self.shard_of(region_start);
        let last = self.shard_of(region_end - 1);
        let mut free = 0u64;
        for i in first..=last {
            let seg = self.segments[i].lock();
            if seg.len() == 0 {
                continue;
            }
            free += seg.count_free(region_start.max(seg.start), region_end.min(seg.end));
        }
        free
    }

    /// Write all dirty bitmap blocks back to the device.  Holds every
    /// segment lock across the writes so a concurrent committer's
    /// re-asserted snapshot can never be overwritten by a stale image.
    pub fn flush(&self, dev: &dyn BlockDevice) -> FsResult<()> {
        let mut segs = self.lock_all();
        let mut dirty: BTreeSet<u64> = BTreeSet::new();
        for seg in segs.iter_mut() {
            dirty.append(&mut seg.dirty);
        }
        for index in dirty {
            let buf = assemble_block(self, &segs, index);
            dev.write_block(self.bitmap_start + index, &buf)?;
        }
        Ok(())
    }

    /// Number of bitmap blocks currently dirty (exposed for tests).
    pub fn dirty_count(&self) -> usize {
        let segs = self.lock_all();
        let mut dirty: BTreeSet<u64> = BTreeSet::new();
        for seg in &segs {
            dirty.extend(seg.dirty.iter().copied());
        }
        dirty.len()
    }

    /// Index (within the bitmap region) of the bitmap block that stores the
    /// allocation bit of `block`.  Pure geometry — no lock.
    pub fn bitmap_block_of(&self, block: u64) -> u64 {
        block / (self.block_size as u64 * 8)
    }

    /// Device block number of the bitmap block at region index `index`.
    pub fn device_block_of(&self, index: u64) -> u64 {
        self.bitmap_start + index
    }

    /// Segment indices whose block ranges intersect the bitmap block at
    /// region index `index`.
    fn shards_covering(&self, index: u64) -> std::ops::RangeInclusive<usize> {
        let bits_per_block = self.block_size as u64 * 8;
        let first = (index * bits_per_block).min(self.total_blocks.saturating_sub(1));
        let last = ((index + 1) * bits_per_block)
            .min(self.total_blocks)
            .saturating_sub(1);
        self.shard_of(first)..=self.shard_of(last.max(first))
    }

    /// Serialise the current contents of the bitmap block at region index
    /// `index`, locking the covering segments.
    pub fn serialize_block(&self, index: u64) -> Vec<u8> {
        let segs = self.lock_all();
        assemble_block(self, &segs, index)
    }

    /// Lock, in ascending order, every segment covering the given
    /// bitmap-block indices *and* the given touched blocks, and return a
    /// guard for snapshotting and tentative bit flips.  This is the
    /// transaction-commit hold: the journal stages under it, so per shard
    /// the snapshot order agrees with the sequence order (see the module
    /// docs).
    pub fn lock_blocks(&self, indices: &BTreeSet<u64>) -> BitmapBlocksGuard<'_> {
        let mut shards: BTreeSet<usize> = BTreeSet::new();
        for &idx in indices {
            for s in self.shards_covering(idx) {
                shards.insert(s);
            }
        }
        let segs = shards
            .into_iter()
            .map(|i| (i, self.segments[i].lock()))
            .collect();
        BitmapBlocksGuard { bm: self, segs }
    }
}

/// Assemble the on-disk image of one bitmap block from held segment guards.
/// `segs` must cover every segment intersecting the block (a full
/// [`Bitmap::lock_all`] always does).
fn assemble_block(bm: &Bitmap, segs: &[TimedMutexGuard<'_, Segment>], index: u64) -> Vec<u8> {
    let mut buf = vec![0u8; bm.block_size];
    let byte_start = (index as usize) * bm.block_size;
    let total_bytes = (bm.total_blocks as usize).div_ceil(8);
    let byte_end = (byte_start + bm.block_size).min(total_bytes);
    for seg in segs {
        if seg.len() == 0 {
            continue;
        }
        let seg_byte_start = (seg.start / 8) as usize;
        let seg_byte_end = seg_byte_start + seg.bits.len();
        let lo = byte_start.max(seg_byte_start);
        let hi = byte_end.min(seg_byte_end);
        if lo < hi {
            buf[lo - byte_start..hi - byte_start]
                .copy_from_slice(&seg.bits[lo - seg_byte_start..hi - seg_byte_start]);
        }
    }
    buf
}

/// Run search over a consistent all-segments view (guards held by caller).
fn find_run_in(
    segs: &[TimedMutexGuard<'_, Segment>],
    len: u64,
    hint: u64,
    region_start: u64,
    region_end: u64,
) -> Option<u64> {
    if len == 0 || region_start >= region_end || region_end - region_start < len {
        return None;
    }
    let hint = hint.clamp(region_start, region_end - 1);
    let seg_of = |b: u64| -> &Segment {
        let i = segs
            .iter()
            .position(|s| b >= s.start && b < s.end)
            .expect("block within a segment");
        &segs[i]
    };
    let is_allocated = |b: u64| seg_of(b).is_allocated(b);
    // A word probe is safe when the whole word sits inside one segment —
    // guaranteed by 64-aligned segment boundaries.
    let word_at = |b: u64| seg_of(b).word_at(b);
    // Search from the hint to the end, then from the region start to the
    // hint, so a fresh volume fills front-to-back (contiguous files).
    let search = |from: u64, to: u64| -> Option<u64> {
        let mut run_start = from;
        let mut run_len = 0u64;
        let mut b = from;
        while b < to {
            // Between runs, skip fully allocated words with one compare.
            if run_len == 0 && b.is_multiple_of(64) && b + 64 <= to && word_at(b) == u64::MAX {
                b += 64;
                run_start = b;
                continue;
            }
            if is_allocated(b) {
                run_len = 0;
                run_start = b + 1;
            } else {
                run_len += 1;
                if run_len == len {
                    return Some(run_start);
                }
            }
            b += 1;
        }
        None
    };
    search(hint, region_end).or_else(|| search(region_start, (hint + len).min(region_end)))
}

/// The transaction-commit hold over the segments covering a set of bitmap
/// blocks: tentative frees, snapshot serialisation and the undo all run
/// against these guards, and the caller keeps the guard across journal
/// staging.  Produced by [`Bitmap::lock_blocks`].
pub struct BitmapBlocksGuard<'a> {
    bm: &'a Bitmap,
    /// `(shard index, guard)` pairs, ascending.
    segs: Vec<(usize, TimedMutexGuard<'a, Segment>)>,
}

impl BitmapBlocksGuard<'_> {
    fn seg_mut(&mut self, block: u64) -> FsResult<&mut Segment> {
        let shard = self.bm.shard_of(block);
        self.segs
            .iter_mut()
            .find(|(i, _)| *i == shard)
            .map(|(_, g)| &mut **g)
            .ok_or_else(|| {
                FsError::Corrupt(format!("block {block} outside the locked bitmap segments"))
            })
    }

    /// Mark `block` free (tentatively, for the snapshot).
    pub fn free(&mut self, block: u64) -> FsResult<()> {
        self.bm.check(block)?;
        self.seg_mut(block)?.free(block)
    }

    /// Mark `block` allocated (the snapshot undo).
    pub fn allocate(&mut self, block: u64) -> FsResult<()> {
        self.bm.check(block)?;
        self.seg_mut(block)?.allocate(block)
    }

    /// Serialise the bitmap block at region index `index` from the held
    /// segments.
    pub fn serialize_block(&self, index: u64) -> Vec<u8> {
        let mut buf = vec![0u8; self.bm.block_size];
        let byte_start = (index as usize) * self.bm.block_size;
        let total_bytes = (self.bm.total_blocks as usize).div_ceil(8);
        let byte_end = (byte_start + self.bm.block_size).min(total_bytes);
        for (_, seg) in &self.segs {
            if seg.len() == 0 {
                continue;
            }
            let seg_byte_start = (seg.start / 8) as usize;
            let seg_byte_end = seg_byte_start + seg.bits.len();
            let lo = byte_start.max(seg_byte_start);
            let hi = byte_end.min(seg_byte_end);
            if lo < hi {
                buf[lo - byte_start..hi - byte_start]
                    .copy_from_slice(&seg.bits[lo - seg_byte_start..hi - seg_byte_start]);
            }
        }
        buf
    }

    /// Device block number of the bitmap block at region index `index`.
    pub fn device_block_of(&self, index: u64) -> u64 {
        self.bm.device_block_of(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stegfs_blockdev::MemBlockDevice;

    fn small_sb() -> Superblock {
        Superblock::compute(1024, 4096, 256, 0).unwrap()
    }

    #[test]
    fn allocate_and_free_update_counts() {
        let sb = small_sb();
        let bm = Bitmap::new(&sb);
        assert_eq!(bm.free_blocks(), 4096);
        bm.allocate(100).unwrap();
        bm.allocate(101).unwrap();
        assert!(bm.is_allocated(100));
        assert!(!bm.is_allocated(99));
        assert_eq!(bm.allocated_blocks(), 2);
        bm.free(100).unwrap();
        assert_eq!(bm.allocated_blocks(), 1);
        assert!(!bm.is_allocated(100));
    }

    #[test]
    fn double_allocate_and_double_free_rejected() {
        let sb = small_sb();
        let bm = Bitmap::new(&sb);
        bm.allocate(5).unwrap();
        assert!(bm.allocate(5).is_err());
        bm.free(5).unwrap();
        assert!(bm.free(5).is_err());
    }

    #[test]
    fn out_of_range_rejected() {
        let sb = small_sb();
        let bm = Bitmap::new(&sb);
        assert!(bm.allocate(4096).is_err());
        assert!(bm.free(9999).is_err());
    }

    #[test]
    fn find_free_from_wraps() {
        let sb = small_sb();
        let bm = Bitmap::new(&sb);
        // Fill 10..20, search starting at 15 inside region [10, 20): nothing.
        for b in 10..20 {
            bm.allocate(b).unwrap();
        }
        assert_eq!(bm.find_free_from(15, 10, 20), None);
        // Region [10, 25): first free after 15 is 20.
        assert_eq!(bm.find_free_from(15, 10, 25), Some(20));
        // Wrap: region [5, 20) starting at 15 -> free blocks are 5..10.
        assert_eq!(bm.find_free_from(15, 5, 20), Some(5));
    }

    #[test]
    fn find_free_run_basic() {
        let sb = small_sb();
        let bm = Bitmap::new(&sb);
        assert_eq!(bm.find_free_run(8, 0, 0, 4096), Some(0));
        // Poke a hole so the first run of 8 starts later.
        for b in 0..5 {
            bm.allocate(b).unwrap();
        }
        bm.allocate(7).unwrap();
        assert_eq!(bm.find_free_run(8, 0, 0, 4096), Some(8));
        // A run of 2 fits in the gap 5..7.
        assert_eq!(bm.find_free_run(2, 0, 0, 4096), Some(5));
        // Run longer than the region fails.
        assert_eq!(bm.find_free_run(100, 0, 0, 50), None);
        assert_eq!(bm.find_free_run(0, 0, 0, 4096), None);
    }

    #[test]
    fn find_free_run_respects_hint_then_wraps() {
        let sb = small_sb();
        let bm = Bitmap::new(&sb);
        // Allocate everything from 2000 on so a hint past it must wrap back.
        for b in 2000..4096 {
            bm.allocate(b).unwrap();
        }
        assert_eq!(bm.find_free_run(4, 3000, 0, 4096), Some(0));
        assert_eq!(bm.find_free_run(4, 100, 0, 4096), Some(100));
    }

    #[test]
    fn runs_cross_shard_boundaries() {
        // 4096 blocks over 8 shards = 512-block segments; a run straddling
        // block 512 must be found and claimed whole.
        let sb = small_sb();
        let bm = Bitmap::new(&sb);
        for b in 0..508 {
            bm.allocate(b).unwrap();
        }
        assert_eq!(bm.find_free_run(16, 0, 0, 4096), Some(508));
        assert_eq!(bm.claim_run(16, 0, 0, 4096), Some(508));
        for b in 508..524 {
            assert!(bm.is_allocated(b), "block {b}");
        }
    }

    #[test]
    fn free_in_region_counts() {
        let sb = small_sb();
        let bm = Bitmap::new(&sb);
        for b in 10..20 {
            bm.allocate(b).unwrap();
        }
        assert_eq!(bm.free_in_region(0, 30), 20);
        assert_eq!(bm.free_in_region(10, 20), 0);
    }

    #[test]
    fn word_scan_matches_naive_walk() {
        // A deliberately ragged pattern across word boundaries.
        let sb = small_sb();
        let bm = Bitmap::new(&sb);
        for b in 0..4096u64 {
            if b % 3 != 0 || (640..832).contains(&b) || b < 130 {
                bm.allocate(b).unwrap();
            }
        }
        let naive = |start: u64, rs: u64, re: u64| -> Option<u64> {
            if rs >= re {
                return None;
            }
            let start = start.clamp(rs, re - 1);
            let mut b = start;
            loop {
                if !bm.is_allocated(b) {
                    return Some(b);
                }
                b += 1;
                if b >= re {
                    b = rs;
                }
                if b == start {
                    return None;
                }
            }
        };
        for (start, rs, re) in [
            (0u64, 0u64, 4096u64),
            (1, 0, 4096),
            (63, 0, 4096),
            (64, 0, 4096),
            (100, 50, 700),
            (650, 600, 900),
            (4095, 0, 4096),
            (700, 640, 832),
            (10, 130, 131),
            (500, 400, 700),
            (511, 0, 4096),
            (513, 0, 4096),
        ] {
            assert_eq!(
                bm.find_free_from(start, rs, re),
                naive(start, rs, re),
                "start {start}, region [{rs}, {re})"
            );
        }
        // Popcount agrees with the filter-count for odd-aligned regions,
        // including ones crossing the 512-block shard boundaries.
        for (rs, re) in [
            (0u64, 4096u64),
            (1, 4095),
            (63, 65),
            (600, 900),
            (130, 130),
            (500, 530),
            (510, 1530),
        ] {
            let expect = (rs..re).filter(|&b| !bm.is_allocated(b)).count() as u64;
            assert_eq!(bm.free_in_region(rs, re), expect, "region [{rs}, {re})");
        }
    }

    #[test]
    fn next_free_hint_rotates_and_snaps_back() {
        let sb = small_sb();
        let bm = Bitmap::new(&sb);
        assert_eq!(bm.next_free_hint(), 0);
        // Allocating the prefix rotates the hint forward with it.
        for b in 0..200u64 {
            bm.allocate(b).unwrap();
        }
        assert_eq!(bm.next_free_hint(), 200);
        // An out-of-order allocation leaves the hint alone...
        bm.allocate(1000).unwrap();
        assert_eq!(bm.next_free_hint(), 200);
        // ...and a free below it snaps it back.
        bm.free(50).unwrap();
        assert_eq!(bm.next_free_hint(), 50);
        assert_eq!(bm.find_free_from(0, 0, 4096), Some(50));
        bm.allocate(50).unwrap();
        assert_eq!(bm.next_free_hint(), 51);
        // The invariant holds: everything below the hint is allocated.
        for b in 0..bm.next_free_hint() {
            assert!(bm.is_allocated(b));
        }
        assert_eq!(bm.find_free_from(0, 0, 4096), Some(200));
    }

    #[test]
    fn hints_are_per_shard() {
        // 4096 blocks over 8 shards = 512-block segments.  Filling shard 0
        // completely must not drag shard 2's hint (or scans through it) back
        // to the volume start, and freeing inside shard 0 must not disturb
        // the other shards' hints.
        let sb = small_sb();
        let bm = Bitmap::new(&sb);
        for b in 0..512u64 {
            bm.allocate(b).unwrap();
        }
        for b in 1024..1100u64 {
            bm.allocate(b).unwrap();
        }
        assert_eq!(bm.shard_free_hint(0), 512);
        assert_eq!(bm.shard_free_hint(2), 1100);
        bm.free(40).unwrap();
        assert_eq!(bm.shard_free_hint(0), 40);
        assert_eq!(bm.shard_free_hint(2), 1100, "other shard's hint untouched");
        // A scan confined past shard 0 starts from shard 2's hint, not 0.
        assert_eq!(bm.find_free_from(1024, 1024, 2048), Some(1100));
        assert_eq!(bm.live_shards(), BITMAP_SHARDS);
    }

    #[test]
    fn claim_paths_match_find_paths() {
        let sb = small_sb();
        let bm = Bitmap::new(&sb);
        for b in 0..130u64 {
            bm.allocate(b).unwrap();
        }
        let found = bm.find_free_from(0, 0, 4096).unwrap();
        let claimed = bm.claim_free_from(0, 0, 4096).unwrap();
        assert_eq!(found, claimed);
        assert!(bm.is_allocated(claimed));
        // try_allocate reports the loser.
        assert!(!bm.try_allocate(claimed).unwrap());
        assert!(bm.try_allocate(claimed + 1).unwrap());
        // claim_random prefers the first free probe.
        let got = bm.claim_random(&[5, 9999, 200], 0, 0, 4096);
        assert_eq!(got, Some(200), "5 allocated, 9999 out of range scans on");
    }

    #[test]
    fn concurrent_claims_never_double_own() {
        use std::sync::Arc;
        let sb = small_sb();
        let bm = Arc::new(Bitmap::new(&sb));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let bm = Arc::clone(&bm);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    for i in 0..200u64 {
                        // Deliberately colliding probe sequences.
                        let probes = [(t * 13 + i * 7) % 4096, (i * 31) % 4096];
                        if let Some(b) = bm.claim_random(&probes, (t * 512) % 4096, 0, 4096) {
                            got.push(b);
                        }
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<u64> = threads
            .into_iter()
            .flat_map(|t| t.join().unwrap())
            .collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "no block claimed twice");
        assert_eq!(bm.allocated_blocks(), n as u64);
    }

    #[test]
    fn flush_and_reload_roundtrip() {
        let sb = small_sb();
        let dev = MemBlockDevice::new(1024, 4096);
        let bm = Bitmap::new(&sb);
        for b in [0u64, 7, 8, 1000, 4095] {
            bm.allocate(b).unwrap();
        }
        assert!(bm.dirty_count() > 0);
        bm.flush(&dev).unwrap();
        assert_eq!(bm.dirty_count(), 0);

        let loaded = Bitmap::load(&sb, &dev).unwrap();
        assert_eq!(loaded.allocated_blocks(), 5);
        for b in [0u64, 7, 8, 1000, 4095] {
            assert!(loaded.is_allocated(b), "block {b}");
        }
        assert!(!loaded.is_allocated(1));
    }

    #[test]
    fn flush_only_writes_dirty_blocks() {
        // A volume large enough to need several bitmap blocks: 64k blocks at
        // 1 KB block size -> 8192 bits per bitmap block -> 8 bitmap blocks.
        let sb = Superblock::compute(1024, 65536, 256, 0).unwrap();
        let metered = stegfs_blockdev::MeteredDevice::new(MemBlockDevice::new(1024, 65536));
        let stats = metered.stats_handle();
        let dev = metered;
        let bm = Bitmap::new(&sb);
        bm.allocate(0).unwrap(); // bit in bitmap block 0
        bm.allocate(60000).unwrap(); // bit in bitmap block 7
        bm.flush(&dev).unwrap();
        assert_eq!(stats.snapshot().writes, 2, "only two bitmap blocks dirty");
    }

    #[test]
    fn commit_guard_snapshots_and_flips_bits() {
        let sb = small_sb();
        let bm = Bitmap::new(&sb);
        for b in [10u64, 600, 3000] {
            bm.allocate(b).unwrap();
        }
        let indices: BTreeSet<u64> = [bm.bitmap_block_of(10), bm.bitmap_block_of(3000)]
            .into_iter()
            .collect();
        let mut guard = bm.lock_blocks(&indices);
        guard.free(600).unwrap();
        let snap = guard.serialize_block(0);
        // Bit 600 cleared in the snapshot; bit 10 still set.
        assert_eq!(snap[75] & (1 << 0), 0, "bit 600 is byte 75 bit 0");
        assert_eq!(snap[1] & (1 << 2), 1 << 2, "bit 10 is byte 1 bit 2");
        guard.allocate(600).unwrap(); // undo
        drop(guard);
        assert!(bm.is_allocated(600));
        // The standalone serializer agrees with the guard's.
        assert_eq!(bm.serialize_block(0), {
            let g = bm.lock_blocks(&indices);
            g.serialize_block(0)
        });
    }
}
