//! The [`PlainFs`] facade: format, mount, and path-based file operations.
//!
//! `PlainFs` is the "native file system" of the reproduction.  Used on its
//! own with the [`AllocPolicy::Contiguous`] or [`AllocPolicy::Fragmented`]
//! policies it is the paper's CleanDisk / FragDisk baseline; used underneath
//! `stegfs-core` it provides the central directory, the bitmap, and raw block
//! access for hidden objects.
//!
//! # Concurrency
//!
//! Every public operation takes `&self`: the file system is sharded into
//! independently locked regions so that threads working on *different* files
//! overlap their block I/O and only contend where they genuinely share state:
//!
//! * **allocator meta lock + sharded bitmap segments** — the allocator
//!   mutex now guards only placement *meta* state (policy, first-fit
//!   cursor, the placement RNG): a hold is a few RNG draws, never a bitmap
//!   scan.  The bitmap itself is split into [`crate::bitmap::BITMAP_SHARDS`]
//!   independently locked segments (per-CPU-free-list style, each with its
//!   own word-scan hint), so writers claiming blocks in different parts of
//!   the volume flip bits fully in parallel.  Neither lock is held across
//!   device I/O of file contents.
//! * **namespace lock** — a reader/writer lock over the directory tree and
//!   the inode-slot table.  Path resolution and listings take it shared;
//!   create / rename / delete take it exclusively.  *Path-based* content
//!   operations (`read_file`, `write_file`, …) keep the shared guard across
//!   their content I/O — that is what pins the path→inode binding against a
//!   delete+create recycling the inode id — so namespace mutations wait for
//!   in-flight path-based transfers.  Inode-handle operations (the VFS hot
//!   path) never touch the namespace lock; they serialise on their stripe
//!   alone.
//! * **inode stripes** — [`STRIPE_COUNT`] mutexes, one per inode-id class,
//!   serialising content reads/writes *per file* (concurrent whole-file
//!   rewrites of one inode must not double-free its old blocks).  Two
//!   different files almost always hash to different stripes and proceed in
//!   parallel.
//! * **the device itself** — [`BlockDevice`] I/O takes `&self` and carries
//!   its own interior locking (the in-memory backend stripes its storage),
//!   so block transfers from different files overlap all the way down.
//!
//! Multi-block content transfers are *batched*: a file's whole extent list
//! goes to the device as one `read_blocks` / `write_blocks` submission under
//! a single hold of its stripe (readv/writev semantics), so a 64 KiB file
//! costs one submission instead of sixteen round-trips, and a latency-charging
//! device serves the batch with one overlapped service time.
//!
//! Lock order (outer to inner, i.e. acquire left before right):
//! `namespace < inode-stripe < inode-table-stripe < allocator-meta <
//! bitmap-segment < journal-internal < device-internal`.  Bitmap segments
//! are themselves ordered: multi-segment operations (commit snapshots,
//! run searches, flush) lock them in ascending segment index, and
//! single-segment claims hold exactly one.  No path holds the allocator
//! meta lock or a segment while acquiring an inode-table stripe; the
//! journaled commit path ([`crate::txn`]) relies on the reverse nesting
//! (table stripes first, then the covering bitmap segments for the
//! snapshot).  Deletion takes the namespace lock exclusively and then the
//! victim's stripe, so an in-flight content operation (which holds only
//! the stripe) always completes before its blocks are freed.

use crate::alloc::{AllocPolicy, Allocator};
use crate::bitmap::Bitmap;
use crate::dir::{decode_entries, encode_entries, split_parent, split_path, DirEntry};
use crate::error::{FsError, FsResult};
use crate::inode::{FileKind, Inode, InodeId, InodeTable, DIRECT_POINTERS, NO_BLOCK};
use crate::layout::Superblock;
use crate::txn::FsTxn;
use parking_lot::{Mutex, MutexGuard};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use stegfs_blockdev::{BlockDevice, ObservedDevice};
use stegfs_journal::{Journal, JournalGeometry};
use stegfs_obs::{span, Obs, TimedMutex, TimedRwLock, WatchdogStats};

/// Number of per-inode content stripes (see the module docs).
pub const STRIPE_COUNT: usize = 64;

/// Ring occupancy (permille) at or above which a committer checkpoints the
/// journal itself instead of stalling inside reclaim (see
/// [`PlainFs::maybe_steal_checkpoint`]).
pub(crate) const CHECKPOINT_STEAL_PERMILLE: u64 = 900;

/// Checkpoint-daemon wake interval from ring pressure: an idle ring keeps
/// the lazy 50 ms liveness tick, a filling ring tightens toward 5 ms so the
/// tail advances before committers hit reclaim (or the steal threshold).
fn checkpoint_tick(occupancy_permille: u64) -> std::time::Duration {
    match occupancy_permille {
        0..=249 => std::time::Duration::from_millis(50),
        250..=499 => std::time::Duration::from_millis(15),
        _ => std::time::Duration::from_millis(5),
    }
}

/// Options controlling [`PlainFs::format`].
#[derive(Debug, Clone)]
pub struct FormatOptions {
    /// Number of inodes ("central directory" capacity).  Defaults to one
    /// inode per 16 blocks.
    pub inode_count: Option<u64>,
    /// Fill every block of the volume with pseudorandom bytes at format time.
    ///
    /// This is the step that makes StegFS possible: used (encrypted) blocks
    /// become indistinguishable from never-used ones.  It is optional here
    /// because the plain baselines do not need it and it dominates format
    /// time for gigabyte volumes.
    pub fill_random: bool,
    /// Seed for the random fill and for allocation tie-breaking.
    pub seed: u64,
    /// Block allocation policy installed after formatting.
    pub policy: AllocPolicy,
    /// Blocks reserved for the write-ahead journal (0 = no journal, the
    /// pre-durability write-through behaviour).  A journaled volume must
    /// size the region larger than its largest single multi-block update;
    /// see `stegfs_journal` for the slot arithmetic.
    pub journal_blocks: u64,
}

impl Default for FormatOptions {
    fn default() -> Self {
        FormatOptions {
            inode_count: None,
            fill_random: false,
            seed: 0x0057_47f5_2003,
            policy: AllocPolicy::FirstFit,
            journal_blocks: 0,
        }
    }
}

impl FormatOptions {
    /// Options matching the StegFS paper: random fill on, random data-block
    /// placement available.
    pub fn stegfs_defaults() -> Self {
        FormatOptions {
            fill_random: true,
            ..FormatOptions::default()
        }
    }
}

/// Shared state of the background checkpoint daemon (see
/// [`PlainFs::start_checkpoint_daemon`]).
struct DaemonState {
    /// Set after every commit; the daemon clears it and checkpoints.
    dirty: bool,
    /// Ask the daemon to exit.
    stop: bool,
    /// On stop, run one final checkpoint first (clean shutdown) — `false`
    /// simulates a killed process (crash tests).
    drain: bool,
}

/// Handle to the running checkpoint daemon.
struct CheckpointDaemon {
    shared: Arc<(StdMutex<DaemonState>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// A mounted plain file system.
///
/// All operations take `&self`; see the module docs for the locking scheme.
pub struct PlainFs<D: BlockDevice> {
    dev: Arc<ObservedDevice<D>>,
    sb: Superblock,
    inodes: InodeTable,
    /// The sharded block bitmap — interior-locked per segment; see
    /// [`crate::bitmap`].
    bitmap: Bitmap,
    /// Placement meta state only (policy, cursor, RNG); block claims happen
    /// under the bitmap's segment locks.
    alloc: TimedMutex<Allocator>,
    namespace: TimedRwLock<()>,
    stripes: Vec<Mutex<()>>,
    /// One inode-table *block* packs several inodes, and writing one inode
    /// is a read-modify-write of its whole block — two inodes of the same
    /// table block live on different content stripes, so without this lock
    /// their concurrent updates would overwrite each other.  Striped by
    /// table-block index; innermost of the file-system locks (wraps only
    /// the device transfer).
    itable_stripes: Vec<Mutex<()>>,
    /// The write-ahead journal, when the volume was formatted with one.
    /// Every mutating operation then runs as an [`FsTxn`] and becomes
    /// crash-atomic; see [`crate::txn`] for the protocol.  Behind an `Arc`
    /// so the checkpoint daemon can hold it across threads.
    journal: Option<Arc<Journal>>,
    /// Background checkpoint daemon, when started (see
    /// [`Self::start_checkpoint_daemon`]).
    checkpoint: StdMutex<Option<CheckpointDaemon>>,
    /// Stall-watchdog gauges (registry handle after [`Self::attach_obs`];
    /// a detached disabled instance before).
    watchdog: Arc<WatchdogStats>,
}

/// Fast non-cryptographic fill used to write "randomly generated patterns"
/// into every block at format time (§3.1).  Indistinguishability from AES
/// ciphertext is a modelling assumption documented in DESIGN.md; the fill
/// only needs to look uniform, not be cryptographically strong.
fn fill_pseudorandom(buf: &mut [u8], mut state: u64) {
    if state == 0 {
        state = 0x9e37_79b9_7f4a_7c15;
    }
    for chunk in buf.chunks_mut(8) {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let value = state.wrapping_mul(0x2545_f491_4f6c_dd1d).to_le_bytes();
        let n = chunk.len();
        chunk.copy_from_slice(&value[..n]);
    }
}

impl<D: BlockDevice> PlainFs<D> {
    // ------------------------------------------------------------------
    // Format / mount
    // ------------------------------------------------------------------

    fn assemble(
        dev: D,
        sb: Superblock,
        bitmap: Bitmap,
        policy: AllocPolicy,
        seed: u64,
        journal: Option<Journal>,
    ) -> Self {
        let seed_bytes = seed.to_be_bytes();
        PlainFs {
            alloc: TimedMutex::new(Allocator::new(
                policy,
                sb.data_start,
                sb.total_blocks,
                &seed_bytes,
            )),
            bitmap,
            dev: Arc::new(ObservedDevice::new(dev)),
            inodes: InodeTable::new(sb.clone()),
            sb,
            namespace: TimedRwLock::new(()),
            stripes: (0..STRIPE_COUNT).map(|_| Mutex::new(())).collect(),
            itable_stripes: (0..STRIPE_COUNT).map(|_| Mutex::new(())).collect(),
            journal: journal.map(Arc::new),
            checkpoint: StdMutex::new(None),
            watchdog: Arc::new(WatchdogStats::new(false)),
        }
    }

    fn journal_geometry(sb: &Superblock) -> JournalGeometry {
        JournalGeometry {
            start: sb.journal_start,
            blocks: sb.journal_blocks,
            block_size: sb.block_size as usize,
        }
    }

    /// Format `dev` and return the mounted file system.
    pub fn format(dev: D, opts: FormatOptions) -> FsResult<Self> {
        let block_size = dev.block_size() as u32;
        let total_blocks = dev.total_blocks();
        let inode_count = opts
            .inode_count
            .unwrap_or_else(|| (total_blocks / 16).max(64));
        let mut sb =
            Superblock::compute(block_size, total_blocks, inode_count, opts.journal_blocks)?;
        // The journal salt is volume-public (it only buys uniformity, not
        // secrecy — see the journal crate's docs); derive it from the format
        // seed so formatting is deterministic.
        sb.journal_salt = opts.seed.rotate_left(17) ^ 0x6a6f_7572_6e61_6c21;

        // Optionally fill the whole volume with pseudorandom patterns.
        if opts.fill_random {
            let mut buf = vec![0u8; block_size as usize];
            for b in 0..total_blocks {
                fill_pseudorandom(&mut buf, opts.seed ^ b.wrapping_mul(0x9e37_79b9));
                dev.write_block(b, &buf)?;
            }
        }

        // Superblock.
        dev.write_block(0, &sb.serialize(block_size as usize))?;

        // Fresh bitmap with the metadata region marked allocated.
        let bitmap = Bitmap::new(&sb);
        for b in 0..sb.data_start {
            bitmap.allocate(b)?;
        }

        // Zero the bitmap region and the inode table.  Even when the rest of
        // the volume is random fill, these structures must parse (the bitmap
        // blocks untouched by the allocations above would otherwise still
        // hold random bytes on disk and corrupt a later mount).
        let zero = vec![0u8; block_size as usize];
        for b in 0..sb.bitmap_blocks {
            dev.write_block(sb.bitmap_start + b, &zero)?;
        }
        for b in 0..sb.inode_table_blocks {
            dev.write_block(sb.inode_table_start + b, &zero)?;
        }
        // The journal salt derives deterministically from the seed, so a
        // reused device could hold old transactions that still decode under
        // this volume's journal key — and the first mount would replay them
        // over the fresh volume.  The random fill above already scrubbed the
        // region; without it, scrub explicitly.
        if sb.journal_blocks > 0 && !opts.fill_random {
            for b in sb.journal_start..sb.journal_start + sb.journal_blocks {
                dev.write_block(b, &zero)?;
            }
        }

        // An initial anchor pair declares the (empty) journal over the
        // freshly scrubbed ring.
        let journal = if sb.journal_blocks > 0 {
            Some(
                Journal::format(Self::journal_geometry(&sb), sb.journal_salt, &dev)
                    .map_err(FsError::from)?,
            )
        } else {
            None
        };

        let root_inode = sb.root_inode;
        let fs = Self::assemble(dev, sb, bitmap, opts.policy, opts.seed, journal);

        // Root directory: inode 0, initially empty.
        let root = Inode::empty(FileKind::Directory);
        fs.write_inode(root_inode, &root)?;
        fs.sync()?;
        Ok(fs)
    }

    /// Mount an already-formatted volume.
    ///
    /// On a journaled volume this **replays** first: committed transactions
    /// that never fully reached their home locations are redone, torn or
    /// uncommitted ones are discarded — and only then are the bitmap and
    /// directory structures trusted.  Replay needs no user keys (hidden
    /// payloads were journaled as ciphertext), so mounting after a crash
    /// leaks nothing about hidden objects.
    pub fn mount(dev: D, policy: AllocPolicy, seed: u64) -> FsResult<Self> {
        let mut sb_buf = vec![0u8; dev.block_size()];
        dev.read_block(0, &mut sb_buf)?;
        let sb = Superblock::deserialize(&sb_buf)?;
        if sb.block_size as usize != dev.block_size() || sb.total_blocks != dev.total_blocks() {
            return Err(FsError::Corrupt(format!(
                "superblock geometry ({} x {}) does not match device ({} x {})",
                sb.block_size,
                sb.total_blocks,
                dev.block_size(),
                dev.total_blocks()
            )));
        }
        let journal = if sb.journal_blocks > 0 {
            let journal = Journal::open(Self::journal_geometry(&sb), sb.journal_salt)
                .map_err(FsError::from)?;
            journal.replay(&dev).map_err(FsError::from)?;
            Some(journal)
        } else {
            None
        };
        let bitmap = Bitmap::load(&sb, &dev)?;
        Ok(Self::assemble(dev, sb, bitmap, policy, seed, journal))
    }

    /// Flush the bitmap and the device; on a journaled volume this is also
    /// the checkpoint — after `sync` returns, every committed update is in
    /// place on stable storage and a crash replays nothing.
    pub fn sync(&self) -> FsResult<()> {
        self.bitmap.flush(&*self.dev)?;
        match &self.journal {
            Some(journal) => journal.sync(&*self.dev).map_err(FsError::from)?,
            None => self.dev.flush()?,
        }
        Ok(())
    }

    /// Durability barrier without a checkpoint: on a journaled volume,
    /// block until every transaction committed so far is crash-durable
    /// (their journal records are on stable storage; replay redoes any
    /// whose home writes were in flight) **without** advancing the tail,
    /// writing an anchor or flushing the bitmap — one group flush instead
    /// of a full [`Self::sync`].  On an unjournaled volume writes go
    /// straight to their home locations, so the barrier degrades to the
    /// full flush that `sync` would do.
    pub fn flush_barrier(&self) -> FsResult<()> {
        match &self.journal {
            Some(journal) => journal.flush_barrier(&*self.dev).map_err(FsError::from),
            None => {
                self.bitmap.flush(&*self.dev)?;
                Ok(self.dev.flush()?)
            }
        }
    }

    /// True when the volume carries a write-ahead journal (mutating
    /// operations are then crash-atomic transactions).
    pub fn journaled(&self) -> bool {
        self.journal.is_some()
    }

    /// Begin a transaction.  On an unjournaled volume the returned
    /// transaction is a transparent write-through shim, so callers use one
    /// code path for both modes.
    pub fn begin_txn(&self) -> FsTxn<'_, D> {
        FsTxn::new(self, self.journal.is_some())
    }

    // ------------------------------------------------------------------
    // Transaction plumbing (used by crate::txn)
    // ------------------------------------------------------------------

    pub(crate) fn journal_ref(&self) -> Option<&Journal> {
        self.journal.as_deref()
    }

    /// `(absolute table block, byte offset)` of inode `id`.
    pub(crate) fn inode_location(&self, id: InodeId) -> FsResult<(u64, usize)> {
        self.inodes.location(id)
    }

    /// Lock the inode-table stripes covering `abs_blocks` (absolute table
    /// block numbers), in ascending stripe order, deduplicated.
    pub(crate) fn lock_itable_stripes(
        &self,
        abs_blocks: impl Iterator<Item = u64>,
    ) -> Vec<MutexGuard<'_, ()>> {
        let mut idx: Vec<usize> = abs_blocks
            .map(|b| ((b - self.sb.inode_table_start) as usize) % STRIPE_COUNT)
            .collect();
        idx.sort_unstable();
        idx.dedup();
        idx.into_iter()
            .map(|i| self.itable_stripes[i].lock())
            .collect()
    }

    /// The sharded bitmap (interior-locked; see [`crate::bitmap`]).  The
    /// transaction layer snapshots through
    /// [`Bitmap::lock_blocks`][crate::bitmap::Bitmap::lock_blocks].
    pub(crate) fn bitmap(&self) -> &Bitmap {
        &self.bitmap
    }

    /// Re-serialise the **current** in-memory state of the given bitmap
    /// blocks (region indices) to the device, under their covering bitmap
    /// segment locks.
    ///
    /// The journal apply path calls this after applying a transaction's
    /// staged images: concurrent commits apply their snapshots of a shared
    /// bitmap block in arbitrary order, so the last word on the device must
    /// come from the live bitmap (always newest truth, serialised by the
    /// segment locks — held *across* the device writes so no later update
    /// can be overwritten by this serialisation going down stale), never
    /// from a possibly-stale snapshot.
    pub(crate) fn rewrite_bitmap_blocks(
        &self,
        indices: &std::collections::BTreeSet<u64>,
    ) -> FsResult<()> {
        let guard = self.bitmap.lock_blocks(indices);
        for &idx in indices {
            let data = guard.serialize_block(idx);
            self.dev.write_block(guard.device_block_of(idx), &data)?;
        }
        Ok(())
    }

    pub(crate) fn read_inode_raw(&self, id: InodeId) -> FsResult<Inode> {
        self.read_inode(id)
    }

    pub(crate) fn write_inode_direct(&self, id: InodeId, inode: &Inode) -> FsResult<()> {
        self.write_inode(id, inode)
    }

    pub(crate) fn allocate_file_blocks_raw(&self, count: u64) -> FsResult<Vec<u64>> {
        let _s = span::span(span::Phase::AllocClaim);
        self.alloc.lock().allocate_file(&self.bitmap, count)
    }

    pub(crate) fn allocate_one_raw(&self) -> FsResult<u64> {
        let _s = span::span(span::Phase::AllocClaim);
        self.alloc_one()
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// The volume's superblock.
    pub fn superblock(&self) -> &Superblock {
        &self.sb
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> usize {
        self.sb.block_size as usize
    }

    /// Number of free blocks in the data region.
    pub fn free_data_blocks(&self) -> u64 {
        self.bitmap
            .free_in_region(self.sb.data_start, self.sb.total_blocks)
    }

    /// Number of blocks in the data region (free or not).
    pub fn data_blocks(&self) -> u64 {
        self.sb.data_blocks()
    }

    /// True if `block` is currently marked allocated in the bitmap.
    pub fn is_block_allocated(&self, block: u64) -> bool {
        self.bitmap.is_allocated(block)
    }

    /// Change the data-block allocation policy.
    pub fn set_alloc_policy(&self, policy: AllocPolicy) {
        self.alloc.lock().set_policy(policy);
    }

    /// Mutable access to the underlying device (used by the timing harness;
    /// requires exclusive ownership, which is why this one keeps `&mut` —
    /// and why it is unavailable while the checkpoint daemon holds a device
    /// handle).
    pub fn device_mut(&mut self) -> &mut D {
        Arc::get_mut(&mut self.dev)
            .expect("device_mut requires exclusive ownership (checkpoint daemon running?)")
            .inner_mut()
    }

    /// Shared access to the underlying device.
    pub fn device(&self) -> &D {
        self.dev.inner()
    }

    /// The metrics-instrumented device wrapper itself.  The transaction
    /// layer hands this to the journal so journal I/O is metered like every
    /// other device access.
    pub(crate) fn observed_device(&self) -> &ObservedDevice<D> {
        &self.dev
    }

    /// Commit-path pressure valve: when the ring is nearly full
    /// ([`CHECKPOINT_STEAL_PERMILLE`]), the committer checkpoints the
    /// journal itself instead of waiting for the daemon's next tick and
    /// then stalling inside reclaim.  Errors are absorbed exactly as on the
    /// daemon path (the commit that follows surfaces its own).
    pub(crate) fn maybe_steal_checkpoint(&self) {
        let Some(journal) = &self.journal else {
            return;
        };
        if journal.occupancy_permille() >= CHECKPOINT_STEAL_PERMILLE
            && journal.sync(&*self.dev).is_ok()
        {
            self.watchdog.note_steal();
        }
    }

    /// Wire this file system into a volume-wide observability registry:
    /// the device wrapper, the allocator meta mutex, the bitmap segment
    /// locks (`fs.alloc.<shard>`), the namespace lock, and the journal all
    /// start reporting into `obs`.  Called once during volume assembly,
    /// before the file system is shared (and before the checkpoint daemon
    /// starts — both hand out `Arc` clones this method must still be able
    /// to mutate through).
    pub fn attach_obs(&mut self, obs: &Arc<Obs>) {
        Arc::get_mut(&mut self.dev)
            .expect("attach_obs after the device was shared")
            .set_stats(obs.device.clone(), obs.is_enabled());
        self.alloc.set_stats(obs.alloc_lock.clone());
        self.bitmap.set_shard_stats(&obs.alloc_shards);
        self.namespace.set_stats(obs.namespace_lock.clone());
        if let Some(journal) = &mut self.journal {
            Arc::get_mut(journal)
                .expect("attach_obs after the journal was shared")
                .attach_obs(obs);
        }
        self.watchdog = obs.watchdog.clone();
    }

    /// Start the background checkpoint daemon: a thread that advances the
    /// journal tail and anchor (a full [`Journal::sync`]) off the commit
    /// path whenever commits have happened, so foreground writers rarely
    /// pay for ring reclamation or anchor writes themselves.  No-op on an
    /// unjournaled volume or when already running.  Call after
    /// [`Self::attach_obs`]; stop via [`Self::stop_checkpoint_daemon`]
    /// (unmount drains and stops automatically).
    pub fn start_checkpoint_daemon(&mut self)
    where
        D: Send + Sync + 'static,
    {
        let Some(journal) = self.journal.clone() else {
            return;
        };
        let mut slot = self.checkpoint.lock().expect("checkpoint lock");
        if slot.is_some() {
            return;
        }
        let dev = Arc::clone(&self.dev);
        let watchdog = Arc::clone(&self.watchdog);
        let shared = Arc::new((
            StdMutex::new(DaemonState {
                dirty: false,
                stop: false,
                drain: true,
            }),
            Condvar::new(),
        ));
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::spawn(move || {
            let (state, cv) = &*thread_shared;
            loop {
                // Sample ring pressure before deciding how long to sleep:
                // the wake interval adapts to occupancy so a filling ring
                // gets checkpointed before committers hit reclaim.
                let occupancy = journal.occupancy_permille();
                let stalled = occupancy >= stegfs_obs::STALL_OCCUPANCY_PERMILLE
                    || journal.gate_stall_max_ns() >= stegfs_obs::GATE_STALL_THRESHOLD_NS;
                watchdog.sample(occupancy, stalled);
                let mut guard = state.lock().expect("daemon state");
                if !guard.dirty && !guard.stop {
                    // Timed wait doubles as a liveness tick: if the file
                    // system was dropped without unmount (crash tests), the
                    // daemon is the journal's last holder and exits.
                    guard = cv
                        .wait_timeout(guard, checkpoint_tick(occupancy))
                        .expect("daemon state")
                        .0;
                }
                let stop = guard.stop;
                let drain = guard.drain;
                let dirty = std::mem::replace(&mut guard.dirty, false);
                drop(guard);
                if stop {
                    if drain && dirty {
                        // Shutdown drain: one final checkpoint so unmount
                        // hands back a volume that replays nothing.
                        if journal.sync(&*dev).is_ok() {
                            watchdog.heartbeat();
                        }
                    }
                    return;
                }
                if dirty {
                    // Checkpoint errors are absorbed: the journal itself is
                    // still correct (commits replay at next mount); the
                    // foreground sees the error on its own explicit sync.
                    if journal.sync(&*dev).is_ok() {
                        watchdog.heartbeat();
                    }
                } else if Arc::strong_count(&journal) == 1 {
                    // Orphaned (fs dropped without unmount): exit without
                    // touching the device again.
                    return;
                }
            }
        });
        *slot = Some(CheckpointDaemon {
            shared,
            handle: Some(handle),
        });
    }

    /// True when the background checkpoint daemon is running.
    pub fn checkpoint_daemon_running(&self) -> bool {
        self.checkpoint.lock().expect("checkpoint lock").is_some()
    }

    /// Stop the checkpoint daemon.  With `drain`, the daemon runs one final
    /// checkpoint before exiting (clean shutdown); without, it exits
    /// immediately — the crash tests use this to model a killed process
    /// with a checkpoint still in flight.
    pub fn stop_checkpoint_daemon(&self, drain: bool) {
        let daemon = self.checkpoint.lock().expect("checkpoint lock").take();
        if let Some(mut daemon) = daemon {
            {
                let (state, cv) = &*daemon.shared;
                let mut guard = state.lock().expect("daemon state");
                guard.stop = true;
                guard.drain = drain;
                cv.notify_one();
            }
            if let Some(handle) = daemon.handle.take() {
                let _ = handle.join();
            }
        }
    }

    /// Tell the checkpoint daemon a commit happened (cheap flag + notify;
    /// no-op when the daemon is not running).
    pub(crate) fn notify_checkpoint(&self) {
        if let Ok(slot) = self.checkpoint.lock() {
            if let Some(daemon) = &*slot {
                let (state, cv) = &*daemon.shared;
                if let Ok(mut guard) = state.lock() {
                    guard.dirty = true;
                    cv.notify_one();
                }
            }
        }
    }

    /// Consume the file system, returning the device (after draining the
    /// checkpoint daemon and a final sync).
    pub fn unmount(self) -> FsResult<D> {
        self.stop_checkpoint_daemon(true);
        self.sync()?;
        let dev = Arc::try_unwrap(self.dev)
            .map_err(|_| FsError::Corrupt("device still shared at unmount".into()))?;
        Ok(dev.into_inner())
    }

    // ------------------------------------------------------------------
    // Raw block interface for the StegFS layer
    // ------------------------------------------------------------------

    /// Allocate one free data-region block chosen uniformly at random and
    /// mark it in the bitmap, without recording it in any inode.  This is the
    /// primitive hidden files are built from.
    ///
    /// The hot path of hidden writes: the placement randomness is drawn
    /// under the (tiny) allocator meta lock, then the claim itself runs
    /// against the bitmap's segment locks — concurrent hidden writers
    /// placing blocks in different segments proceed fully in parallel.
    pub fn allocate_random_block(&self) -> FsResult<u64> {
        let _s = span::span(span::Phase::AllocClaim);
        let draw = self.alloc.lock().draw_probes();
        self.bitmap
            .claim_random(
                &draw.probes,
                draw.origin,
                self.sb.data_start,
                self.sb.total_blocks,
            )
            .ok_or(FsError::NoSpace)
    }

    /// Mark a specific data-region block allocated (used when the keyed
    /// locator has chosen a header position, and by recovery).
    pub fn allocate_specific_block(&self, block: u64) -> FsResult<()> {
        if !self.sb.in_data_region(block) {
            return Err(FsError::Corrupt(format!(
                "block {block} outside the data region"
            )));
        }
        self.bitmap.allocate(block)
    }

    /// Atomically check-and-allocate a specific data-region block.  Returns
    /// `Ok(false)` — instead of the corruption error of
    /// [`Self::allocate_specific_block`] — when the block is already taken,
    /// which is how concurrent hidden-object creators resolve losing the race
    /// for a header slot: they simply probe on.  Touches only the block's
    /// bitmap segment, never the allocator meta lock.
    pub fn try_allocate_specific_block(&self, block: u64) -> FsResult<bool> {
        if !self.sb.in_data_region(block) {
            return Err(FsError::Corrupt(format!(
                "block {block} outside the data region"
            )));
        }
        let _s = span::span(span::Phase::AllocClaim);
        self.bitmap.try_allocate(block)
    }

    /// Release a block that was allocated through the raw interface.
    pub fn free_raw_block(&self, block: u64) -> FsResult<()> {
        if !self.sb.in_data_region(block) {
            return Err(FsError::Corrupt(format!(
                "block {block} outside the data region"
            )));
        }
        self.bitmap.free(block)
    }

    /// Read a raw block (any region).
    pub fn read_raw_block(&self, block: u64) -> FsResult<Vec<u8>> {
        let mut buf = vec![0u8; self.block_size()];
        self.dev.read_block(block, &mut buf)?;
        Ok(buf)
    }

    /// Write a raw block (any region).
    pub fn write_raw_block(&self, block: u64, data: &[u8]) -> FsResult<()> {
        self.dev.write_block(block, data)?;
        Ok(())
    }

    /// Read a whole extent list in **one batched device submission**,
    /// returning the concatenated block contents in `blocks` order.  This is
    /// the raw primitive the hidden-object layer reads its extents through.
    pub fn read_raw_blocks(&self, blocks: &[u64]) -> FsResult<Vec<u8>> {
        let mut buf = vec![0u8; blocks.len() * self.block_size()];
        self.read_raw_blocks_into(blocks, &mut buf)?;
        Ok(buf)
    }

    /// As [`Self::read_raw_blocks`], but into a caller-supplied buffer of
    /// exactly `blocks.len() * block_size` bytes — the allocation-free
    /// variant the hidden layer's pooled scratch buffers use.
    pub fn read_raw_blocks_into(&self, blocks: &[u64], buf: &mut [u8]) -> FsResult<()> {
        if blocks.is_empty() {
            return Ok(());
        }
        self.dev.read_blocks(blocks, buf)?;
        Ok(())
    }

    /// Write a whole extent list in **one batched device submission**.
    /// `data` is the concatenation of the block contents in `blocks` order,
    /// so `data.len()` must equal `blocks.len() * block_size`.
    pub fn write_raw_blocks(&self, blocks: &[u64], data: &[u8]) -> FsResult<()> {
        if blocks.is_empty() && data.is_empty() {
            return Ok(());
        }
        self.dev.write_blocks(blocks, data)?;
        Ok(())
    }

    /// Every block referenced by the central directory (inode-table metadata
    /// is not included): file data blocks, directory data blocks, and
    /// indirect-pointer blocks.  Backup uses this to decide which allocated
    /// blocks must be imaged raw (those *not* in this set).
    pub fn plain_object_blocks(&self) -> FsResult<Vec<u64>> {
        // The namespace read guard pins the *set* of allocated inodes
        // (create/delete need it exclusively); each inode's stripe then pins
        // its *block map*, so a concurrent content rewrite cannot free a
        // pointer block out from under the walk.  Lock order namespace <
        // stripe matches delete.
        let _ns = self.namespace.read();
        let mut all = Vec::new();
        let inodes = self.scan_allocated_inodes()?;
        for (id, _) in inodes {
            let _stripe = self.stripe(id).lock();
            // Re-read under the stripe: the scanned copy may predate a
            // rewrite that had not yet published its new block map.
            let inode = self.read_inode(id)?;
            if inode.kind == FileKind::Free {
                continue;
            }
            let (data, meta) = self.collect_blocks(&inode)?;
            all.extend(data);
            all.extend(meta);
        }
        all.sort_unstable();
        all.dedup();
        Ok(all)
    }

    // ------------------------------------------------------------------
    // Device / inode-table plumbing (the device locks internally; callers
    // hold whatever namespace or stripe guard the operation requires)
    // ------------------------------------------------------------------

    fn read_inode(&self, id: InodeId) -> FsResult<Inode> {
        self.inodes.read(&*self.dev, id)
    }

    fn write_inode(&self, id: InodeId, inode: &Inode) -> FsResult<()> {
        let table_block = id / self.sb.inodes_per_block();
        let _tb = self.itable_stripes[(table_block as usize) % STRIPE_COUNT].lock();
        self.inodes.write(&*self.dev, id, inode)
    }

    fn find_free_inode(&self) -> FsResult<Option<InodeId>> {
        self.inodes.find_free(&*self.dev)
    }

    fn scan_allocated_inodes(&self) -> FsResult<Vec<(InodeId, Inode)>> {
        self.inodes.scan_allocated(&*self.dev)
    }

    fn stripe(&self, id: InodeId) -> &Mutex<()> {
        &self.stripes[(id as usize) % STRIPE_COUNT]
    }

    // ------------------------------------------------------------------
    // Path-based operations
    // ------------------------------------------------------------------

    /// Walk `path` from the root.  Caller holds the namespace lock.
    fn resolve(&self, path: &str) -> FsResult<(InodeId, Inode)> {
        let comps = split_path(path)?;
        let mut id = self.sb.root_inode;
        let mut inode = self.read_inode(id)?;
        for comp in comps {
            if inode.kind != FileKind::Directory {
                return Err(FsError::NotADirectory(path.to_string()));
            }
            let entries = self.read_dir_inode(&inode)?;
            match entries.iter().find(|e| e.name == comp) {
                Some(entry) => {
                    id = entry.inode;
                    inode = self.read_inode(id)?;
                }
                None => return Err(FsError::NotFound(path.to_string())),
            }
        }
        Ok((id, inode))
    }

    /// Resolve the parent directory of `path`.  Caller holds the namespace
    /// lock.
    fn resolve_parent(&self, path: &str) -> FsResult<(InodeId, Inode, String)> {
        let (parent_comps, name) = split_parent(path)?;
        let parent_path = if parent_comps.is_empty() {
            "/".to_string()
        } else {
            format!("/{}", parent_comps.join("/"))
        };
        let (pid, pinode) = self.resolve(&parent_path)?;
        if pinode.kind != FileKind::Directory {
            return Err(FsError::NotADirectory(parent_path));
        }
        Ok((pid, pinode, name.to_string()))
    }

    /// True if `path` exists.
    pub fn exists(&self, path: &str) -> FsResult<bool> {
        let _ns = self.namespace.read();
        match self.resolve(path) {
            Ok(_) => Ok(true),
            Err(e) if e.is_not_found() => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Kind and size of the object at `path`.
    pub fn stat(&self, path: &str) -> FsResult<(FileKind, u64)> {
        let _ns = self.namespace.read();
        let (_, inode) = self.resolve(path)?;
        Ok((inode.kind, inode.size))
    }

    /// List the entries of the directory at `path`.
    pub fn list_dir(&self, path: &str) -> FsResult<Vec<DirEntry>> {
        let _ns = self.namespace.read();
        let (_, inode) = self.resolve(path)?;
        if inode.kind != FileKind::Directory {
            return Err(FsError::NotADirectory(path.to_string()));
        }
        self.read_dir_inode(&inode)
    }

    /// Create an empty directory at `path`.
    pub fn create_dir(&self, path: &str) -> FsResult<InodeId> {
        self.create_object(path, FileKind::Directory)
    }

    /// Create an empty regular file at `path`.
    pub fn create_file(&self, path: &str) -> FsResult<InodeId> {
        self.create_object(path, FileKind::File)
    }

    fn create_object(&self, path: &str, kind: FileKind) -> FsResult<InodeId> {
        let _ns = self.namespace.write();
        let (pid, pinode, name) = self.resolve_parent(path)?;
        let entries = self.read_dir_inode(&pinode)?;
        if entries.iter().any(|e| e.name == name) {
            return Err(FsError::AlreadyExists(path.to_string()));
        }
        let id = self.find_free_inode()?.ok_or(FsError::NoSpace)?;
        // One transaction covers the new inode and the parent-directory
        // update, so a crash can never publish a directory entry whose inode
        // slot is still free (or vice versa — an orphan inode slot is the
        // worst a torn create can leak, and only on unjournaled volumes).
        let mut txn = self.begin_txn();
        txn.set_inode(id, &Inode::empty(kind))?;

        let mut entries = entries;
        entries.push(DirEntry {
            name,
            inode: id,
            kind,
        });
        self.write_dir_inode(&mut txn, pid, &entries)?;
        txn.commit()?;
        Ok(id)
    }

    /// Resolve the regular file at `path`, then run `f` holding *both* the
    /// namespace read guard and the inode's stripe.  Keeping the namespace
    /// guard across the stripe acquisition pins the path→inode binding:
    /// delete (and create, which can recycle a freed inode id for another
    /// path) needs the namespace lock exclusively, so the operation can
    /// never land on an unrelated file that inherited the id.  Acquiring a
    /// stripe while holding the namespace guard matches delete's order
    /// (`namespace < stripe`), so no cycle arises.
    fn with_file_at_path<R>(
        &self,
        path: &str,
        f: impl FnOnce(InodeId, &Inode) -> FsResult<R>,
    ) -> FsResult<R> {
        let _ns = self.namespace.read();
        let (id, inode) = self.resolve(path)?;
        if inode.kind != FileKind::File {
            return Err(FsError::IsADirectory(path.to_string()));
        }
        let _stripe = self.stripe(id).lock();
        f(id, &inode)
    }

    /// Write `data` as the complete contents of the file at `path`, creating
    /// the file if it does not exist and truncating it if it does.  Loops
    /// because a concurrent creator may win the create race, in which case
    /// the fresh `AlreadyExists` simply means the file is now resolvable.
    pub fn write_file(&self, path: &str, data: &[u8]) -> FsResult<()> {
        loop {
            match self.with_file_at_path(path, |id, _| {
                let mut txn = self.begin_txn();
                self.write_inode_contents(&mut txn, id, data)?;
                txn.commit()
            }) {
                Err(e) if e.is_not_found() => {}
                other => return other,
            }
            match self.create_object(path, FileKind::File) {
                Ok(_) | Err(FsError::AlreadyExists(_)) => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Read the complete contents of the file at `path`.
    pub fn read_file(&self, path: &str) -> FsResult<Vec<u8>> {
        self.with_file_at_path(path, |_, inode| self.read_inode_contents(inode))
    }

    /// Read `len` bytes starting at `offset` from the file at `path`.
    /// Reading past the end returns the available prefix.
    pub fn read_file_range(&self, path: &str, offset: u64, len: usize) -> FsResult<Vec<u8>> {
        self.with_file_at_path(path, |_, inode| self.read_range_of(inode, offset, len))
    }

    /// Overwrite part of an existing file in place.  The range
    /// `[offset, offset + data.len())` must lie within the file's current
    /// size; in-place updates never move or reallocate blocks, which is what
    /// the block-interleaved multi-user experiments rely on.
    pub fn write_file_range(&self, path: &str, offset: u64, data: &[u8]) -> FsResult<()> {
        if data.is_empty() {
            return Ok(());
        }
        self.with_file_at_path(path, |_, inode| {
            let mut txn = self.begin_txn();
            self.write_range_of(&mut txn, inode, offset, data)?;
            txn.commit()
        })
    }

    // ------------------------------------------------------------------
    // Inode-handle operations
    //
    // A path re-resolves on every call, so an open file tracked by path
    // silently retargets when something renames or replaces it.  Layers that
    // hold files open across operations (the VFS open-file table) pin the
    // inode id instead: it survives renames and goes cleanly stale (the slot
    // reads as `Free`) on delete.
    // ------------------------------------------------------------------

    /// Resolve the regular file at `path` to its inode id.
    pub fn resolve_file(&self, path: &str) -> FsResult<InodeId> {
        let _ns = self.namespace.read();
        let (id, inode) = self.resolve(path)?;
        if inode.kind != FileKind::File {
            return Err(FsError::IsADirectory(path.to_string()));
        }
        Ok(id)
    }

    fn load_file_inode(&self, id: InodeId) -> FsResult<Inode> {
        let inode = self.read_inode(id)?;
        match inode.kind {
            FileKind::File => Ok(inode),
            FileKind::Directory => Err(FsError::IsADirectory(format!("inode {id}"))),
            // A freed slot means the file was deleted out from under the
            // handle; report the ordinary not-found.
            FileKind::Free => Err(FsError::NotFound(format!("inode {id}"))),
        }
    }

    /// Size in bytes of the regular file behind `id`.
    pub fn inode_file_size(&self, id: InodeId) -> FsResult<u64> {
        Ok(self.load_file_inode(id)?.size)
    }

    /// Read `len` bytes at `offset` from the regular file behind `id`.
    pub fn read_inode_range(&self, id: InodeId, offset: u64, len: usize) -> FsResult<Vec<u8>> {
        let _stripe = self.stripe(id).lock();
        let inode = self.load_file_inode(id)?;
        self.read_range_of(&inode, offset, len)
    }

    /// Overwrite part of the regular file behind `id` in place (the range
    /// must lie within the current size).
    pub fn write_inode_range(&self, id: InodeId, offset: u64, data: &[u8]) -> FsResult<()> {
        if data.is_empty() {
            return Ok(());
        }
        let _stripe = self.stripe(id).lock();
        let inode = self.load_file_inode(id)?;
        let mut txn = self.begin_txn();
        self.write_range_of(&mut txn, &inode, offset, data)?;
        txn.commit()
    }

    /// Replace the whole contents of the regular file behind `id`.
    pub fn write_inode_file(&self, id: InodeId, data: &[u8]) -> FsResult<()> {
        let _stripe = self.stripe(id).lock();
        self.load_file_inode(id)?;
        let mut txn = self.begin_txn();
        self.write_inode_contents(&mut txn, id, data)?;
        txn.commit()
    }

    fn read_range_of(&self, inode: &Inode, offset: u64, len: usize) -> FsResult<Vec<u8>> {
        if len == 0 || offset >= inode.size {
            return Ok(Vec::new());
        }
        let end = (offset + len as u64).min(inode.size);
        let bs = self.block_size() as u64;
        let first_block = (offset / bs) as usize;
        let last_block = ((end - 1) / bs) as usize;
        let blocks = self.collect_blocks(inode)?.0;
        let span = blocks
            .get(first_block..=last_block)
            .ok_or_else(|| FsError::Corrupt("file shorter than its size field".into()))?;
        // The whole extent goes down as one batched submission.
        let raw = self.read_raw_blocks(span)?;
        let from = (offset - first_block as u64 * bs) as usize;
        let to = (end - first_block as u64 * bs) as usize;
        Ok(raw[from..to].to_vec())
    }

    fn write_range_of(
        &self,
        txn: &mut FsTxn<'_, D>,
        inode: &Inode,
        offset: u64,
        data: &[u8],
    ) -> FsResult<()> {
        let end = offset + data.len() as u64;
        if end > inode.size {
            return Err(FsError::FileTooLarge {
                requested: end,
                maximum: inode.size,
            });
        }
        let bs = self.block_size() as u64;
        let (blocks, _) = self.collect_blocks(inode)?;
        let first = (offset / bs) as usize;
        let last = ((end - 1) / bs) as usize;
        let span = blocks
            .get(first..=last)
            .ok_or_else(|| FsError::Corrupt("file shorter than its size field".into()))?;
        let span_start = first as u64 * bs;
        let bs = bs as usize;

        // Read-modify-write at batch granularity: only a partial head or
        // tail block needs its old contents (see [`crate::rmw`]), and those
        // edge reads share one submission; the patched span then goes down
        // as one submission (or stages into the journal transaction — an
        // in-place patch of live data is exactly the write a crash must not
        // tear).
        let plan = crate::rmw::plan(span, offset, end, span_start, bs);
        let edge_data = txn.read_raw_blocks(&plan.edges)?;
        let mut buf = vec![0u8; span.len() * bs];
        plan.seed_edges(&edge_data, &mut buf, bs);
        let from = (offset - span_start) as usize;
        buf[from..from + data.len()].copy_from_slice(data);
        txn.write_raw_blocks(span, &buf)
    }

    /// Rename (or move) the object at `from` to `to`, both within the plain
    /// namespace.  The destination must not already exist; a directory cannot
    /// be moved into its own subtree.  Only directory entries change — the
    /// inode and all data blocks stay where they are.
    pub fn rename(&self, from: &str, to: &str) -> FsResult<()> {
        let _ns = self.namespace.write();
        let (id, inode) = self.resolve(from)?;
        if id == self.sb.root_inode {
            return Err(FsError::InvalidPath("cannot rename the root".into()));
        }
        match self.resolve(to) {
            Ok(_) => return Err(FsError::AlreadyExists(to.to_string())),
            Err(e) if e.is_not_found() => {}
            Err(e) => return Err(e),
        }
        let from_prefix = format!("{}/", from.trim_end_matches('/'));
        if inode.kind == FileKind::Directory && to.starts_with(&from_prefix) {
            return Err(FsError::InvalidPath(format!(
                "cannot move {from} into its own subtree"
            )));
        }
        let (new_pid, _, new_name) = self.resolve_parent(to)?;
        let (old_pid, old_pinode, old_name) = self.resolve_parent(from)?;

        if old_pid == new_pid {
            let mut entries = self.read_dir_inode(&old_pinode)?;
            let entry = entries
                .iter_mut()
                .find(|e| e.name == old_name)
                .ok_or_else(|| FsError::NotFound(from.to_string()))?;
            entry.name = new_name;
            let mut txn = self.begin_txn();
            self.write_dir_inode(&mut txn, old_pid, &entries)?;
            return txn.commit();
        }

        // Both directory updates share one transaction, so on a journaled
        // volume a crash can never leave the object linked twice or not at
        // all.  Unjournaled, link into the new parent first: a failure (e.g.
        // NoSpace while growing the directory) then leaves the object
        // reachable at its old path.
        let mut txn = self.begin_txn();
        let new_pinode = self.read_inode(new_pid)?;
        let mut new_entries = self.read_dir_inode(&new_pinode)?;
        new_entries.push(DirEntry {
            name: new_name,
            inode: id,
            kind: inode.kind,
        });
        self.write_dir_inode(&mut txn, new_pid, &new_entries)?;

        let mut old_entries = self.read_dir_inode(&old_pinode)?;
        old_entries.retain(|e| e.name != old_name);
        self.write_dir_inode(&mut txn, old_pid, &old_entries)?;
        txn.commit()
    }

    /// Delete the file or (empty) directory at `path`.
    pub fn delete(&self, path: &str) -> FsResult<()> {
        let _ns = self.namespace.write();
        let (id, inode) = self.resolve(path)?;
        if id == self.sb.root_inode {
            return Err(FsError::InvalidPath("cannot delete the root".into()));
        }
        if inode.kind == FileKind::Directory && !self.read_dir_inode(&inode)?.is_empty() {
            return Err(FsError::DirectoryNotEmpty(path.to_string()));
        }
        // Take the victim's stripe so an in-flight content operation on this
        // inode finishes before its blocks are freed (namespace writers may
        // take stripes; content ops never take the namespace lock, so the
        // order is acyclic).
        let _stripe = self.stripe(id).lock();
        // One transaction: the frees, the inode clear and the parent update
        // commit together (on a journaled volume the frees defer to commit,
        // so a crash mid-delete leaves the object whole).
        let mut txn = self.begin_txn();
        let (data, meta) = self.collect_blocks(&inode)?;
        for b in data.into_iter().chain(meta) {
            txn.free_block(b)?;
        }
        // Clear the inode and the parent entry.
        txn.set_inode(id, &Inode::empty(FileKind::Free))?;
        let (pid, pinode, name) = self.resolve_parent(path)?;
        let mut entries = self.read_dir_inode(&pinode)?;
        entries.retain(|e| e.name != name);
        self.write_dir_inode(&mut txn, pid, &entries)?;
        txn.commit()
    }

    /// Total bytes stored in plain files (not directories), used by the
    /// space-utilization experiments.
    pub fn total_plain_file_bytes(&self) -> FsResult<u64> {
        let _ns = self.namespace.read();
        let inodes = self.scan_allocated_inodes()?;
        Ok(inodes
            .iter()
            .filter(|(_, i)| i.kind == FileKind::File)
            .map(|(_, i)| i.size)
            .sum())
    }

    // ------------------------------------------------------------------
    // Inode-level plumbing
    // ------------------------------------------------------------------

    fn read_dir_inode(&self, inode: &Inode) -> FsResult<Vec<DirEntry>> {
        let raw = self.read_inode_contents(inode)?;
        decode_entries(&raw)
    }

    fn write_dir_inode(
        &self,
        txn: &mut FsTxn<'_, D>,
        id: InodeId,
        entries: &[DirEntry],
    ) -> FsResult<()> {
        self.write_inode_contents(txn, id, &encode_entries(entries))
    }

    /// Read a file's full contents: one chain walk for the block map, then
    /// one batched submission for every data block.
    fn read_inode_contents(&self, inode: &Inode) -> FsResult<Vec<u8>> {
        let (blocks, _) = self.collect_blocks(inode)?;
        let mut out = self.read_raw_blocks(&blocks)?;
        out.truncate(inode.size as usize);
        Ok(out)
    }

    /// Replace a file's contents: free old blocks, allocate new ones with the
    /// current policy, write the data, and rebuild the block map — all within
    /// the caller's transaction.
    ///
    /// Callers serialise per inode: path and handle writers hold the inode's
    /// stripe; directory writers hold the namespace lock exclusively.
    fn write_inode_contents(
        &self,
        txn: &mut FsTxn<'_, D>,
        id: InodeId,
        data: &[u8],
    ) -> FsResult<()> {
        let bs = self.block_size();
        let max = Inode::max_file_size(bs);
        if data.len() as u64 > max {
            return Err(FsError::FileTooLarge {
                requested: data.len() as u64,
                maximum: max,
            });
        }
        let old = txn.read_inode(id)?;
        if old.kind == FileKind::Free {
            return Err(FsError::NotFound(format!("inode {id}")));
        }
        let kind = old.kind;
        let (old_data, old_meta) = self.collect_blocks(&old)?;
        let count = (data.len() as u64).div_ceil(bs as u64);

        let blocks = if txn.journaled() {
            // Journaled: the old blocks stay allocated until the commit that
            // stops referencing them is durable, so the new blocks claim
            // disjoint space first and the frees defer (a rewrite briefly
            // needs both footprints — the price of never freeing blocks a
            // crash-surviving inode still points at).
            let blocks = txn.allocate_file_blocks(count)?;
            for b in old_data.into_iter().chain(old_meta) {
                txn.free_block(b)?;
            }
            blocks
        } else {
            // Write-through: free the old blocks first, then claim the new
            // set.  The inode's stripe already serialises rewrites of this
            // file, so the only interleaving a concurrent writer can see is
            // claiming a just-freed block — which is fine, it is free.
            // Freeing first keeps the old behaviour that rewriting a large
            // file does not need twice its footprint.
            for b in old_data.into_iter().chain(old_meta) {
                self.bitmap.free(b)?;
            }
            self.alloc.lock().allocate_file(&self.bitmap, count)?
        };
        // All data blocks go down in one batched submission (the zero tail
        // pads the final block).
        let mut padded = vec![0u8; blocks.len() * bs];
        padded[..data.len()].copy_from_slice(data);
        txn.write_raw_blocks(&blocks, &padded)?;

        let mut inode = Inode::empty(kind);
        inode.size = data.len() as u64;
        self.build_block_map(txn, &mut inode, &blocks)?;
        txn.set_inode(id, &inode)?;
        Ok(())
    }

    fn alloc_one(&self) -> FsResult<u64> {
        self.alloc.lock().allocate_one(&self.bitmap)
    }

    /// Build the direct/indirect block map of `inode` for the given data
    /// blocks, allocating pointer blocks as needed.
    fn build_block_map(
        &self,
        txn: &mut FsTxn<'_, D>,
        inode: &mut Inode,
        blocks: &[u64],
    ) -> FsResult<()> {
        let bs = self.block_size();
        let ptrs_per_block = bs / 8;

        for (i, &b) in blocks.iter().take(DIRECT_POINTERS).enumerate() {
            inode.direct[i] = b;
        }
        if blocks.len() <= DIRECT_POINTERS {
            return Ok(());
        }

        let rest = &blocks[DIRECT_POINTERS..];
        let (single, double_rest) = rest.split_at(rest.len().min(ptrs_per_block));

        // Single indirect block.
        let ind_block = txn.allocate_one()?;
        self.write_pointer_block(txn, ind_block, single)?;
        inode.indirect = ind_block;

        if double_rest.is_empty() {
            return Ok(());
        }

        // Double indirect: a block of pointers to pointer blocks.
        let mut level1 = Vec::new();
        for chunk in double_rest.chunks(ptrs_per_block) {
            let leaf = txn.allocate_one()?;
            self.write_pointer_block(txn, leaf, chunk)?;
            level1.push(leaf);
        }
        if level1.len() > ptrs_per_block {
            return Err(FsError::FileTooLarge {
                requested: blocks.len() as u64 * bs as u64,
                maximum: Inode::max_file_size(bs),
            });
        }
        let dbl = txn.allocate_one()?;
        self.write_pointer_block(txn, dbl, &level1)?;
        inode.double_indirect = dbl;
        Ok(())
    }

    fn write_pointer_block(
        &self,
        txn: &mut FsTxn<'_, D>,
        block: u64,
        pointers: &[u64],
    ) -> FsResult<()> {
        let bs = self.block_size();
        let mut buf = vec![0xffu8; bs]; // NO_BLOCK everywhere by default
        for (i, &p) in pointers.iter().enumerate() {
            buf[i * 8..i * 8 + 8].copy_from_slice(&p.to_be_bytes());
        }
        txn.write_raw_block(block, &buf)
    }

    fn read_pointer_block(&self, block: u64) -> FsResult<Vec<u64>> {
        let buf = self.read_raw_block(block)?;
        Ok(buf
            .chunks_exact(8)
            .map(|c| u64::from_be_bytes(c.try_into().unwrap()))
            .take_while(|&p| p != NO_BLOCK)
            .collect())
    }

    /// Collect `(data blocks in logical order, metadata pointer blocks)`.
    fn collect_blocks(&self, inode: &Inode) -> FsResult<(Vec<u64>, Vec<u64>)> {
        let bs = self.block_size() as u64;
        let expected = inode.size.div_ceil(bs) as usize;
        let mut data = Vec::with_capacity(expected);
        let mut meta = Vec::new();

        for &b in inode.direct.iter() {
            if b == NO_BLOCK || data.len() >= expected {
                break;
            }
            data.push(b);
        }
        if inode.indirect != NO_BLOCK {
            meta.push(inode.indirect);
            for p in self.read_pointer_block(inode.indirect)? {
                if data.len() >= expected {
                    break;
                }
                data.push(p);
            }
        }
        if inode.double_indirect != NO_BLOCK {
            meta.push(inode.double_indirect);
            let level1 = self.read_pointer_block(inode.double_indirect)?;
            for leaf in level1 {
                meta.push(leaf);
                for p in self.read_pointer_block(leaf)? {
                    if data.len() >= expected {
                        break;
                    }
                    data.push(p);
                }
            }
        }
        Ok((data, meta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stegfs_blockdev::MemBlockDevice;

    fn new_fs(blocks: u64) -> PlainFs<MemBlockDevice> {
        PlainFs::format(MemBlockDevice::new(1024, blocks), FormatOptions::default()).unwrap()
    }

    #[test]
    fn format_and_mount_roundtrip() {
        let fs = new_fs(4096);
        let sb = fs.superblock().clone();
        let dev = fs.unmount().unwrap();
        let fs2 = PlainFs::mount(dev, AllocPolicy::FirstFit, 1).unwrap();
        assert_eq!(fs2.superblock(), &sb);
        assert!(fs2.list_dir("/").unwrap().is_empty());
    }

    #[test]
    fn mount_rejects_unformatted_volume() {
        let dev = MemBlockDevice::new(1024, 256);
        assert!(PlainFs::mount(dev, AllocPolicy::FirstFit, 0).is_err());
    }

    #[test]
    fn small_file_roundtrip() {
        let fs = new_fs(4096);
        fs.write_file("/hello.txt", b"hello, stegfs").unwrap();
        assert_eq!(fs.read_file("/hello.txt").unwrap(), b"hello, stegfs");
        let (kind, size) = fs.stat("/hello.txt").unwrap();
        assert_eq!(kind, FileKind::File);
        assert_eq!(size, 13);
    }

    #[test]
    fn empty_file_roundtrip() {
        let fs = new_fs(4096);
        fs.write_file("/empty", b"").unwrap();
        assert_eq!(fs.read_file("/empty").unwrap(), Vec::<u8>::new());
        assert_eq!(fs.stat("/empty").unwrap().1, 0);
    }

    #[test]
    fn large_file_uses_indirect_blocks() {
        let fs = new_fs(8192);
        // 300 KB needs 300 blocks > 12 direct + 128 indirect -> double indirect.
        let data: Vec<u8> = (0..300 * 1024u32).map(|i| (i % 251) as u8).collect();
        fs.write_file("/big.bin", &data).unwrap();
        assert_eq!(fs.read_file("/big.bin").unwrap(), data);
    }

    #[test]
    fn file_rewrite_truncates_and_reuses_space() {
        let fs = new_fs(4096);
        let big = vec![1u8; 100 * 1024];
        fs.write_file("/f", &big).unwrap();
        let free_after_big = fs.free_data_blocks();
        fs.write_file("/f", b"small now").unwrap();
        assert!(fs.free_data_blocks() > free_after_big);
        assert_eq!(fs.read_file("/f").unwrap(), b"small now");
    }

    #[test]
    fn read_range() {
        let fs = new_fs(4096);
        let data: Vec<u8> = (0..5000u32).map(|i| (i % 256) as u8).collect();
        fs.write_file("/r", &data).unwrap();
        assert_eq!(fs.read_file_range("/r", 0, 10).unwrap(), &data[0..10]);
        assert_eq!(
            fs.read_file_range("/r", 1020, 10).unwrap(),
            &data[1020..1030],
            "range spanning a block boundary"
        );
        assert_eq!(fs.read_file_range("/r", 4990, 100).unwrap(), &data[4990..]);
        assert!(fs.read_file_range("/r", 10_000, 10).unwrap().is_empty());
        // Zero-length reads are empty, not an underflow (offset 0 included).
        assert!(fs.read_file_range("/r", 0, 0).unwrap().is_empty());
        assert!(fs.read_file_range("/r", 1024, 0).unwrap().is_empty());
    }

    #[test]
    fn directories_nest() {
        let fs = new_fs(4096);
        fs.create_dir("/docs").unwrap();
        fs.create_dir("/docs/2026").unwrap();
        fs.write_file("/docs/2026/notes.txt", b"meeting notes")
            .unwrap();
        assert_eq!(
            fs.read_file("/docs/2026/notes.txt").unwrap(),
            b"meeting notes"
        );
        let listing = fs.list_dir("/docs").unwrap();
        assert_eq!(listing.len(), 1);
        assert_eq!(listing[0].name, "2026");
        assert_eq!(listing[0].kind, FileKind::Directory);
        assert_eq!(fs.list_dir("/docs/2026").unwrap()[0].name, "notes.txt");
    }

    #[test]
    fn duplicate_names_rejected() {
        let fs = new_fs(4096);
        fs.create_file("/a").unwrap();
        assert!(matches!(
            fs.create_file("/a"),
            Err(FsError::AlreadyExists(_))
        ));
        assert!(matches!(
            fs.create_dir("/a"),
            Err(FsError::AlreadyExists(_))
        ));
    }

    #[test]
    fn missing_paths_and_bad_types() {
        let fs = new_fs(4096);
        assert!(matches!(fs.read_file("/nope"), Err(FsError::NotFound(_))));
        assert!(matches!(
            fs.create_file("/nodir/file"),
            Err(FsError::NotFound(_))
        ));
        fs.write_file("/plain", b"x").unwrap();
        assert!(matches!(
            fs.create_file("/plain/child"),
            Err(FsError::NotADirectory(_))
        ));
        fs.create_dir("/d").unwrap();
        assert!(matches!(fs.read_file("/d"), Err(FsError::IsADirectory(_))));
        assert!(matches!(
            fs.list_dir("/plain"),
            Err(FsError::NotADirectory(_))
        ));
        assert!(!fs.exists("/ghost").unwrap());
        assert!(fs.exists("/plain").unwrap());
    }

    #[test]
    fn delete_frees_blocks_and_entries() {
        let fs = new_fs(4096);
        let before = fs.free_data_blocks();
        fs.write_file("/victim", &vec![9u8; 50 * 1024]).unwrap();
        assert!(fs.free_data_blocks() < before);
        fs.delete("/victim").unwrap();
        assert_eq!(fs.free_data_blocks(), before);
        assert!(!fs.exists("/victim").unwrap());
    }

    #[test]
    fn delete_nonempty_dir_rejected_then_allowed_when_empty() {
        let fs = new_fs(4096);
        fs.create_dir("/d").unwrap();
        fs.write_file("/d/f", b"x").unwrap();
        assert!(matches!(
            fs.delete("/d"),
            Err(FsError::DirectoryNotEmpty(_))
        ));
        fs.delete("/d/f").unwrap();
        fs.delete("/d").unwrap();
        assert!(!fs.exists("/d").unwrap());
    }

    #[test]
    fn cannot_delete_root() {
        let fs = new_fs(4096);
        assert!(fs.delete("/").is_err());
    }

    #[test]
    fn no_space_is_reported_cleanly() {
        // Tiny volume: 64 blocks of 1 KB, most of it metadata.
        let fs = new_fs(64);
        fs.create_file("/huge").unwrap();
        let free = fs.free_data_blocks();
        let too_big = vec![0u8; ((free + 10) * 1024) as usize];
        assert!(matches!(
            fs.write_file("/huge", &too_big),
            Err(FsError::NoSpace)
        ));
        // The failed write must not leak blocks permanently.
        assert_eq!(fs.free_data_blocks(), free);
    }

    #[test]
    fn file_too_large_rejected() {
        let fs = new_fs(4096);
        let max = Inode::max_file_size(1024);
        let oversized = vec![0u8; max as usize + 1024];
        assert!(matches!(
            fs.write_file("/way-too-big", &oversized),
            Err(FsError::FileTooLarge { .. })
        ));
    }

    fn new_journaled_fs(blocks: u64) -> PlainFs<stegfs_blockdev::CrashDevice<MemBlockDevice>> {
        let dev = stegfs_blockdev::CrashDevice::new(MemBlockDevice::new(1024, blocks));
        PlainFs::format(
            dev,
            FormatOptions {
                journal_blocks: 256,
                ..FormatOptions::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn journaled_volume_roundtrips_all_operations() {
        let fs = new_journaled_fs(4096);
        assert!(fs.journaled());
        let free0 = fs.free_data_blocks();
        fs.create_dir("/d").unwrap();
        fs.write_file("/d/f", &vec![7u8; 30 * 1024]).unwrap();
        fs.write_file("/d/f", &vec![8u8; 10 * 1024]).unwrap();
        fs.write_file_range("/d/f", 1000, &[0xaa; 2000]).unwrap();
        fs.rename("/d/f", "/d/g").unwrap();
        let mut expected = vec![8u8; 10 * 1024];
        expected[1000..3000].copy_from_slice(&[0xaa; 2000]);
        assert_eq!(fs.read_file("/d/g").unwrap(), expected);
        fs.delete("/d/g").unwrap();
        fs.delete("/d").unwrap();
        assert_eq!(fs.free_data_blocks(), free0, "journaled ops leak no blocks");

        // Remount (with replay) and keep working.
        fs.write_file("/still-here", b"after remount").unwrap();
        let dev = fs.unmount().unwrap();
        let fs2 = PlainFs::mount(dev, AllocPolicy::FirstFit, 1).unwrap();
        assert!(fs2.journaled());
        assert_eq!(fs2.read_file("/still-here").unwrap(), b"after remount");
    }

    #[test]
    fn update_larger_than_journal_ring_commits_in_chunks() {
        // Regression: an update whose write set exceeds the journal ring
        // used to fail with NoSpace; it must now commit as a sequence of
        // ring-sized transactions.
        let dev = MemBlockDevice::new(1024, 4096);
        let fs = PlainFs::format(
            dev,
            FormatOptions {
                journal_blocks: 16, // tiny ring: ~12 targets per transaction
                ..FormatOptions::default()
            },
        )
        .unwrap();
        assert!(fs.journaled());
        let ring_targets = fs.journal_ref().unwrap().max_tx_targets();
        let free0 = fs.free_data_blocks();

        // 100 blocks of payload — an order of magnitude over the ring.
        let payload: Vec<u8> = (0..100 * 1024u32).map(|i| (i % 239) as u8).collect();
        assert!(100 > ring_targets, "fixture must exceed the ring");
        fs.write_file("/big", &payload).unwrap();
        assert_eq!(fs.read_file("/big").unwrap(), payload);

        // Rewrites (freeing the old chain) and deletes chunk too, and the
        // accounting stays exact.
        let smaller: Vec<u8> = (0..40 * 1024u32).map(|i| (i % 31) as u8).collect();
        fs.write_file("/big", &smaller).unwrap();
        assert_eq!(fs.read_file("/big").unwrap(), smaller);
        fs.delete("/big").unwrap();
        assert_eq!(fs.free_data_blocks(), free0, "chunked ops leak no blocks");

        // Replay after a clean unmount finds nothing to redo.
        let dev = fs.unmount().unwrap();
        let fs2 = PlainFs::mount(dev, AllocPolicy::FirstFit, 1).unwrap();
        assert!(fs2.read_file("/big").is_err());
        assert_eq!(fs2.free_data_blocks(), free0);
    }

    #[test]
    fn attached_obs_observes_lock_and_device_activity() {
        let mut fs = new_fs(4096);
        let obs = stegfs_obs::Obs::new(true);
        fs.attach_obs(&obs);
        fs.write_file("/observed", &vec![3u8; 8 * 1024]).unwrap();
        fs.sync().unwrap();
        let snap = obs.snapshot();
        let alloc = snap.lock("fs.alloc").unwrap();
        assert!(alloc.acquisitions > 0, "allocator lock never counted");
        assert!(snap.device.writes > 0, "device writes never counted");
        assert!(snap.device.write_ns.count > 0);
        // Disabled registry: same operations, nothing recorded.
        let mut fs = new_fs(4096);
        let off = stegfs_obs::Obs::disabled();
        fs.attach_obs(&off);
        fs.write_file("/quiet", b"x").unwrap();
        let snap = off.snapshot();
        assert_eq!(snap.lock("fs.alloc").unwrap().acquisitions, 0);
        assert_eq!(snap.device.writes, 0);
    }

    #[test]
    fn journaled_commit_survives_crash_of_home_writes() {
        // A committed write whose in-place images were still pending when
        // the power cut must be redone by replay at mount.
        for seed in 0..8u64 {
            let dev = stegfs_blockdev::CrashDevice::new(MemBlockDevice::new(1024, 2048));
            let fs = PlainFs::format(
                dev.clone(),
                FormatOptions {
                    journal_blocks: 128,
                    ..FormatOptions::default()
                },
            )
            .unwrap();
            let payload: Vec<u8> = (0..20 * 1024u32).map(|i| (i % 251) as u8).collect();
            fs.write_file("/durable", &payload).unwrap();
            drop(fs); // no unmount: the "process" dies
            dev.crash(seed);
            let fs = PlainFs::mount(dev.clone(), AllocPolicy::FirstFit, 1).unwrap();
            assert_eq!(
                fs.read_file("/durable").unwrap(),
                payload,
                "seed {seed}: committed write lost"
            );
        }
    }

    #[test]
    fn torn_uncommitted_update_vanishes_on_replay() {
        // Stop a rewrite mid-flight with the failure trip wire, crash, and
        // remount: the old contents must be intact.
        for seed in 0..8u64 {
            let dev = stegfs_blockdev::CrashDevice::new(MemBlockDevice::new(1024, 2048));
            let fs = PlainFs::format(
                dev.clone(),
                FormatOptions {
                    journal_blocks: 128,
                    ..FormatOptions::default()
                },
            )
            .unwrap();
            let old: Vec<u8> = (0..16 * 1024u32).map(|i| (i % 239) as u8).collect();
            fs.write_file("/f", &old).unwrap();
            fs.sync().unwrap();
            // Let a handful of writes through, then cut the cord mid-update.
            dev.fail_after_writes(3 + seed % 9);
            let _ = fs.write_file("/f", &vec![0x5au8; 16 * 1024]);
            drop(fs);
            dev.crash(seed);
            let fs = PlainFs::mount(dev.clone(), AllocPolicy::FirstFit, 1).unwrap();
            assert_eq!(
                fs.read_file("/f").unwrap(),
                old,
                "seed {seed}: torn rewrite corrupted the old contents"
            );
        }
    }

    #[test]
    fn reformat_never_replays_the_previous_volume() {
        // The journal salt derives deterministically from the format seed,
        // so re-formatting a reused device reproduces the old journal keys.
        // Un-checkpointed transactions from the previous life must not
        // decode — and must never replay over the fresh volume at its first
        // mount.
        let dev = stegfs_blockdev::CrashDevice::new(MemBlockDevice::new(1024, 2048));
        let opts = || FormatOptions {
            journal_blocks: 64,
            ..FormatOptions::default()
        };
        let fs = PlainFs::format(dev.clone(), opts()).unwrap();
        fs.write_file("/old", &vec![9u8; 8 * 1024]).unwrap();
        drop(fs); // no unmount: the ring still holds the committed records

        let fs = PlainFs::format(dev.clone(), opts()).unwrap();
        drop(fs); // again no unmount: the first mount replays
        let fs = PlainFs::mount(dev.clone(), AllocPolicy::FirstFit, 1).unwrap();
        assert!(
            !fs.exists("/old").unwrap(),
            "re-format resurrected the previous volume's namespace"
        );
        fs.write_file("/new", b"fresh volume works").unwrap();
        assert_eq!(fs.read_file("/new").unwrap(), b"fresh volume works");
    }

    #[test]
    fn crash_during_chunked_rewrite_leaves_volume_consistent() {
        // An oversized rewrite streams through the ring as several
        // transactions; power loss in the middle may leave a prefix of them
        // applied, but after replay the volume must mount, unrelated files
        // must be intact, and the allocator must keep working.
        let keep: Vec<u8> = (0..8 * 1024u32).map(|i| (i % 251) as u8).collect();
        for seed in 0..4u64 {
            let dev = stegfs_blockdev::CrashDevice::new(MemBlockDevice::new(1024, 4096));
            let fs = PlainFs::format(
                dev,
                FormatOptions {
                    journal_blocks: 16,
                    ..FormatOptions::default()
                },
            )
            .unwrap();
            fs.write_file("/keep", &keep).unwrap();
            fs.write_file("/f", &vec![1u8; 20 * 1024]).unwrap();
            fs.sync().unwrap();

            // Trip the device partway through the chunk sequence: the
            // rewrite fails, then the plug is pulled on whatever is pending.
            let dev = fs.device().clone();
            dev.fail_after_writes(40 + seed * 25);
            let _ = fs.write_file("/f", &vec![9u8; 80 * 1024]);
            drop(fs);
            dev.crash(seed);

            let fs2 = PlainFs::mount(dev, AllocPolicy::FirstFit, 1).unwrap();
            assert_eq!(
                fs2.read_file("/keep").unwrap(),
                keep,
                "seed {seed}: unrelated file damaged by chunked-rewrite crash"
            );
            // The allocator still hands out usable space.
            fs2.write_file("/after", &vec![5u8; 12 * 1024]).unwrap();
            assert_eq!(fs2.read_file("/after").unwrap(), vec![5u8; 12 * 1024]);
            fs2.delete("/after").unwrap();
            let _ = fs2.unmount().unwrap();
        }
    }

    #[test]
    fn contiguous_policy_places_file_sequentially() {
        let dev = MemBlockDevice::new(1024, 4096);
        let fs = PlainFs::format(
            dev,
            FormatOptions {
                policy: AllocPolicy::Contiguous,
                ..FormatOptions::default()
            },
        )
        .unwrap();
        fs.write_file("/seq", &vec![3u8; 64 * 1024]).unwrap();
        let (_, inode) = fs.resolve("/seq").unwrap();
        let (blocks, _) = fs.collect_blocks(&inode).unwrap();
        for w in blocks.windows(2) {
            assert_eq!(w[1], w[0] + 1);
        }
    }

    #[test]
    fn random_fill_format_leaves_working_fs() {
        let dev = MemBlockDevice::new(1024, 512);
        let fs = PlainFs::format(
            dev,
            FormatOptions {
                fill_random: true,
                ..FormatOptions::default()
            },
        )
        .unwrap();
        // The data region is random, not zero.
        let sb = fs.superblock().clone();
        let probe = fs.read_raw_block(sb.data_start + 5).unwrap();
        assert!(probe.iter().any(|&b| b != 0));
        // And the file system still works.
        fs.write_file("/x", b"works").unwrap();
        assert_eq!(fs.read_file("/x").unwrap(), b"works");
    }

    #[test]
    fn raw_block_interface_respects_data_region() {
        let fs = new_fs(4096);
        let b = fs.allocate_random_block().unwrap();
        assert!(fs.superblock().in_data_region(b));
        assert!(fs.is_block_allocated(b));
        fs.write_raw_block(b, &vec![0xee; 1024]).unwrap();
        assert_eq!(fs.read_raw_block(b).unwrap(), vec![0xee; 1024]);
        fs.free_raw_block(b).unwrap();
        assert!(!fs.is_block_allocated(b));
        // Metadata blocks cannot be allocated or freed through the raw API.
        assert!(fs.allocate_specific_block(0).is_err());
        assert!(fs.free_raw_block(0).is_err());
        assert!(fs.try_allocate_specific_block(0).is_err());
    }

    #[test]
    fn try_allocate_specific_block_reports_losers() {
        let fs = new_fs(4096);
        let b = fs.superblock().data_start + 17;
        assert!(fs.try_allocate_specific_block(b).unwrap());
        // Second taker loses gracefully instead of reporting corruption.
        assert!(!fs.try_allocate_specific_block(b).unwrap());
        fs.free_raw_block(b).unwrap();
        assert!(fs.try_allocate_specific_block(b).unwrap());
    }

    #[test]
    fn raw_allocations_invisible_to_central_directory() {
        let fs = new_fs(4096);
        fs.write_file("/visible", &vec![1u8; 4096]).unwrap();
        let visible = fs.plain_object_blocks().unwrap();
        let hidden = fs.allocate_random_block().unwrap();
        let after = fs.plain_object_blocks().unwrap();
        assert_eq!(
            visible, after,
            "raw allocation must not appear in the central directory"
        );
        assert!(!after.contains(&hidden));
        // But the bitmap knows the block is taken.
        assert!(fs.is_block_allocated(hidden));
    }

    #[test]
    fn total_plain_file_bytes_counts_files_only() {
        let fs = new_fs(4096);
        fs.create_dir("/d").unwrap();
        fs.write_file("/d/a", &vec![0u8; 1000]).unwrap();
        fs.write_file("/b", &vec![0u8; 500]).unwrap();
        assert_eq!(fs.total_plain_file_bytes().unwrap(), 1500);
    }

    #[test]
    fn write_file_range_overwrites_in_place() {
        let fs = new_fs(4096);
        let data: Vec<u8> = (0..5000u32).map(|i| (i % 256) as u8).collect();
        fs.write_file("/f", &data).unwrap();
        let free_before = fs.free_data_blocks();

        fs.write_file_range("/f", 1000, &[0xaa; 100]).unwrap();
        let mut expected = data.clone();
        expected[1000..1100].copy_from_slice(&[0xaa; 100]);
        assert_eq!(fs.read_file("/f").unwrap(), expected);
        // Aligned whole-block overwrite.
        fs.write_file_range("/f", 1024, &[0xbb; 1024]).unwrap();
        expected[1024..2048].copy_from_slice(&[0xbb; 1024]);
        assert_eq!(fs.read_file("/f").unwrap(), expected);
        // No allocation happened.
        assert_eq!(fs.free_data_blocks(), free_before);
        // Beyond-EOF updates are rejected.
        assert!(fs.write_file_range("/f", 4999, &[0u8; 10]).is_err());
        // Empty updates are no-ops.
        fs.write_file_range("/f", 0, &[]).unwrap();
    }

    #[test]
    fn rename_within_and_across_directories() {
        let fs = new_fs(4096);
        fs.write_file("/a.txt", b"contents").unwrap();
        fs.create_dir("/dir").unwrap();

        // Same-directory rename.
        fs.rename("/a.txt", "/b.txt").unwrap();
        assert!(!fs.exists("/a.txt").unwrap());
        assert_eq!(fs.read_file("/b.txt").unwrap(), b"contents");

        // Cross-directory move.
        fs.rename("/b.txt", "/dir/c.txt").unwrap();
        assert!(!fs.exists("/b.txt").unwrap());
        assert_eq!(fs.read_file("/dir/c.txt").unwrap(), b"contents");
        assert_eq!(fs.list_dir("/dir").unwrap().len(), 1);

        // Directories move too, carrying their contents.
        fs.rename("/dir", "/renamed").unwrap();
        assert_eq!(fs.read_file("/renamed/c.txt").unwrap(), b"contents");
    }

    #[test]
    fn inode_handles_survive_rename_and_go_stale_on_delete() {
        let fs = new_fs(4096);
        fs.write_file("/a", b"pinned contents").unwrap();
        let id = fs.resolve_file("/a").unwrap();

        // The inode handle keeps working across a rename...
        fs.rename("/a", "/b").unwrap();
        assert_eq!(fs.read_inode_range(id, 0, 100).unwrap(), b"pinned contents");
        fs.write_inode_range(id, 0, b"P").unwrap();
        assert_eq!(fs.read_file("/b").unwrap(), b"Pinned contents");
        fs.write_inode_file(id, b"new").unwrap();
        assert_eq!(fs.inode_file_size(id).unwrap(), 3);

        // ...and goes cleanly stale on delete.
        fs.delete("/b").unwrap();
        assert!(fs.read_inode_range(id, 0, 1).unwrap_err().is_not_found());
        assert!(fs.inode_file_size(id).unwrap_err().is_not_found());
        assert!(fs
            .write_inode_range(id, 0, b"x")
            .unwrap_err()
            .is_not_found());
        assert!(fs.write_inode_file(id, b"x").unwrap_err().is_not_found());

        // Directories are not file handles.
        fs.create_dir("/d").unwrap();
        assert!(matches!(
            fs.resolve_file("/d"),
            Err(FsError::IsADirectory(_))
        ));
    }

    #[test]
    fn rename_rejects_conflicts_and_cycles() {
        let fs = new_fs(4096);
        fs.write_file("/a", b"a").unwrap();
        fs.write_file("/b", b"b").unwrap();
        fs.create_dir("/d").unwrap();

        assert!(matches!(
            fs.rename("/a", "/b"),
            Err(FsError::AlreadyExists(_))
        ));
        assert!(matches!(
            fs.rename("/missing", "/x"),
            Err(FsError::NotFound(_))
        ));
        assert!(matches!(
            fs.rename("/d", "/d/sub"),
            Err(FsError::InvalidPath(_))
        ));
        assert!(matches!(fs.rename("/", "/x"), Err(FsError::InvalidPath(_))));
        // Nothing was disturbed.
        assert_eq!(fs.read_file("/a").unwrap(), b"a");
        assert_eq!(fs.read_file("/b").unwrap(), b"b");
    }

    #[test]
    fn many_files_survive_remount() {
        let fs = new_fs(16384);
        for i in 0..50 {
            fs.write_file(&format!("/file-{i}"), format!("contents {i}").as_bytes())
                .unwrap();
        }
        let dev = fs.unmount().unwrap();
        let fs = PlainFs::mount(dev, AllocPolicy::FirstFit, 0).unwrap();
        for i in 0..50 {
            assert_eq!(
                fs.read_file(&format!("/file-{i}")).unwrap(),
                format!("contents {i}").as_bytes()
            );
        }
        assert_eq!(fs.list_dir("/").unwrap().len(), 50);
    }

    #[test]
    fn inodes_sharing_a_table_block_update_concurrently() {
        // Several inodes pack into one inode-table block; concurrent content
        // rewrites of *different* files must not lose each other's inode
        // updates through the table block's read-modify-write.
        use std::sync::Arc;
        let fs = Arc::new(new_fs(16384));
        let files = 8usize;
        for i in 0..files {
            fs.write_file(&format!("/tb-{i}"), &[i as u8; 100]).unwrap();
        }
        let workers: Vec<_> = (0..files)
            .map(|i| {
                let fs = Arc::clone(&fs);
                std::thread::spawn(move || {
                    for round in 1..=12usize {
                        let data = vec![i as u8; 512 * round];
                        fs.write_file(&format!("/tb-{i}"), &data).unwrap();
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        for i in 0..files {
            assert_eq!(
                fs.read_file(&format!("/tb-{i}")).unwrap(),
                vec![i as u8; 512 * 12],
                "file {i} lost its final rewrite"
            );
        }
    }

    #[test]
    fn shared_reference_api_works_across_threads() {
        use std::sync::Arc;
        let fs = Arc::new(new_fs(16384));
        let threads = 8usize;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let fs = Arc::clone(&fs);
                std::thread::spawn(move || {
                    for round in 0..8 {
                        let path = format!("/t{t}-{}", round % 2);
                        let data = vec![(t * 31 + round) as u8; 3000 + round * 100];
                        fs.write_file(&path, &data).unwrap();
                        assert_eq!(fs.read_file(&path).unwrap(), data);
                    }
                    fs.delete(&format!("/t{t}-0")).unwrap();
                    fs.delete(&format!("/t{t}-1")).unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(fs.list_dir("/").unwrap().is_empty());
    }
}
