//! On-disk layout: the superblock and the derived region geometry.
//!
//! ```text
//! block 0            : superblock
//! blocks 1..B        : block bitmap (1 bit per block)
//! blocks B..I        : inode table ("central directory")
//! blocks I..J        : write-ahead journal (optional; zero-length when the
//!                      volume is formatted without durability)
//! blocks J..total    : data region (plain file data, directories, and —
//!                      invisible to this layer — hidden StegFS objects)
//! ```
//!
//! All integers are stored big-endian.  The superblock must fit in one block,
//! which it comfortably does for every block size the paper considers
//! (512 bytes to 64 KB).
//!
//! Version 2 added the journal region and the journal salt.  The salt seeds
//! the journal's slot-encryption key; it is volume-public by design (see
//! `stegfs_journal::record::JournalKeys` for why that does not weaken the
//! hiding property).

use crate::error::{FsError, FsResult};

/// Magic number identifying a formatted volume ("STEGFSPL" in ASCII).
pub const MAGIC: u64 = 0x5354_4547_4653_504c;

/// On-disk format version understood by this implementation.
pub const VERSION: u32 = 2;

/// Size in bytes of a serialised inode.
pub const INODE_SIZE: usize = 128;

/// Geometry and configuration of a formatted volume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Superblock {
    /// Block size in bytes.
    pub block_size: u32,
    /// Total number of blocks in the volume.
    pub total_blocks: u64,
    /// First block of the bitmap region (always 1).
    pub bitmap_start: u64,
    /// Number of bitmap blocks.
    pub bitmap_blocks: u64,
    /// First block of the inode table.
    pub inode_table_start: u64,
    /// Number of inode-table blocks.
    pub inode_table_blocks: u64,
    /// Number of inodes in the table.
    pub inode_count: u64,
    /// First block of the write-ahead journal region (equals
    /// [`data_start`](Self::data_start) when the volume has no journal).
    pub journal_start: u64,
    /// Number of journal blocks (0 = no journal).
    pub journal_blocks: u64,
    /// Salt seeding the journal's slot-encryption key.
    pub journal_salt: u64,
    /// First block of the data region.
    pub data_start: u64,
    /// Inode number of the root directory.
    pub root_inode: u64,
}

impl Superblock {
    /// Compute the layout for a volume of `total_blocks` blocks of
    /// `block_size` bytes with room for `inode_count` inodes and a
    /// `journal_blocks`-block write-ahead journal (0 for none).
    ///
    /// Returns an error if the metadata would not leave any data blocks.
    pub fn compute(
        block_size: u32,
        total_blocks: u64,
        inode_count: u64,
        journal_blocks: u64,
    ) -> FsResult<Self> {
        if block_size < 128 || !block_size.is_power_of_two() {
            return Err(FsError::Corrupt(format!(
                "unsupported block size {block_size}"
            )));
        }
        if total_blocks < 8 {
            return Err(FsError::Corrupt("volume too small".into()));
        }
        if journal_blocks != 0 && journal_blocks < 8 {
            return Err(FsError::Corrupt(format!(
                "a journal of {journal_blocks} blocks is too small (minimum 8)"
            )));
        }
        let bits_per_block = block_size as u64 * 8;
        let bitmap_blocks = total_blocks.div_ceil(bits_per_block);
        let inodes_per_block = block_size as u64 / INODE_SIZE as u64;
        let inode_count = inode_count.max(16);
        let inode_table_blocks = inode_count.div_ceil(inodes_per_block);
        let journal_start = 1 + bitmap_blocks + inode_table_blocks;
        let data_start = journal_start + journal_blocks;
        if data_start + 1 >= total_blocks {
            return Err(FsError::Corrupt(
                "volume too small to hold metadata and data".into(),
            ));
        }
        Ok(Superblock {
            block_size,
            total_blocks,
            bitmap_start: 1,
            bitmap_blocks,
            inode_table_start: 1 + bitmap_blocks,
            inode_table_blocks,
            inode_count,
            journal_start,
            journal_blocks,
            journal_salt: 0,
            data_start,
            root_inode: 0,
        })
    }

    /// Number of inodes that fit in one block.
    pub fn inodes_per_block(&self) -> u64 {
        self.block_size as u64 / INODE_SIZE as u64
    }

    /// Number of blocks in the data region.
    pub fn data_blocks(&self) -> u64 {
        self.total_blocks - self.data_start
    }

    /// True if `block` lies inside the data region.
    pub fn in_data_region(&self, block: u64) -> bool {
        block >= self.data_start && block < self.total_blocks
    }

    /// Serialise into a block-sized buffer.
    pub fn serialize(&self, block_size: usize) -> Vec<u8> {
        let mut buf = vec![0u8; block_size];
        let mut off = 0usize;
        let put_u64 = |buf: &mut [u8], off: &mut usize, v: u64| {
            buf[*off..*off + 8].copy_from_slice(&v.to_be_bytes());
            *off += 8;
        };
        put_u64(&mut buf, &mut off, MAGIC);
        buf[off..off + 4].copy_from_slice(&VERSION.to_be_bytes());
        off += 4;
        buf[off..off + 4].copy_from_slice(&self.block_size.to_be_bytes());
        off += 4;
        put_u64(&mut buf, &mut off, self.total_blocks);
        put_u64(&mut buf, &mut off, self.bitmap_start);
        put_u64(&mut buf, &mut off, self.bitmap_blocks);
        put_u64(&mut buf, &mut off, self.inode_table_start);
        put_u64(&mut buf, &mut off, self.inode_table_blocks);
        put_u64(&mut buf, &mut off, self.inode_count);
        put_u64(&mut buf, &mut off, self.data_start);
        put_u64(&mut buf, &mut off, self.root_inode);
        put_u64(&mut buf, &mut off, self.journal_start);
        put_u64(&mut buf, &mut off, self.journal_blocks);
        put_u64(&mut buf, &mut off, self.journal_salt);
        buf
    }

    /// Parse a superblock from block 0 of a volume.
    pub fn deserialize(buf: &[u8]) -> FsResult<Self> {
        if buf.len() < 108 {
            return Err(FsError::Corrupt("superblock buffer too small".into()));
        }
        let get_u64 = |off: usize| u64::from_be_bytes(buf[off..off + 8].try_into().unwrap());
        let magic = get_u64(0);
        if magic != MAGIC {
            return Err(FsError::Corrupt(format!(
                "bad magic 0x{magic:016x}, volume is not a StegFS plain file system"
            )));
        }
        let version = u32::from_be_bytes(buf[8..12].try_into().unwrap());
        if version != VERSION {
            return Err(FsError::Corrupt(format!(
                "unsupported on-disk version {version}"
            )));
        }
        let block_size = u32::from_be_bytes(buf[12..16].try_into().unwrap());
        let sb = Superblock {
            block_size,
            total_blocks: get_u64(16),
            bitmap_start: get_u64(24),
            bitmap_blocks: get_u64(32),
            inode_table_start: get_u64(40),
            inode_table_blocks: get_u64(48),
            inode_count: get_u64(56),
            data_start: get_u64(64),
            root_inode: get_u64(72),
            journal_start: get_u64(80),
            journal_blocks: get_u64(88),
            journal_salt: get_u64(96),
        };
        if sb.data_start >= sb.total_blocks {
            return Err(FsError::Corrupt("data region outside volume".into()));
        }
        let journal_end = sb
            .journal_start
            .checked_add(sb.journal_blocks)
            .ok_or_else(|| FsError::Corrupt("journal region overflows".into()))?;
        if journal_end > sb.data_start {
            return Err(FsError::Corrupt("journal region overlaps data".into()));
        }
        Ok(sb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_layout_1gb_1kb() {
        // The paper's default: 1 GB volume with 1 KB blocks.
        let total = 1024 * 1024; // blocks
        let sb = Superblock::compute(1024, total, total / 16, 0).unwrap();
        // Bitmap: 1M blocks / 8192 bits per block = 128 blocks.
        assert_eq!(sb.bitmap_blocks, 128);
        assert_eq!(sb.inodes_per_block(), 8);
        assert_eq!(sb.inode_table_start, 129);
        assert_eq!(sb.data_start, 129 + sb.inode_table_blocks);
        assert!(sb.data_blocks() > total * 9 / 10, "metadata under 10%");
    }

    #[test]
    fn compute_layout_various_block_sizes() {
        // All block sizes the paper sweeps in Figure 9.
        for bs in [512u32, 1024, 2048, 4096, 8192, 16384, 32768, 65536] {
            let total_blocks = (64 * 1024 * 1024) / bs as u64; // 64 MB volume
            let sb = Superblock::compute(bs, total_blocks, 256, 0).unwrap();
            assert!(sb.data_start < sb.total_blocks);
            assert!(sb.in_data_region(sb.data_start));
            assert!(!sb.in_data_region(0));
            assert!(!sb.in_data_region(sb.total_blocks));
        }
    }

    #[test]
    fn journal_region_sits_between_itable_and_data() {
        let mut sb = Superblock::compute(1024, 8192, 256, 128).unwrap();
        sb.journal_salt = 0xdead_beef;
        assert_eq!(
            sb.journal_start,
            sb.inode_table_start + sb.inode_table_blocks
        );
        assert_eq!(sb.data_start, sb.journal_start + 128);
        assert!(!sb.in_data_region(sb.journal_start));
        assert!(!sb.in_data_region(sb.data_start - 1));
        let parsed = Superblock::deserialize(&sb.serialize(1024)).unwrap();
        assert_eq!(parsed, sb);
        // Journals below the minimum are rejected; 0 means none.
        assert!(Superblock::compute(1024, 8192, 256, 4).is_err());
        let none = Superblock::compute(1024, 8192, 256, 0).unwrap();
        assert_eq!(none.journal_start, none.data_start);
        assert_eq!(none.journal_blocks, 0);
    }

    #[test]
    fn serialization_roundtrip() {
        let sb = Superblock::compute(1024, 65536, 4096, 0).unwrap();
        let buf = sb.serialize(1024);
        assert_eq!(buf.len(), 1024);
        let parsed = Superblock::deserialize(&buf).unwrap();
        assert_eq!(parsed, sb);
    }

    #[test]
    fn deserialize_rejects_bad_magic() {
        let sb = Superblock::compute(1024, 65536, 4096, 0).unwrap();
        let mut buf = sb.serialize(1024);
        buf[0] ^= 0xff;
        let err = Superblock::deserialize(&buf).unwrap_err();
        assert!(err.to_string().contains("bad magic"));
    }

    #[test]
    fn deserialize_rejects_bad_version() {
        let sb = Superblock::compute(1024, 65536, 4096, 0).unwrap();
        let mut buf = sb.serialize(1024);
        buf[11] = 99;
        assert!(Superblock::deserialize(&buf).is_err());
    }

    #[test]
    fn deserialize_rejects_truncated() {
        assert!(Superblock::deserialize(&[0u8; 10]).is_err());
    }

    #[test]
    fn rejects_unsupported_geometry() {
        assert!(Superblock::compute(100, 1024, 64, 0).is_err()); // not a power of two
        assert!(Superblock::compute(1024, 4, 64, 0).is_err()); // too small
        assert!(Superblock::compute(1024, 10, 1_000_000, 0).is_err()); // metadata larger than volume
    }

    #[test]
    fn inode_size_divides_block_sizes() {
        // The fixed 128-byte inode must pack an integer number of times into
        // every supported block size.
        for bs in [512u32, 1024, 2048, 4096, 8192, 16384, 32768, 65536] {
            assert_eq!(bs as usize % INODE_SIZE, 0);
        }
    }
}
