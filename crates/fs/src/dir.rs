//! Directory entries.
//!
//! A directory is an ordinary file (owned by a `FileKind::Directory` inode)
//! whose contents are a flat sequence of entries.  Each entry is
//!
//! ```text
//! [name_len: u16][kind: u8][inode: u64][name: name_len bytes of UTF-8]
//! ```
//!
//! Hidden StegFS objects never appear in these listings; when a user
//! "connects" a hidden object (`steg_connect`) the core crate materialises a
//! transient entry in the *session*, not on disk.

use crate::error::{FsError, FsResult};
use crate::inode::{FileKind, InodeId};

/// Maximum length of a single path component, in bytes.
pub const MAX_NAME_LEN: usize = 255;

/// One entry in a directory listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Component name (no `/`).
    pub name: String,
    /// Inode the entry points at.
    pub inode: InodeId,
    /// Kind of the target (cached from the inode to avoid an extra read on
    /// listing).
    pub kind: FileKind,
}

/// Serialise a directory's entries into its file contents.
pub fn encode_entries(entries: &[DirEntry]) -> Vec<u8> {
    let mut out = Vec::new();
    for e in entries {
        let name = e.name.as_bytes();
        debug_assert!(name.len() <= MAX_NAME_LEN);
        out.extend_from_slice(&(name.len() as u16).to_be_bytes());
        out.push(match e.kind {
            FileKind::Free => 0,
            FileKind::File => 1,
            FileKind::Directory => 2,
        });
        out.extend_from_slice(&e.inode.to_be_bytes());
        out.extend_from_slice(name);
    }
    out
}

/// Parse a directory's file contents back into entries.
pub fn decode_entries(data: &[u8]) -> FsResult<Vec<DirEntry>> {
    let mut entries = Vec::new();
    let mut off = 0usize;
    while off < data.len() {
        if data.len() - off < 11 {
            return Err(FsError::Corrupt("truncated directory entry header".into()));
        }
        let name_len = u16::from_be_bytes([data[off], data[off + 1]]) as usize;
        let kind = match data[off + 2] {
            1 => FileKind::File,
            2 => FileKind::Directory,
            other => {
                return Err(FsError::Corrupt(format!(
                    "invalid kind {other} in directory entry"
                )))
            }
        };
        let inode = u64::from_be_bytes(data[off + 3..off + 11].try_into().unwrap());
        off += 11;
        if data.len() - off < name_len {
            return Err(FsError::Corrupt("truncated directory entry name".into()));
        }
        let name = String::from_utf8(data[off..off + name_len].to_vec())
            .map_err(|_| FsError::Corrupt("directory entry name is not UTF-8".into()))?;
        off += name_len;
        entries.push(DirEntry { name, inode, kind });
    }
    Ok(entries)
}

/// Validate and split an absolute path into components.
///
/// Accepts `/`, `/a`, `/a/b/c`; rejects relative paths, empty components,
/// embedded NULs and over-long names.
pub fn split_path(path: &str) -> FsResult<Vec<&str>> {
    if !path.starts_with('/') {
        return Err(FsError::InvalidPath(format!(
            "{path}: paths must be absolute"
        )));
    }
    if path == "/" {
        return Ok(Vec::new());
    }
    let mut components = Vec::new();
    for comp in path[1..].split('/') {
        if comp.is_empty() {
            return Err(FsError::InvalidPath(format!(
                "{path}: empty path component"
            )));
        }
        if comp.len() > MAX_NAME_LEN {
            return Err(FsError::InvalidPath(format!(
                "{path}: component longer than {MAX_NAME_LEN} bytes"
            )));
        }
        if comp.contains('\0') {
            return Err(FsError::InvalidPath(format!("{path}: embedded NUL")));
        }
        if comp == "." || comp == ".." {
            return Err(FsError::InvalidPath(format!(
                "{path}: '.' and '..' components are not supported"
            )));
        }
        components.push(comp);
    }
    Ok(components)
}

/// Split a path into `(parent components, final name)`.
pub fn split_parent(path: &str) -> FsResult<(Vec<&str>, &str)> {
    let mut comps = split_path(path)?;
    match comps.pop() {
        Some(name) => Ok((comps, name)),
        None => Err(FsError::InvalidPath(
            "the root directory has no parent".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<DirEntry> {
        vec![
            DirEntry {
                name: "readme.txt".into(),
                inode: 4,
                kind: FileKind::File,
            },
            DirEntry {
                name: "projects".into(),
                inode: 9,
                kind: FileKind::Directory,
            },
            DirEntry {
                name: "ünïcødé name".into(),
                inode: 17,
                kind: FileKind::File,
            },
        ]
    }

    #[test]
    fn encode_decode_roundtrip() {
        let entries = sample();
        let encoded = encode_entries(&entries);
        assert_eq!(decode_entries(&encoded).unwrap(), entries);
    }

    #[test]
    fn empty_directory() {
        assert!(decode_entries(&encode_entries(&[])).unwrap().is_empty());
    }

    #[test]
    fn decode_rejects_truncation() {
        let encoded = encode_entries(&sample());
        assert!(decode_entries(&encoded[..encoded.len() - 3]).is_err());
        assert!(decode_entries(&encoded[..5]).is_err());
    }

    #[test]
    fn decode_rejects_bad_kind() {
        let mut encoded = encode_entries(&sample());
        encoded[2] = 7;
        assert!(decode_entries(&encoded).is_err());
    }

    #[test]
    fn split_path_accepts_absolute() {
        assert_eq!(split_path("/").unwrap(), Vec::<&str>::new());
        assert_eq!(split_path("/a").unwrap(), vec!["a"]);
        assert_eq!(split_path("/a/b/c").unwrap(), vec!["a", "b", "c"]);
    }

    #[test]
    fn split_path_rejects_bad_paths() {
        assert!(split_path("relative").is_err());
        assert!(split_path("").is_err());
        assert!(split_path("/a//b").is_err());
        assert!(split_path("/a/").is_err());
        assert!(split_path("/a/../b").is_err());
        assert!(split_path("/a/./b").is_err());
        assert!(split_path(&format!("/{}", "x".repeat(300))).is_err());
        assert!(split_path("/bad\0name").is_err());
    }

    #[test]
    fn split_parent_basic() {
        let (parent, name) = split_parent("/docs/budget.xls").unwrap();
        assert_eq!(parent, vec!["docs"]);
        assert_eq!(name, "budget.xls");
        let (parent, name) = split_parent("/top").unwrap();
        assert!(parent.is_empty());
        assert_eq!(name, "top");
        assert!(split_parent("/").is_err());
    }
}
