//! Edge planning for in-place multi-block overwrites.
//!
//! An in-place overwrite of the byte range `[offset, end)` across a span of
//! blocks needs old contents only for a *partial* head and/or tail block —
//! fully covered middle blocks are rebuilt from the new data.  Both the
//! plain layer ([`crate::PlainFs`]) and the hidden-object layer in
//! `stegfs-core` perform this read-modify-write at batch granularity; this
//! module holds the one copy of the edge-selection and splice logic they
//! share, so the two write paths cannot silently diverge.

/// Which blocks of a span need their old contents fetched before an
/// in-place overwrite, and how the fetched bytes seed the span buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RmwPlan {
    head_partial: bool,
    tail_partial: bool,
    /// Physical block numbers to fetch (0, 1 or 2 entries, in span order);
    /// a single-block span that is partial at both ends appears once.
    pub edges: Vec<u64>,
}

/// Plan the edge fetch for overwriting `[offset, end)` of the blocks in
/// `span`, where `span` starts at absolute byte `span_start` and covers the
/// whole range.
pub fn plan(span: &[u64], offset: u64, end: u64, span_start: u64, block_size: usize) -> RmwPlan {
    debug_assert!(!span.is_empty());
    debug_assert!(span_start <= offset && offset < end);
    let head_partial = offset != span_start;
    let tail_partial = !end.is_multiple_of(block_size as u64);
    let mut edges = Vec::new();
    if head_partial {
        edges.push(span[0]);
    }
    if tail_partial && (span.len() > 1 || !head_partial) {
        edges.push(*span.last().expect("span is non-empty"));
    }
    RmwPlan {
        head_partial,
        tail_partial,
        edges,
    }
}

impl RmwPlan {
    /// Seed `buf` (the span-sized scratch the new contents are assembled in)
    /// with the fetched edge contents — `edge_data` is the concatenation of
    /// the [`edges`](Self::edges) blocks, in order.  Middle blocks are left
    /// untouched; the caller splices the new data over the top afterwards.
    pub fn seed_edges(&self, edge_data: &[u8], buf: &mut [u8], block_size: usize) {
        debug_assert_eq!(edge_data.len(), self.edges.len() * block_size);
        if self.head_partial {
            buf[..block_size].copy_from_slice(&edge_data[..block_size]);
        }
        if self.tail_partial {
            let n = buf.len();
            buf[n - block_size..].copy_from_slice(&edge_data[edge_data.len() - block_size..]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BS: usize = 4;

    #[test]
    fn aligned_range_needs_no_edges() {
        let p = plan(&[10, 11], 8, 16, 8, BS);
        assert!(p.edges.is_empty());
        let mut buf = vec![0u8; 8];
        p.seed_edges(&[], &mut buf, BS);
        assert_eq!(buf, vec![0u8; 8]);
    }

    #[test]
    fn partial_head_and_tail_fetch_both_edges() {
        let p = plan(&[10, 11, 12], 9, 19, 8, BS);
        assert_eq!(p.edges, vec![10, 12]);
        let mut buf = vec![0u8; 12];
        let edges: Vec<u8> = (1..=8).collect();
        p.seed_edges(&edges, &mut buf, BS);
        assert_eq!(buf, vec![1, 2, 3, 4, 0, 0, 0, 0, 5, 6, 7, 8]);
    }

    #[test]
    fn single_partial_block_fetches_once_and_seeds_whole() {
        // One block, partial at both ends: one fetch covers both roles.
        let p = plan(&[10], 9, 11, 8, BS);
        assert_eq!(p.edges, vec![10]);
        let mut buf = vec![0u8; 4];
        p.seed_edges(&[7, 8, 9, 10], &mut buf, BS);
        assert_eq!(buf, vec![7, 8, 9, 10]);
    }

    #[test]
    fn head_only_and_tail_only() {
        let p = plan(&[10, 11], 9, 16, 8, BS);
        assert_eq!(p.edges, vec![10]);
        let p = plan(&[10, 11], 8, 15, 8, BS);
        assert_eq!(p.edges, vec![11]);
    }
}
