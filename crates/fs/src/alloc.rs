//! Block allocation policies.
//!
//! The paper's evaluation compares schemes whose *only* difference at the
//! plain-file level is where blocks land on the platter:
//!
//! * **CleanDisk** — a freshly formatted volume where every file occupies
//!   contiguous blocks ([`AllocPolicy::Contiguous`]).
//! * **FragDisk** — a well-used volume where files are broken into fragments
//!   of 8 blocks ([`AllocPolicy::Fragmented`] with `run = 8`, the value used
//!   in §5.1).
//! * **StegFS** — hidden data blocks are "assigned randomly from any free
//!   space by consulting the bitmap" (§3.1), i.e. [`AllocPolicy::Random`].
//!
//! [`Allocator`] turns a policy plus the bitmap into a concrete list of block
//! numbers for a file of a given length.
//!
//! # Division of labour with the sharded bitmap
//!
//! The allocator holds only *meta* state — the policy, the first-fit cursor
//! and the placement RNG — and its lock is correspondingly tiny: drawing the
//! randomness for a placement is a few dozen RNG steps, never an O(volume)
//! scan and never device I/O.  The actual check-and-claim of each block
//! happens in the [`Bitmap`]'s per-segment locks
//! ([`Bitmap::claim_free_from`], [`Bitmap::claim_random`],
//! [`Bitmap::claim_run`]), so concurrent writers placing blocks in different
//! parts of the volume do not serialise on this struct at all.  Placement
//! distribution is unchanged: the claim paths return exactly the blocks the
//! old find-then-mark sequence picked.

use crate::bitmap::Bitmap;
use crate::error::{FsError, FsResult};
use stegfs_crypto::prng::DeterministicRng;

/// Number of uniformly random candidate blocks drawn per random placement
/// before falling back to a scan from a random origin.
pub const RANDOM_PROBES: usize = 64;

/// Where newly allocated blocks should be placed.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum AllocPolicy {
    /// First free block, scanning forward from the last allocation.
    #[default]
    FirstFit,
    /// The whole file in one contiguous run (paper baseline *CleanDisk*).
    Contiguous,
    /// Contiguous runs of `run` blocks, scattered wherever they fit (paper
    /// baseline *FragDisk*, `run = 8`).
    Fragmented {
        /// Number of blocks per fragment.
        run: u64,
    },
    /// Uniformly random free blocks (what StegFS uses for hidden objects).
    Random,
}

impl AllocPolicy {
    /// The fragment length used by the paper for FragDisk.
    pub fn frag_disk() -> Self {
        AllocPolicy::Fragmented { run: 8 }
    }
}

/// The random candidates for one placement, drawn up front under the
/// allocator's meta lock so the claim itself runs lock-free of it.
pub struct RandomProbes {
    /// Candidate blocks, tried in order.
    pub probes: [u64; RANDOM_PROBES],
    /// Scan origin when every probe loses.
    pub origin: u64,
}

/// Stateful allocator bound to a data region of the volume.
///
/// First-fit allocation rotates a cursor past each allocation; together with
/// the bitmap's word-level scan and per-shard next-free hints (see
/// [`Bitmap`]), finding the next free block on a fragmented, mostly full
/// volume costs a handful of 64-block word probes instead of an O(volume)
/// bit walk — and the up-front capacity check in
/// [`Allocator::allocate_file`] is a word-level popcount rather than a
/// per-bit filter.
pub struct Allocator {
    policy: AllocPolicy,
    region_start: u64,
    region_end: u64,
    cursor: u64,
    rng: DeterministicRng,
}

impl Allocator {
    /// Create an allocator for blocks in `[region_start, region_end)`.
    ///
    /// `seed` drives the `Random` policy (and tie-breaking elsewhere); using
    /// a fixed seed makes experiments reproducible.
    pub fn new(policy: AllocPolicy, region_start: u64, region_end: u64, seed: &[u8]) -> Self {
        assert!(region_start < region_end, "empty allocation region");
        Allocator {
            policy,
            region_start,
            region_end,
            cursor: region_start,
            rng: DeterministicRng::new(seed),
        }
    }

    /// The policy this allocator implements.
    pub fn policy(&self) -> &AllocPolicy {
        &self.policy
    }

    /// Replace the policy (the experiments flip a mounted volume between
    /// CleanDisk-style and FragDisk-style loading).
    pub fn set_policy(&mut self, policy: AllocPolicy) {
        self.policy = policy;
    }

    /// Draw the random candidates for one placement.  Pure RNG work — the
    /// caller claims against the bitmap afterwards, outside this lock.
    pub fn draw_probes(&mut self) -> RandomProbes {
        let span = self.region_end - self.region_start;
        let mut probes = [0u64; RANDOM_PROBES];
        for p in probes.iter_mut() {
            *p = self.region_start + self.rng.next_below(span);
        }
        RandomProbes {
            probes,
            origin: self.region_start + self.rng.next_below(span),
        }
    }

    fn claim_random(&mut self, bitmap: &Bitmap) -> FsResult<u64> {
        let RandomProbes { probes, origin } = self.draw_probes();
        bitmap
            .claim_random(&probes, origin, self.region_start, self.region_end)
            .ok_or(FsError::NoSpace)
    }

    fn bump_cursor(&mut self, next: u64) {
        self.cursor = if next >= self.region_end {
            self.region_start
        } else {
            next
        };
    }

    /// Allocate a single block and mark it in the bitmap.
    pub fn allocate_one(&mut self, bitmap: &Bitmap) -> FsResult<u64> {
        let block = match &self.policy {
            AllocPolicy::Random => self.claim_random(bitmap)?,
            _ => bitmap
                .claim_free_from(self.cursor, self.region_start, self.region_end)
                .ok_or(FsError::NoSpace)?,
        };
        self.bump_cursor(block + 1);
        Ok(block)
    }

    /// Allocate `count` blocks for a file according to the policy and mark
    /// them in the bitmap.  The returned order is the logical block order of
    /// the file.  On failure every block this call claimed is released
    /// again.
    pub fn allocate_file(&mut self, bitmap: &Bitmap, count: u64) -> FsResult<Vec<u64>> {
        if count == 0 {
            return Ok(Vec::new());
        }
        // Advisory capacity pre-check (exact when single-threaded): reject a
        // doomed large allocation with one popcount instead of claiming and
        // rolling back most of a region.
        if bitmap.free_in_region(self.region_start, self.region_end) < count {
            return Err(FsError::NoSpace);
        }
        let mut claimed: Vec<u64> = Vec::with_capacity(count as usize);
        let result = self.allocate_file_inner(bitmap, count, &mut claimed);
        if result.is_err() {
            // Failed allocation must not leak blocks.
            for &b in &claimed {
                let _ = bitmap.free(b);
            }
        }
        result.map(|()| claimed)
    }

    fn allocate_file_inner(
        &mut self,
        bitmap: &Bitmap,
        count: u64,
        claimed: &mut Vec<u64>,
    ) -> FsResult<()> {
        match self.policy.clone() {
            AllocPolicy::FirstFit => {
                for _ in 0..count {
                    claimed.push(self.allocate_one(bitmap)?);
                }
                Ok(())
            }
            AllocPolicy::Contiguous => {
                let start = bitmap
                    .claim_run(count, self.cursor, self.region_start, self.region_end)
                    .ok_or(FsError::NoSpace)?;
                claimed.extend(start..start + count);
                self.bump_cursor(start + count);
                Ok(())
            }
            AllocPolicy::Fragmented { run } => {
                let run = run.max(1);
                let mut remaining = count;
                while remaining > 0 {
                    let want = remaining.min(run);
                    // Scatter fragments: jump the hint pseudo-randomly so
                    // consecutive fragments of one file land far apart, as on
                    // a well-aged volume.
                    let jump = self.rng.next_below(self.region_end - self.region_start);
                    let hint = self.region_start + jump;
                    let start = bitmap
                        .claim_run(want, hint, self.region_start, self.region_end)
                        .ok_or(FsError::NoSpace)?;
                    claimed.extend(start..start + want);
                    remaining -= want;
                }
                Ok(())
            }
            AllocPolicy::Random => {
                for _ in 0..count {
                    claimed.push(self.claim_random(bitmap)?);
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Superblock;

    fn fixture() -> (Bitmap, u64, u64) {
        let sb = Superblock::compute(1024, 8192, 256, 0).unwrap();
        let start = sb.data_start;
        let end = sb.total_blocks;
        (Bitmap::new(&sb), start, end)
    }

    #[test]
    fn contiguous_allocates_a_single_run() {
        let (bm, start, end) = fixture();
        let mut alloc = Allocator::new(AllocPolicy::Contiguous, start, end, b"seed");
        let blocks = alloc.allocate_file(&bm, 100).unwrap();
        assert_eq!(blocks.len(), 100);
        for w in blocks.windows(2) {
            assert_eq!(w[1], w[0] + 1, "must be contiguous");
        }
        // A second file continues after the first, still contiguous.
        let blocks2 = alloc.allocate_file(&bm, 50).unwrap();
        assert_eq!(blocks2[0], blocks[99] + 1);
    }

    #[test]
    fn fragmented_allocates_runs_of_eight() {
        let (bm, start, end) = fixture();
        let mut alloc = Allocator::new(AllocPolicy::frag_disk(), start, end, b"seed");
        let blocks = alloc.allocate_file(&bm, 64).unwrap();
        assert_eq!(blocks.len(), 64);
        // Every 8-block chunk is internally contiguous.
        for chunk in blocks.chunks(8) {
            for w in chunk.windows(2) {
                assert_eq!(w[1], w[0] + 1);
            }
        }
        // But the file as a whole is not one contiguous run.
        let contiguous = blocks.windows(2).all(|w| w[1] == w[0] + 1);
        assert!(!contiguous, "fragments should be scattered");
    }

    #[test]
    fn random_spreads_blocks() {
        let (bm, start, end) = fixture();
        let mut alloc = Allocator::new(AllocPolicy::Random, start, end, b"seed");
        let blocks = alloc.allocate_file(&bm, 200).unwrap();
        assert_eq!(blocks.len(), 200);
        // All distinct and all within the region.
        let mut sorted = blocks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 200);
        assert!(blocks.iter().all(|&b| b >= start && b < end));
        // Not contiguous in logical order.
        let contiguous = blocks.windows(2).filter(|w| w[1] == w[0] + 1).count();
        assert!(
            contiguous < 50,
            "random allocation should rarely be sequential"
        );
    }

    #[test]
    fn first_fit_fills_front_to_back() {
        let (bm, start, end) = fixture();
        let mut alloc = Allocator::new(AllocPolicy::FirstFit, start, end, b"seed");
        let blocks = alloc.allocate_file(&bm, 10).unwrap();
        assert_eq!(blocks, (start..start + 10).collect::<Vec<_>>());
    }

    #[test]
    fn no_space_detected_before_partial_allocation() {
        let (bm, start, end) = fixture();
        let span = end - start;
        let mut alloc = Allocator::new(AllocPolicy::FirstFit, start, end, b"seed");
        alloc.allocate_file(&bm, span - 5).unwrap();
        let before = bm.allocated_blocks();
        assert!(matches!(
            alloc.allocate_file(&bm, 10),
            Err(FsError::NoSpace)
        ));
        assert_eq!(
            bm.allocated_blocks(),
            before,
            "failed allocation must not leak blocks"
        );
        // The remaining 5 can still be taken.
        assert_eq!(alloc.allocate_file(&bm, 5).unwrap().len(), 5);
    }

    #[test]
    fn contiguous_fails_when_no_run_exists_even_if_space_does() {
        let (bm, start, end) = fixture();
        // Checkerboard: allocate every other block so no run of 2 exists.
        let mut b = start;
        while b < end {
            bm.allocate(b).unwrap();
            b += 2;
        }
        let before = bm.allocated_blocks();
        let mut alloc = Allocator::new(AllocPolicy::Contiguous, start, end, b"seed");
        assert!(matches!(alloc.allocate_file(&bm, 2), Err(FsError::NoSpace)));
        assert_eq!(
            bm.allocated_blocks(),
            before,
            "failed claim fully rolled back"
        );
        // FirstFit still succeeds with the scattered singles.
        let mut ff = Allocator::new(AllocPolicy::FirstFit, start, end, b"seed");
        assert_eq!(ff.allocate_file(&bm, 2).unwrap().len(), 2);
    }

    #[test]
    fn random_allocation_near_full_falls_back_to_scan() {
        let (bm, start, end) = fixture();
        let span = end - start;
        let mut alloc = Allocator::new(AllocPolicy::Random, start, end, b"seed");
        // Fill all but three blocks.
        let mut ff = Allocator::new(AllocPolicy::FirstFit, start, end, b"ff");
        ff.allocate_file(&bm, span - 3).unwrap();
        let picked = alloc.allocate_file(&bm, 3).unwrap();
        assert_eq!(picked.len(), 3);
        assert_eq!(bm.free_in_region(start, end), 0);
        assert!(matches!(alloc.allocate_one(&bm), Err(FsError::NoSpace)));
    }

    #[test]
    fn zero_count_allocation_is_empty() {
        let (bm, start, end) = fixture();
        let mut alloc = Allocator::new(AllocPolicy::Contiguous, start, end, b"seed");
        assert!(alloc.allocate_file(&bm, 0).unwrap().is_empty());
    }

    #[test]
    fn same_seed_same_random_layout() {
        let (bm1, start, end) = fixture();
        let (bm2, _, _) = fixture();
        let mut a1 = Allocator::new(AllocPolicy::Random, start, end, b"same");
        let mut a2 = Allocator::new(AllocPolicy::Random, start, end, b"same");
        assert_eq!(
            a1.allocate_file(&bm1, 50).unwrap(),
            a2.allocate_file(&bm2, 50).unwrap()
        );
    }

    #[test]
    fn probe_draws_do_not_depend_on_bitmap_state() {
        // The placement randomness is drawn eagerly, so two allocators with
        // the same seed stay in lockstep even when one sees a fuller bitmap
        // (its claims just resolve differently) — this is what keeps the
        // allocator meta-lock hold free of bitmap work.
        let (bm1, start, end) = fixture();
        let (bm2, _, _) = fixture();
        for b in start..start + 500 {
            bm2.allocate(b).unwrap();
        }
        let mut a1 = Allocator::new(AllocPolicy::Random, start, end, b"lockstep");
        let mut a2 = Allocator::new(AllocPolicy::Random, start, end, b"lockstep");
        for _ in 0..10 {
            let p1 = a1.draw_probes();
            let p2 = a2.draw_probes();
            assert_eq!(p1.probes, p2.probes);
            assert_eq!(p1.origin, p2.origin);
            let _ = bm1.claim_random(&p1.probes, p1.origin, start, end);
            let _ = bm2.claim_random(&p2.probes, p2.origin, start, end);
        }
    }
}
