//! Error type for the plain file-system layer.

use stegfs_blockdev::BlockError;

/// Result alias for file-system operations.
pub type FsResult<T> = Result<T, FsError>;

/// Errors reported by [`crate::PlainFs`].
#[derive(Debug)]
pub enum FsError {
    /// The named file or directory does not exist.
    NotFound(String),
    /// The name already exists in the target directory.
    AlreadyExists(String),
    /// A path component that must be a directory is a regular file.
    NotADirectory(String),
    /// A directory was used where a regular file is required.
    IsADirectory(String),
    /// A directory that must be empty still contains entries.
    DirectoryNotEmpty(String),
    /// The volume has no free block (or no free inode) left.
    NoSpace,
    /// The path is syntactically invalid (empty component, missing leading
    /// `/`, embedded NUL, over-long name).
    InvalidPath(String),
    /// The file would exceed the maximum size representable by the inode's
    /// block map at this block size.
    FileTooLarge {
        /// Requested size in bytes.
        requested: u64,
        /// Maximum representable size in bytes.
        maximum: u64,
    },
    /// On-disk structures are inconsistent (bad magic, impossible pointer…).
    Corrupt(String),
    /// Error from the underlying block device.
    Block(BlockError),
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "no such file or directory: {p}"),
            FsError::AlreadyExists(p) => write!(f, "already exists: {p}"),
            FsError::NotADirectory(p) => write!(f, "not a directory: {p}"),
            FsError::IsADirectory(p) => write!(f, "is a directory: {p}"),
            FsError::DirectoryNotEmpty(p) => write!(f, "directory not empty: {p}"),
            FsError::NoSpace => write!(f, "no space left on volume"),
            FsError::InvalidPath(p) => write!(f, "invalid path: {p}"),
            FsError::FileTooLarge { requested, maximum } => {
                write!(
                    f,
                    "file of {requested} bytes exceeds maximum {maximum} bytes"
                )
            }
            FsError::Corrupt(msg) => write!(f, "file system corrupt: {msg}"),
            FsError::Block(e) => write!(f, "block device error: {e}"),
        }
    }
}

impl std::error::Error for FsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FsError::Block(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BlockError> for FsError {
    fn from(e: BlockError) -> Self {
        FsError::Block(e)
    }
}

impl FsError {
    /// True if this error means "the object was not found" (used by callers
    /// that probe for existence).
    pub fn is_not_found(&self) -> bool {
        matches!(self, FsError::NotFound(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let cases: Vec<(FsError, &str)> = vec![
            (FsError::NotFound("/a".into()), "no such file"),
            (FsError::AlreadyExists("/a".into()), "already exists"),
            (FsError::NotADirectory("/a".into()), "not a directory"),
            (FsError::IsADirectory("/a".into()), "is a directory"),
            (FsError::DirectoryNotEmpty("/a".into()), "not empty"),
            (FsError::NoSpace, "no space"),
            (FsError::InvalidPath("x".into()), "invalid path"),
            (
                FsError::FileTooLarge {
                    requested: 10,
                    maximum: 5,
                },
                "exceeds maximum",
            ),
            (FsError::Corrupt("bad magic".into()), "corrupt"),
        ];
        for (err, needle) in cases {
            assert!(
                err.to_string().contains(needle),
                "{err} should mention {needle}"
            );
        }
    }

    #[test]
    fn block_error_conversion() {
        let be = BlockError::OutOfRange { block: 3, total: 2 };
        let fe: FsError = be.into();
        assert!(matches!(fe, FsError::Block(_)));
        assert!(fe.to_string().contains("block device error"));
    }

    #[test]
    fn is_not_found_helper() {
        assert!(FsError::NotFound("/x".into()).is_not_found());
        assert!(!FsError::NoSpace.is_not_found());
    }
}
