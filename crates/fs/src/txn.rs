//! File-system transactions: the seam between [`PlainFs`] (and the hidden
//! layer above it) and the write-ahead journal.
//!
//! Every multi-block update — a file rewrite, a create, a delete, a hidden
//! object's chain rebuild — runs through one [`FsTxn`]:
//!
//! * **On a journaled volume** the transaction *buffers*: raw block writes
//!   stage into a redo buffer, inode updates and block frees defer, and
//!   nothing touches the device until [`commit`](FsTxn::commit), which
//!   journals the whole update (with a snapshot of every touched bitmap
//!   block), group-flushes, and only then applies it in place.  A crash at
//!   any point leaves either the complete update (replayable) or none of it.
//! * **On an unjournaled volume** the transaction is a transparent
//!   pass-through with exactly the pre-journal write-through behaviour, so
//!   the simulation harness and the paper-reproduction experiments are
//!   unaffected.
//!
//! Block *allocations* apply to the in-memory bitmap immediately in both
//! modes (concurrent operations must see them), and are rolled back if the
//! transaction is dropped without committing.  Block *frees* defer to commit
//! on a journaled volume: until the update that stops referencing a block is
//! durable, the block must stay allocated, or a crash could leave it owned
//! by both its old object and a later allocation.
//!
//! Two bounded, deliberate imperfections: (1) an update larger than the
//! journal ring commits as a *sequence* of ring-sized transactions — data
//! chunks first, then one final transaction carrying the inode-table
//! read-modify-writes and the bitmap snapshot.  Each chunk is individually
//! crash-atomic and the final transaction is the logical commit point
//! (object references and the bitmap change only there), but a crash or
//! failure mid-sequence can leave a prefix of the new images applied in
//! place: freshly allocated blocks revert to camouflage, while blocks the
//! update was rewriting *in place* can be left torn.  Concurrent threads
//! never observe the partial state (callers hold their operation guards
//! across commit), and on a failed chunk sequence the journal anchor is
//! advanced past the already-committed chunks so they can never replay
//! over blocks a later allocation reuses.  (2) a committing transaction's
//! bitmap snapshot may capture a *concurrent, later-aborted* transaction's
//! allocation bits, so a crash can leak those blocks as
//! allocated-but-unreferenced.  Leaked blocks are indistinguishable from
//! the abandoned blocks the format deliberately scatters (§3.1 of the
//! paper) — camouflage, not corruption — and never double-own (the crash
//! harness asserts this).
//!
//! # Lock and flush ordering
//!
//! [`FsTxn::commit`] acquires, in order: the inode-table stripes of every
//! deferred inode update (ascending stripe index, held across the journal
//! apply so concurrent read-modify-writes of shared table blocks serialise),
//! then the bitmap **segment locks** covering every touched bitmap block
//! (ascending segment index, released before the commit's device flush)
//! under which the deferred frees apply *tentatively* (snapshot, then undo —
//! they re-apply for real only once the transaction is durable), the touched
//! bitmap blocks snapshot, and the journal *stages* — staging under the
//! covering segment locks is what makes bitmap-snapshot order agree with
//! journal sequence order for every block the snapshot covers.  Commits
//! touching disjoint segments stage concurrently; that is the sharded-
//! allocator win.  After the apply, the touched bitmap blocks are
//! re-asserted from the live bitmap (again under their segment locks), so
//! concurrent commits applying snapshots of a shared bitmap block out of
//! order can never leave a stale image as the device's last word.  The journal's own locks and the device
//! flush are leaves below all of this; see `stegfs_journal` for that side.
//! Callers hold their operation's own guards (namespace / content stripe /
//! object shard) across the whole transaction, commit included, so an
//! update is visible to others only once it is durable.

use crate::error::{FsError, FsResult};
use crate::fs::PlainFs;
use crate::inode::{Inode, InodeId};
use std::collections::{BTreeMap, BTreeSet};
use stegfs_blockdev::BlockDevice;
use stegfs_journal::{Journal, JournalError, Tx};

impl From<JournalError> for FsError {
    fn from(e: JournalError) -> Self {
        match e {
            JournalError::Device(e) => FsError::Block(e),
            // The update does not fit in the journal ring — either
            // transiently (concurrent committers hold the slots) or
            // permanently (a single update larger than the ring; the journal
            // must be sized for the largest update the volume will carry).
            // Either way the operation failed cleanly and the volume is
            // intact, which is NoSpace, not corruption.
            JournalError::Full { .. } => FsError::NoSpace,
            other => FsError::Corrupt(format!("journal: {other}")),
        }
    }
}

/// One multi-block update in flight.  See the module docs.
///
/// Dropping a transaction without committing rolls back its in-memory block
/// allocations and discards every buffered write; on a journaled volume the
/// device is untouched.
pub struct FsTxn<'a, D: BlockDevice> {
    fs: &'a PlainFs<D>,
    /// Redo buffer; `Some` iff the volume is journaled.
    tx: Option<Tx>,
    /// Blocks allocated during the operation (rolled back on drop).
    allocated: Vec<u64>,
    /// Blocks whose bitmap bit changed (allocations and frees) — the bitmap
    /// blocks covering them are snapshotted into the journal at commit.
    touched: BTreeSet<u64>,
    /// Frees deferred to commit (journaled volumes only).
    deferred_frees: Vec<u64>,
    /// Inode updates deferred to commit (journaled volumes only).
    deferred_inodes: BTreeMap<InodeId, Inode>,
    committed: bool,
}

impl<'a, D: BlockDevice> FsTxn<'a, D> {
    pub(crate) fn new(fs: &'a PlainFs<D>, journaled: bool) -> Self {
        FsTxn {
            fs,
            tx: journaled.then(Tx::new),
            allocated: Vec::new(),
            touched: BTreeSet::new(),
            deferred_frees: Vec::new(),
            deferred_inodes: BTreeMap::new(),
            committed: false,
        }
    }

    /// The file system this transaction writes to.
    pub fn fs(&self) -> &'a PlainFs<D> {
        self.fs
    }

    /// True when updates buffer into the journal (false = write-through).
    pub fn journaled(&self) -> bool {
        self.tx.is_some()
    }

    /// Block size of the underlying volume.
    pub fn block_size(&self) -> usize {
        self.fs.block_size()
    }

    // ------------------------------------------------------------------
    // Raw block I/O (overlay-aware)
    // ------------------------------------------------------------------

    /// Read one block, seeing this transaction's own buffered writes.
    pub fn read_raw_block(&self, block: u64) -> FsResult<Vec<u8>> {
        if let Some(tx) = &self.tx {
            if let Some(data) = tx.read(block) {
                return Ok(data.to_vec());
            }
        }
        self.fs.read_raw_block(block)
    }

    /// Read a whole extent list (one batched submission for the blocks this
    /// transaction has not overwritten), seeing buffered writes.
    pub fn read_raw_blocks(&self, blocks: &[u64]) -> FsResult<Vec<u8>> {
        let Some(tx) = &self.tx else {
            return self.fs.read_raw_blocks(blocks);
        };
        let bs = self.fs.block_size();
        let mut out = vec![0u8; blocks.len() * bs];
        let mut missing: Vec<(usize, u64)> = Vec::new();
        for (i, &block) in blocks.iter().enumerate() {
            match tx.read(block) {
                Some(data) => out[i * bs..(i + 1) * bs].copy_from_slice(data),
                None => missing.push((i, block)),
            }
        }
        if !missing.is_empty() {
            let miss_blocks: Vec<u64> = missing.iter().map(|&(_, b)| b).collect();
            let fetched = self.fs.read_raw_blocks(&miss_blocks)?;
            for (j, &(i, _)) in missing.iter().enumerate() {
                out[i * bs..(i + 1) * bs].copy_from_slice(&fetched[j * bs..(j + 1) * bs]);
            }
        }
        Ok(out)
    }

    /// Stage (journaled) or immediately perform (unjournaled) one block
    /// write.
    pub fn write_raw_block(&mut self, block: u64, data: &[u8]) -> FsResult<()> {
        match &mut self.tx {
            Some(tx) => {
                // Validate now, as the device would on an unjournaled
                // volume, instead of failing the whole batch at commit.
                check_staged_write(self.fs, block, data.len())?;
                tx.write(block, data.to_vec());
                Ok(())
            }
            None => self.fs.write_raw_block(block, data),
        }
    }

    /// Stage or immediately perform a batched extent write (`data` is the
    /// concatenation of the block images in `blocks` order).
    pub fn write_raw_blocks(&mut self, blocks: &[u64], data: &[u8]) -> FsResult<()> {
        match &mut self.tx {
            Some(tx) => {
                let bs = self.fs.block_size();
                if data.len() != blocks.len() * bs {
                    return Err(FsError::Corrupt(format!(
                        "staged extent of {} blocks with {} bytes",
                        blocks.len(),
                        data.len()
                    )));
                }
                for (i, &block) in blocks.iter().enumerate() {
                    check_staged_write(self.fs, block, bs)?;
                    tx.write(block, data[i * bs..(i + 1) * bs].to_vec());
                }
                Ok(())
            }
            None => self.fs.write_raw_blocks(blocks, data),
        }
    }

    // ------------------------------------------------------------------
    // Allocation (immediate, rolled back on drop) and frees (deferred)
    // ------------------------------------------------------------------

    fn note_allocated(&mut self, block: u64) {
        self.allocated.push(block);
        self.touched.insert(block);
    }

    /// Allocate one uniformly random free data-region block.
    pub fn allocate_random_block(&mut self) -> FsResult<u64> {
        let block = self.fs.allocate_random_block()?;
        self.note_allocated(block);
        Ok(block)
    }

    /// Atomically check-and-claim a specific data-region block; `Ok(false)`
    /// when it is already taken.
    pub fn try_allocate_specific_block(&mut self, block: u64) -> FsResult<bool> {
        if self.fs.try_allocate_specific_block(block)? {
            self.note_allocated(block);
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Allocate `count` data blocks with the current policy (the plain
    /// file-content allocator).
    pub(crate) fn allocate_file_blocks(&mut self, count: u64) -> FsResult<Vec<u64>> {
        let blocks = self.fs.allocate_file_blocks_raw(count)?;
        for &b in &blocks {
            self.note_allocated(b);
        }
        Ok(blocks)
    }

    /// Allocate one block with the current policy.
    pub(crate) fn allocate_one(&mut self) -> FsResult<u64> {
        let block = self.fs.allocate_one_raw()?;
        self.note_allocated(block);
        Ok(block)
    }

    /// Release `block`.  Journaled: deferred until commit (the block stays
    /// allocated while the update that drops it is still volatile);
    /// unjournaled: immediate.
    pub fn free_block(&mut self, block: u64) -> FsResult<()> {
        if self.tx.is_some() {
            self.touched.insert(block);
            self.deferred_frees.push(block);
            Ok(())
        } else {
            self.fs.free_raw_block(block)
        }
    }

    // ------------------------------------------------------------------
    // Inode updates (deferred on journaled volumes)
    // ------------------------------------------------------------------

    /// Stage (journaled) or immediately write (unjournaled) inode `id`.
    pub(crate) fn set_inode(&mut self, id: InodeId, inode: &Inode) -> FsResult<()> {
        if self.tx.is_some() {
            self.deferred_inodes.insert(id, inode.clone());
            Ok(())
        } else {
            self.fs.write_inode_direct(id, inode)
        }
    }

    /// Read inode `id`, seeing this transaction's own staged update.
    pub(crate) fn read_inode(&self, id: InodeId) -> FsResult<Inode> {
        if let Some(inode) = self.deferred_inodes.get(&id) {
            return Ok(inode.clone());
        }
        self.fs.read_inode_raw(id)
    }

    // ------------------------------------------------------------------
    // Commit
    // ------------------------------------------------------------------

    /// Make the update durable.  Unjournaled volumes: a no-op (everything
    /// was written through already).  Journaled volumes: stage the deferred
    /// inode read-modify-writes and the touched bitmap blocks into the redo
    /// buffer, journal it (sequence assigned under the covering bitmap
    /// segment locks, see the module docs), group-flush, and apply in place.
    pub fn commit(mut self) -> FsResult<()> {
        let Some(mut tx) = self.tx.take() else {
            self.committed = true;
            return Ok(());
        };
        let fs = self.fs;
        let journal = fs.journal_ref().expect("journaled txn without a journal");

        // Pressure valve: with the ring nearly full, checkpoint now rather
        // than stage into a ring that reclaim would block on anyway.
        fs.maybe_steal_checkpoint();

        // Deferred inode updates become read-modify-writes of their table
        // blocks, under the table-block stripes (held through the apply).
        let mut by_table_block: BTreeMap<u64, Vec<InodeId>> = BTreeMap::new();
        let mut locations: BTreeMap<InodeId, (u64, usize)> = BTreeMap::new();
        for &id in self.deferred_inodes.keys() {
            let (block, offset) = fs.inode_location(id)?;
            by_table_block.entry(block).or_default().push(id);
            locations.insert(id, (block, offset));
        }
        let _table_guards = fs.lock_itable_stripes(by_table_block.keys().copied());
        for (&table_block, ids) in &by_table_block {
            let mut buf = match tx.read(table_block) {
                Some(data) => data.to_vec(),
                None => fs.read_raw_block(table_block)?,
            };
            for id in ids {
                let (_, offset) = locations[id];
                let inode = &self.deferred_inodes[id];
                buf[offset..offset + crate::layout::INODE_SIZE].copy_from_slice(&inode.serialize());
            }
            tx.write(table_block, buf);
        }

        // Which bitmap blocks (region indices) the final transaction will
        // snapshot.  The block→bitmap-block mapping is static geometry (no
        // lock needed), so computing it up front both sizes the final chunk
        // exactly and is reused at staging time.
        let mut indices: BTreeSet<u64> = BTreeSet::new();
        for &b in &self.touched {
            indices.insert(fs.bitmap().bitmap_block_of(b));
        }

        // An update larger than the journal ring commits as a sequence of
        // ring-sized transactions: data chunks first, then the final
        // transaction with the inode-table blocks (staged last, so they sit
        // at the tail of the write set) and the bitmap snapshot — the
        // logical commit point.  See the module docs for the weakened (but
        // bounded) crash semantics of the chunked path.
        let max = journal.max_tx_targets() as usize;
        let final_budget = max.saturating_sub(indices.len());
        if final_budget == 0 {
            // Even the bitmap snapshot alone exceeds the ring.
            return Err(FsError::NoSpace);
        }
        let mut chunked = false;
        if tx.len() > final_budget {
            chunked = true;
            let mut preliminary = std::mem::take(&mut tx).into_writes();
            let final_writes = preliminary.split_off(preliminary.len() - final_budget);
            // Preliminary chunks group into batches of up to half the ring:
            // one journal submission and one group flush per batch instead
            // of per chunk (`Journal::stage_many` / `persist_many`), while
            // each chunk stays its own independently replayable transaction.
            let group_budget = (journal.capacity_slots() / 2).max(1);
            let mut group: Vec<Tx> = Vec::new();
            let mut group_slots = 0u64;
            while !preliminary.is_empty() {
                let rest = if preliminary.len() > max {
                    preliminary.split_off(max)
                } else {
                    Vec::new()
                };
                let mut chunk = Tx::new();
                for (block, data) in preliminary {
                    chunk.write(block, data);
                }
                preliminary = rest;
                let chunk_slots = journal.slots_for_targets(chunk.len());
                if !group.is_empty() && group_slots + chunk_slots > group_budget {
                    if let Err(e) =
                        Self::commit_chunk_group(fs, journal, std::mem::take(&mut group))
                    {
                        // Earlier chunks are committed and applied; advance
                        // the anchor past them so they can never replay over
                        // blocks Drop is about to free for reuse.
                        let _ = journal.sync(fs.observed_device());
                        return Err(e);
                    }
                    group_slots = 0;
                }
                group_slots += chunk_slots;
                group.push(chunk);
            }
            if let Err(e) = Self::commit_chunk_group(fs, journal, group) {
                let _ = journal.sync(fs.observed_device());
                return Err(e);
            }
            for (block, data) in final_writes {
                tx.write(block, data);
            }
        }

        let result = self.commit_final(tx, journal, &indices);
        if result.is_err() && chunked {
            let _ = journal.sync(fs.observed_device());
        }
        if result.is_ok() {
            // Hand the (volatile-tail) checkpoint work to the daemon, if one
            // is running — the commit path itself never pays for it.
            fs.notify_checkpoint();
        }
        result
    }

    /// Stage, persist and apply a batch of preliminary chunks of an
    /// oversized update: one journal submission and one group flush for the
    /// whole batch, each chunk still its own crash-atomic transaction.
    /// Chunks carry only freshly written block images — no shared state — so
    /// the batch commits outside the bitmap segment locks.
    fn commit_chunk_group(fs: &'a PlainFs<D>, journal: &Journal, chunks: Vec<Tx>) -> FsResult<()> {
        let staged = journal
            .stage_many(fs.observed_device(), chunks)
            .map_err(FsError::from)?;
        if staged.is_empty() {
            return Ok(());
        }
        journal.persist_many(fs.observed_device(), &staged)?;
        journal.apply_many(fs.observed_device(), staged, || Ok(()))?;
        Ok(())
    }

    /// The (ring-sized) final transaction: bitmap snapshot, journal commit
    /// point, deferred frees, in-place apply.
    fn commit_final(
        &mut self,
        mut tx: Tx,
        journal: &Journal,
        indices: &BTreeSet<u64>,
    ) -> FsResult<()> {
        let fs = self.fs;
        // The bitmap snapshot, staged while holding the segment locks
        // covering every touched bitmap block, together with the journal
        // sequence assignment.  The deferred frees are applied *tentatively*
        // — serialise, then undo — all under one guard hold: the snapshot
        // shows the post-free state replay must restore, but until the
        // transaction is durable no other thread can observe (or be handed)
        // a freed block, so a failure at any later step leaves nothing to
        // take back.
        let staged = {
            let mut guard = fs.bitmap().lock_blocks(indices);
            for &b in &self.deferred_frees {
                guard.free(b)?;
            }
            for &idx in indices {
                tx.write(guard.device_block_of(idx), guard.serialize_block(idx));
            }
            for &b in &self.deferred_frees {
                guard.allocate(b)?; // undo: nothing escaped the guard
            }
            journal
                .stage(fs.observed_device(), std::mem::take(&mut tx))
                .map_err(FsError::from)?
        };
        let Some(staged) = staged else {
            self.committed = true;
            return Ok(());
        };

        // The commit point.  On failure the transaction never became
        // durable and nothing was exposed: `committed` stays false, so Drop
        // rolls the allocations back and the deferred frees simply never
        // happen.  (After a *flush* error the slots could still have hit
        // the platter — see `Journal::persist`; a volume that reports
        // persist errors should be remounted.)
        journal.persist(fs.observed_device(), &staged)?;
        self.committed = true;

        // Durable now: release the deferred frees for real (the blocks
        // stayed allocated throughout, so this cannot race), then apply the
        // staged images in place.  The post-apply callback re-asserts the
        // touched bitmap blocks from the live bitmap under their segment
        // locks: concurrent commits apply their snapshots in arbitrary
        // order, and without the re-assert a stale snapshot could stand as
        // the device's last word once the journal tail advances past both
        // transactions.
        for &b in &self.deferred_frees {
            fs.bitmap().free(b)?;
        }
        journal.apply(fs.observed_device(), staged, || {
            fs.rewrite_bitmap_blocks(indices).map_err(|e| match e {
                FsError::Block(b) => stegfs_journal::JournalError::Device(b),
                other => stegfs_journal::JournalError::Device(stegfs_blockdev::BlockError::Io(
                    std::io::Error::other(other.to_string()),
                )),
            })
        })?;
        Ok(())
    }
}

/// Validate a staged write's geometry against the device, mirroring what an
/// immediate write would report.
fn check_staged_write<D: BlockDevice>(fs: &PlainFs<D>, block: u64, len: usize) -> FsResult<()> {
    let dev = fs.device();
    if block >= dev.total_blocks() {
        return Err(FsError::Block(stegfs_blockdev::BlockError::OutOfRange {
            block,
            total: dev.total_blocks(),
        }));
    }
    if len != dev.block_size() {
        return Err(FsError::Block(
            stegfs_blockdev::BlockError::BadBufferLength {
                got: len,
                expected: dev.block_size(),
            },
        ));
    }
    Ok(())
}

impl<D: BlockDevice> Drop for FsTxn<'_, D> {
    fn drop(&mut self) {
        if self.committed {
            return;
        }
        // Roll back this operation's in-memory allocations; buffered writes
        // and deferred frees simply vanish.  Best effort: a rollback of a
        // block that was also deferred-freed (never happens in practice)
        // reports "already free" and is ignored.
        for &block in &self.allocated {
            let _ = self.fs.free_raw_block(block);
        }
    }
}
