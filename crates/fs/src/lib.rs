//! # stegfs-fs
//!
//! The plain (non-steganographic) file-system substrate that StegFS is built
//! on, corresponding to the "central directory", bitmap and plain files of
//! Figure 1 in the paper.
//!
//! The layer provides:
//!
//! * an on-disk layout (superblock, block bitmap, inode table, data region),
//! * a **central directory** — the inode table plus a hierarchical directory
//!   tree — through which every *plain* file is reachable,
//! * whole-file and positional read/write with direct, single-indirect and
//!   double-indirect block mapping,
//! * pluggable [`AllocPolicy`] block-allocation policies.  `Contiguous`
//!   reproduces the paper's *CleanDisk* baseline (freshly formatted volume,
//!   contiguous files), `Fragmented { run: 8 }` reproduces *FragDisk*
//!   (well-used volume, 8-block fragments), and `Random` is what StegFS uses
//!   for hidden data blocks,
//! * raw bitmap and raw block access for the StegFS layer, which allocates
//!   blocks for hidden objects **without** registering them in the central
//!   directory.
//!
//! The crate deliberately contains no encryption and no hiding; those live in
//! `stegfs-core`.  Keeping the plain layer separate also gives the evaluation
//! its CleanDisk / FragDisk baselines "for free", on exactly the same device
//! and disk model as StegFS itself.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod bitmap;
pub mod dir;
pub mod error;
pub mod fs;
pub mod inode;
pub mod layout;
pub mod rmw;
pub mod txn;

pub use alloc::AllocPolicy;
pub use error::{FsError, FsResult};
pub use fs::{FormatOptions, PlainFs};
pub use inode::{FileKind, Inode, InodeId};
pub use layout::Superblock;
pub use txn::FsTxn;
