//! The keyed offline scavenger: walk, verify, repair.
//!
//! [`scavenge`] is what an administrator with (some of) the volume's User
//! Access Keys runs after suspected media damage — the hidden-object
//! equivalent of `fsck`, except that it can only check what its keys can
//! reach.  For every supplied UAK it enumerates the key's hidden
//! directory, recurses into hidden subdirectories, and hands each object
//! to [`StegFs::scavenge_entry`]: shares are verified against their
//! recorded checksums and damaged ones are rebuilt from the survivors and
//! rewritten in place through an ordinary journaled transaction.
//!
//! Repair is fail-closed per object: a group with fewer than `m` live
//! shares leaves the object untouched and is reported in
//! [`ScavengeReport::lost`] — the scavenger never writes a partial
//! reconstruction, and a later pass with a fuller set of shares (say after
//! imaging a second damaged mirror) can still succeed.
//!
//! Directories get one extra recovery tier: when a directory *object* is
//! lost beyond its redundancy, the pass tries
//! [`StegFs::rebuild_dir_from_shadow`] — re-creating the directory in
//! place from its shadow listing and re-linking every child whose own
//! object still probes — and then recurses into the recovered subtree, so
//! one dead interior node no longer severs its descendants.

use stegfs_blockdev::BlockDevice;
use stegfs_core::hidden::RepairOutcome;
use stegfs_core::{DirectoryEntry, ObjectKind, StegFs, StegResult};

/// What a [`scavenge`] pass over one volume found and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScavengeReport {
    /// Hidden objects reached through the supplied keys (files and
    /// directories, including UAK directory objects themselves are *not*
    /// counted — only registered entries).
    pub objects_scanned: usize,
    /// Objects whose every share verified; nothing written.
    pub objects_intact: usize,
    /// Objects with damage that was fully reversed.
    pub objects_repaired: usize,
    /// Objects that could not be reconstructed (or could not be opened at
    /// all); nothing was written for them.
    pub objects_lost: usize,
    /// Total share blocks rebuilt and rewritten across all repairs.
    pub shares_rewritten: usize,
    /// Lost directory objects re-created in place from their shadow
    /// listings (counted under `objects_repaired`, not `objects_lost`).
    pub subtrees_rebuilt: usize,
    /// Children re-linked into rebuilt directories across all rebuilds.
    pub children_relinked: usize,
    /// Logical names of the lost objects, for the operator.  Children a
    /// rebuild had to drop (their own objects no longer probe) appear here
    /// under their path inside the rebuilt directory.
    pub lost: Vec<String>,
}

impl ScavengeReport {
    /// True when every reached object is readable (intact or repaired).
    pub fn all_recovered(&self) -> bool {
        self.objects_lost == 0
    }
}

/// Last-resort handling for a directory object that is lost beyond its own
/// redundancy: rebuild it in place from the shadow listing.  Success counts
/// as a repair (the subtree is reachable again); failure — no shadow, or the
/// shadow is damaged too — reports the directory lost as before.
fn rebuild_lost_dir<D: BlockDevice>(
    fs: &StegFs<D>,
    entry: &DirectoryEntry,
    path: &str,
    report: &mut ScavengeReport,
) {
    match fs.rebuild_dir_from_shadow(entry) {
        Ok(rebuilt) => {
            report.objects_repaired += 1;
            report.subtrees_rebuilt += 1;
            report.children_relinked += rebuilt.children_relinked;
            for name in rebuilt.children_dropped {
                report.objects_lost += 1;
                report.lost.push(format!("{path}/{name}"));
            }
        }
        Err(_) => {
            report.objects_lost += 1;
            report.lost.push(path.to_string());
        }
    }
}

fn visit<D: BlockDevice>(
    fs: &StegFs<D>,
    entry: &DirectoryEntry,
    path: &str,
    report: &mut ScavengeReport,
) -> StegResult<()> {
    report.objects_scanned += 1;
    match fs.scavenge_entry(entry) {
        Ok(RepairOutcome::Intact) => report.objects_intact += 1,
        Ok(RepairOutcome::Repaired { shares_rebuilt }) => {
            report.objects_repaired += 1;
            report.shares_rewritten += shares_rebuilt;
        }
        Ok(RepairOutcome::Lost { .. }) if entry.kind == ObjectKind::Directory => {
            rebuild_lost_dir(fs, entry, path, report);
        }
        Ok(RepairOutcome::Lost { .. }) => {
            report.objects_lost += 1;
            report.lost.push(path.to_string());
        }
        // An object that cannot even be opened (destroyed header, torn
        // chain) gets the same treatment; the walk continues so one
        // casualty does not hide the rest of the report.
        Err(_) if entry.kind == ObjectKind::Directory => {
            rebuild_lost_dir(fs, entry, path, report);
        }
        Err(_) => {
            report.objects_lost += 1;
            report.lost.push(path.to_string());
        }
    }
    if entry.kind == ObjectKind::Directory {
        // Recurse only if the listing is readable — which, after a shadow
        // rebuild, it is again; a directory that stayed lost has an
        // unreachable subtree, already reported.
        if let Ok(listing) = fs.read_hidden_dir_listing(entry) {
            for child in &listing.entries {
                let child_path = format!("{path}/{}", child.name);
                visit(fs, child, &child_path, report)?;
            }
        }
    }
    Ok(())
}

/// Scan every hidden object reachable with `uaks`, verify all shares and
/// repair what the surviving shares allow.  See the module docs for the
/// model; per-object semantics are those of [`StegFs::scavenge_entry`].
///
/// The pass is offline in spirit — run it on a freshly mounted volume with
/// no concurrent sessions — but takes the ordinary shared-reference
/// [`StegFs`], so nothing stops a live volume from self-scrubbing during a
/// quiet period.
pub fn scavenge<D: BlockDevice>(fs: &StegFs<D>, uaks: &[&str]) -> StegResult<ScavengeReport> {
    let mut report = ScavengeReport::default();
    for uak in uaks {
        for (name, _) in fs.list_hidden(uak)? {
            let entry = fs.lookup_entry(&name, uak)?;
            visit(fs, &entry, &name, &mut report)?;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stegfs_blockdev::{CorruptingDevice, MemBlockDevice};
    use stegfs_core::{Policy, StegParams};

    const UAK: &str = "scavenger owner key";

    fn fixture() -> StegFs<CorruptingDevice<MemBlockDevice>> {
        let dev = CorruptingDevice::new(MemBlockDevice::new(1024, 8192));
        let mut params = StegParams::for_tests();
        params.hidden_policy = Policy::Disperse { m: 2, n: 4 };
        StegFs::format(dev, params).unwrap()
    }

    #[test]
    fn clean_volume_scans_intact() {
        let fs = fixture();
        fs.steg_create("a", UAK, ObjectKind::File).unwrap();
        fs.write_hidden_with_key("a", UAK, &vec![7u8; 5000])
            .unwrap();
        fs.steg_create("d", UAK, ObjectKind::Directory).unwrap();
        let d = fs.lookup_entry("d", UAK).unwrap();
        fs.create_dir_child(&d, "b", ObjectKind::File).unwrap();

        let report = scavenge(&fs, &[UAK]).unwrap();
        assert_eq!(report.objects_scanned, 3); // a, d, d/b
        assert_eq!(report.objects_intact, 3);
        assert_eq!(report.objects_repaired, 0);
        assert!(report.all_recovered());
    }

    #[test]
    fn damaged_shares_are_repaired_and_excess_damage_reported_lost() {
        let fs = fixture();
        fs.steg_create("keep", UAK, ObjectKind::File).unwrap();
        fs.write_hidden_with_key("keep", UAK, &vec![3u8; 6000])
            .unwrap();
        fs.steg_create("gone", UAK, ObjectKind::File).unwrap();
        fs.write_hidden_with_key("gone", UAK, &vec![4u8; 6000])
            .unwrap();

        let dev = fs.plain_fs().device().clone();
        // "keep": destroy exactly n-m = 2 shares of every group.
        for group in fs.hidden_share_extents("keep", UAK).unwrap() {
            dev.zero_block(group[0]).unwrap();
            dev.overwrite_region(group[2], 1, 77).unwrap();
        }
        // "gone": destroy 3 > n-m shares of its first group.
        let groups = fs.hidden_share_extents("gone", UAK).unwrap();
        for &b in &groups[0][..3] {
            dev.zero_block(b).unwrap();
        }
        fs.purge_read_caches();

        let report = scavenge(&fs, &[UAK]).unwrap();
        assert_eq!(report.objects_scanned, 2);
        assert_eq!(report.objects_repaired, 1);
        assert_eq!(report.objects_lost, 1);
        assert_eq!(report.lost, vec!["gone".to_string()]);
        assert!(report.shares_rewritten >= 2);

        // The repaired object reads back in full; the lost one fails
        // closed rather than returning torn plaintext.
        assert_eq!(
            fs.read_hidden_with_key("keep", UAK).unwrap(),
            vec![3u8; 6000]
        );
        assert!(fs.read_hidden_with_key("gone", UAK).is_err());
    }

    #[test]
    fn lost_interior_directory_is_rebuilt_from_its_shadow() {
        let fs = fixture();
        fs.steg_create("d", UAK, ObjectKind::Directory).unwrap();
        let d = fs.lookup_entry("d", UAK).unwrap();
        fs.create_dir_child(&d, "b", ObjectKind::File).unwrap();
        fs.create_dir_child(&d, "sub", ObjectKind::Directory)
            .unwrap();
        let listing = fs.read_hidden_dir_listing(&d).unwrap();
        let sub = listing.find("sub").cloned().unwrap();
        fs.steg_connect("d", UAK).unwrap();
        fs.write_hidden("b", &vec![9u8; 5000]).unwrap();
        fs.create_dir_child(&sub, "leaf", ObjectKind::File).unwrap();

        // Destroy every header replica of the interior directory "d":
        // damage past its metadata redundancy, so it cannot even be opened.
        let keys = stegfs_core::crypt::ObjectKeys::derive(&d.physical_name, &d.fak);
        let obj =
            stegfs_core::hidden::open(fs.plain_fs(), &d.physical_name, &keys, fs.params()).unwrap();
        let dev = fs.plain_fs().device().clone();
        for &h in &obj.header.header_replicas {
            dev.zero_block(h).unwrap();
        }
        fs.purge_read_caches();
        assert!(fs.read_hidden_dir_listing(&d).is_err());

        // The pass rebuilds "d" from its shadow and keeps walking: the
        // whole subtree is scanned through the recovered listing.
        let report = scavenge(&fs, &[UAK]).unwrap();
        assert_eq!(report.objects_scanned, 4); // d, d/b, d/sub, d/sub/leaf
        assert_eq!(report.subtrees_rebuilt, 1);
        assert_eq!(report.children_relinked, 2);
        assert_eq!(report.objects_lost, 0);
        assert!(report.all_recovered());
        assert_eq!(fs.read_hidden("b").unwrap(), vec![9u8; 5000]);
        assert!(fs
            .read_hidden_dir_listing(&sub)
            .unwrap()
            .find("leaf")
            .is_some());
    }

    #[test]
    fn rebuild_drops_children_that_no_longer_probe() {
        let fs = fixture();
        fs.steg_create("d", UAK, ObjectKind::Directory).unwrap();
        let d = fs.lookup_entry("d", UAK).unwrap();
        fs.create_dir_child(&d, "keep", ObjectKind::File).unwrap();
        fs.create_dir_child(&d, "gone", ObjectKind::File).unwrap();
        let listing = fs.read_hidden_dir_listing(&d).unwrap();
        let gone = listing.find("gone").cloned().unwrap();
        fs.steg_connect("d", UAK).unwrap();
        fs.write_hidden("keep", &vec![5u8; 4000]).unwrap();

        let dev = fs.plain_fs().device().clone();
        for entry in [&d, &gone] {
            let keys = stegfs_core::crypt::ObjectKeys::derive(&entry.physical_name, &entry.fak);
            let obj =
                stegfs_core::hidden::open(fs.plain_fs(), &entry.physical_name, &keys, fs.params())
                    .unwrap();
            for &h in &obj.header.header_replicas {
                dev.zero_block(h).unwrap();
            }
        }
        fs.purge_read_caches();

        let report = scavenge(&fs, &[UAK]).unwrap();
        assert_eq!(report.objects_scanned, 2); // d, then d/keep via the rebuilt listing
        assert_eq!(report.subtrees_rebuilt, 1);
        assert_eq!(report.children_relinked, 1);
        assert_eq!(report.objects_lost, 1);
        assert_eq!(report.lost, vec!["d/gone".to_string()]);
        assert_eq!(fs.read_hidden("keep").unwrap(), vec![5u8; 4000]);
    }

    #[test]
    fn unknown_keys_see_nothing() {
        let fs = fixture();
        fs.steg_create("a", UAK, ObjectKind::File).unwrap();
        let report = scavenge(&fs, &["some other key"]).unwrap();
        assert_eq!(report.objects_scanned, 0);
        assert!(report.all_recovered());
    }
}
