//! # stegfs-survival
//!
//! k-of-n survivability for the StegFS reproduction.
//!
//! A StegFS volume hides objects so well that nobody — including the file
//! system — can enumerate them.  That is precisely what makes media damage
//! dangerous: a conventional `fsck` cannot find hidden objects to check,
//! and an unlucky sector loss silently destroys data that no scan will
//! ever miss.  This crate closes the gap with two pieces:
//!
//! * the **durability policies** live in `stegfs-core`
//!   ([`Policy::Replicate`] and [`Policy::Disperse`] spread each logical
//!   block group over `n` share blocks, any `m` of which reconstruct it;
//!   shares are ordinary encrypted hidden blocks placed by independent
//!   locator probes, so a coded volume is indistinguishable from a plain
//!   one);
//! * the **keyed offline scavenger** ([`scavenge()`]) walks every hidden
//!   object reachable with a set of access keys, verifies each share
//!   against its recorded checksum, and rewrites damaged shares from the
//!   survivors.  Because splitting is deterministic and the per-block
//!   cipher is keyed by block number, a repaired image is byte-identical
//!   to one that was never damaged.
//!
//! The scavenger is *keyed* by necessity: without the access keys, hidden
//! objects cannot be found — which is the deniability property, not a
//! limitation.  Objects whose keys are not supplied are simply not
//! visited, exactly as an adversary would (not) see them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scavenge;

pub use scavenge::{scavenge, ScavengeReport};
pub use stegfs_core::hidden::RepairOutcome;
pub use stegfs_core::Policy;
