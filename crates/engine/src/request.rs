//! The request/response vocabulary of the engine.

use std::io::SeekFrom;
use std::time::Duration;
use stegfs_vfs::{OpenOptions, VfsDirEntry, VfsHandle, VfsResult, VfsStat};

/// Identifier of a submitted request, unique **per client** (each client
/// numbers its own submissions from 1).
pub type RequestId = u64;

/// One file-system request, covering both namespaces: paths starting with
/// `/plain` resolve in the shared central directory, paths starting with
/// `/hidden` resolve against the submitting client's session key.
#[derive(Debug, Clone)]
pub enum Request {
    /// Open a file, yielding a [`Response::Handle`].
    Open {
        /// Unified-namespace path (`/plain/...` or `/hidden/...`).
        path: String,
        /// Access-mode options, as for [`stegfs_vfs::Vfs::open`].
        opts: OpenOptions,
    },
    /// Close a handle.
    Close {
        /// The handle to close.
        handle: VfsHandle,
    },
    /// Streaming read at the handle's current offset, advancing it.
    Read {
        /// Source handle.
        handle: VfsHandle,
        /// Maximum number of bytes to read.
        len: usize,
    },
    /// Positional read; does not touch the stream offset.
    ReadAt {
        /// Source handle.
        handle: VfsHandle,
        /// Byte offset to read from.
        offset: u64,
        /// Maximum number of bytes to read.
        len: usize,
    },
    /// Streaming write at the handle's current offset (or at end-of-file for
    /// append handles), advancing it.
    Write {
        /// Destination handle.
        handle: VfsHandle,
        /// Bytes to write.
        data: Vec<u8>,
    },
    /// Positional write, extending the file as needed.
    WriteAt {
        /// Destination handle.
        handle: VfsHandle,
        /// Byte offset to write at.
        offset: u64,
        /// Bytes to write.
        data: Vec<u8>,
    },
    /// Reposition the handle's stream offset.
    Seek {
        /// The handle whose offset moves.
        handle: VfsHandle,
        /// Target position.
        pos: SeekFrom,
    },
    /// Stat a path.
    Stat {
        /// Path to stat.
        path: String,
    },
    /// List a directory.
    Readdir {
        /// Directory path.
        path: String,
    },
    /// Remove a file or empty directory.
    Unlink {
        /// Path to remove.
        path: String,
    },
    /// Flush the state behind a handle to stable storage.  On a journaled
    /// volume this checkpoints; concurrent `Fsync`s from different workers
    /// share one device barrier (group commit), so a fsync-heavy client mix
    /// does not serialise the pool behind the flush latency.
    Fsync {
        /// The handle whose state must be durable.
        handle: VfsHandle,
    },
    /// Checkpoint the whole volume: flush the cache, advance the journal
    /// tail, and persist the anchor.  After the completion arrives, a crash
    /// replays nothing.
    SyncAll,
}

/// The successful payload of a completed request.
#[derive(Debug)]
pub enum Response {
    /// An opened handle ([`Request::Open`]).
    Handle(VfsHandle),
    /// Bytes read ([`Request::Read`] / [`Request::ReadAt`]).
    Data(Vec<u8>),
    /// Number of bytes written ([`Request::Write`] / [`Request::WriteAt`]).
    Written(usize),
    /// The stream offset after a [`Request::Seek`].
    Offset(u64),
    /// Stat result ([`Request::Stat`]).
    Stat(VfsStat),
    /// Directory listing ([`Request::Readdir`]).
    Listing(Vec<VfsDirEntry>),
    /// No payload ([`Request::Close`] / [`Request::Unlink`] /
    /// [`Request::Fsync`] / [`Request::SyncAll`]).
    Unit,
}

/// The terminal record of one request: its result plus its timing, delivered
/// to the submitting client's completion queue.
#[derive(Debug)]
pub struct Completion {
    /// Id the request was submitted under.
    pub id: RequestId,
    /// The outcome.  Errors travel the same deniable families as direct
    /// `Vfs` calls — through the engine, "wrong key", "never existed" and
    /// "stale handle" remain indistinguishable
    /// ([`stegfs_vfs::VfsError::is_not_found`]).
    pub result: VfsResult<Response>,
    /// Submission-to-completion wall-clock time (includes queue wait).
    pub latency: Duration,
    /// Pure execution time on the worker (excludes queue wait).
    pub service: Duration,
}
