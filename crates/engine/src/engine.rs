//! The engine proper: the shared job queue, the worker pool, and the
//! per-client completion queues.

use crate::request::{Completion, Request, RequestId, Response};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, TryLockError};
use std::thread::JoinHandle;
use std::time::Instant;
use stegfs_blockdev::BlockDevice;
use stegfs_obs::{span, LockStats, Obs, ENGINE_OPS};
use stegfs_vfs::{SessionId, Vfs, VfsError, VfsResult};

/// One queued unit of work.
struct Job {
    client: Arc<ClientShared>,
    id: RequestId,
    session: SessionId,
    request: Request,
    submitted: Instant,
}

/// State shared between the engine handle, its workers and every client.
struct EngineShared {
    queue: Mutex<VecDeque<Job>>,
    job_ready: Condvar,
    shutting_down: AtomicBool,
    /// Set when a request panicked mid-execution.  A panic can unwind out of
    /// a core critical section with the protected state half-mutated
    /// (parking_lot locks do not poison), so the engine **fails stop**: no
    /// further request touches the volume — queued and future work drains as
    /// error completions, and nobody hangs.
    poisoned: AtomicBool,
    completed: AtomicU64,
    /// The volume's observability registry (queue-lock contention, queue
    /// depth, per-op latency).  Grabbed from the VFS at engine start.
    obs: Arc<Obs>,
}

/// Lock the engine queue, feeding the wait into the registry's
/// `engine.queue` lock family.  The engine queue pairs a std `Mutex` with a
/// `Condvar`, so it cannot adopt `TimedMutex` wholesale; this helper covers
/// the acquisition (the contended part — `Condvar` re-locks are wake-ups,
/// not competition).
fn lock_queue<'a>(
    queue: &'a Mutex<VecDeque<Job>>,
    stats: &LockStats,
) -> MutexGuard<'a, VecDeque<Job>> {
    if !stats.is_enabled() {
        return queue.lock().expect("engine queue poisoned");
    }
    match queue.try_lock() {
        Ok(g) => {
            stats.note_uncontended();
            g
        }
        Err(TryLockError::WouldBlock) => {
            let start = Instant::now();
            let g = queue.lock().expect("engine queue poisoned");
            stats.note_contended(start.elapsed().as_nanos() as u64);
            g
        }
        Err(TryLockError::Poisoned(_)) => panic!("engine queue poisoned"),
    }
}

/// Index of a request in [`ENGINE_OPS`] (one latency histogram per op type).
fn op_index(request: &Request) -> usize {
    match request {
        Request::Open { .. } => 0,
        Request::Close { .. } => 1,
        Request::Read { .. } => 2,
        Request::ReadAt { .. } => 3,
        Request::Write { .. } => 4,
        Request::WriteAt { .. } => 5,
        Request::Seek { .. } => 6,
        Request::Stat { .. } => 7,
        Request::Readdir { .. } => 8,
        Request::Unlink { .. } => 9,
        Request::Fsync { .. } => 10,
        Request::SyncAll => 11,
    }
}

/// A client's completion queue.
struct ClientShared {
    completions: Mutex<VecDeque<Completion>>,
    ready: Condvar,
}

/// The thread-pool request engine.  See the crate docs for the lifecycle.
///
/// Holds one `Arc<Vfs>` and N worker threads; dropping the engine (or
/// calling [`Engine::shutdown`]) refuses further submissions, drains the
/// queue, and joins the workers.
pub struct Engine<D: BlockDevice + Send + Sync + 'static> {
    vfs: Arc<Vfs<D>>,
    shared: Arc<EngineShared>,
    workers: Vec<JoinHandle<()>>,
}

impl<D: BlockDevice + Send + Sync + 'static> Engine<D> {
    /// Start `workers` worker threads over the shared volume.
    ///
    /// # Panics
    /// Panics if `workers` is zero (nothing would ever complete).
    pub fn start(vfs: Arc<Vfs<D>>, workers: usize) -> Self {
        assert!(workers > 0, "an engine needs at least one worker");
        let shared = Arc::new(EngineShared {
            queue: Mutex::new(VecDeque::new()),
            job_ready: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            completed: AtomicU64::new(0),
            obs: Arc::clone(vfs.obs()),
        });
        let workers = (0..workers)
            .map(|worker| {
                let vfs = Arc::clone(&vfs);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&vfs, &shared, worker as u32))
            })
            .collect();
        Engine {
            vfs,
            shared,
            workers,
        }
    }

    /// The served volume (e.g. for direct administrative access).
    pub fn vfs(&self) -> &Arc<Vfs<D>> {
        &self.vfs
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Total number of requests completed so far.
    pub fn completed(&self) -> u64 {
        self.shared.completed.load(Ordering::Relaxed)
    }

    /// Sign a User Access Key on and return a client connection.
    /// Deliberately infallible, like [`Vfs::signon`] — a wrong key yields a
    /// client whose `/hidden` is empty, indistinguishable from a right key
    /// with nothing hidden.
    pub fn client(&self, uak: &str) -> Client<D> {
        Client {
            vfs: Arc::clone(&self.vfs),
            engine: Arc::clone(&self.shared),
            shared: Arc::new(ClientShared {
                completions: Mutex::new(VecDeque::new()),
                ready: Condvar::new(),
            }),
            session: self.vfs.signon(uak),
            next_id: AtomicU64::new(0),
        }
    }

    /// Stop accepting submissions, complete everything already accepted, and
    /// join the workers.  `Drop` does the same, so letting the engine fall
    /// out of scope is equivalent.
    pub fn shutdown(self) {
        // Drop runs the teardown.
    }

    fn stop_and_join(&mut self) {
        {
            // Flip the flag under the queue lock so it serialises against
            // in-flight `submit` calls (see `Client::submit`).
            let _q = self.shared.queue.lock().expect("engine queue poisoned");
            self.shared.shutting_down.store(true, Ordering::Release);
        }
        self.shared.job_ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl<D: BlockDevice + Send + Sync + 'static> Drop for Engine<D> {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// A client connection: one signed-on session plus a private completion
/// queue.  Shareable across threads (`submit`/`recv` take `&self`); a
/// multi-threaded client sees each completion exactly once.
pub struct Client<D: BlockDevice + Send + Sync + 'static> {
    vfs: Arc<Vfs<D>>,
    engine: Arc<EngineShared>,
    shared: Arc<ClientShared>,
    session: SessionId,
    next_id: AtomicU64,
}

impl<D: BlockDevice + Send + Sync + 'static> Client<D> {
    /// The session this client's `/hidden` paths resolve against.
    pub fn session(&self) -> SessionId {
        self.session
    }

    /// Enqueue a request; returns its id immediately.  Fails only when the
    /// engine is shutting down (accepted work is always completed).
    pub fn submit(&self, request: Request) -> VfsResult<RequestId> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let job = Job {
            client: Arc::clone(&self.shared),
            id,
            session: self.session,
            request,
            submitted: Instant::now(),
        };
        {
            // The shutdown check and the push share one queue-lock hold (and
            // shutdown flips the flag under the same lock): a job accepted
            // here is therefore always visible to a still-running worker —
            // it can never slip into a queue whose pool has already drained
            // and exited.
            let mut q = lock_queue(&self.engine.queue, &self.engine.obs.engine_queue);
            if self.engine.shutting_down.load(Ordering::Acquire) {
                return Err(VfsError::Unsupported("engine is shut down".into()));
            }
            if self.engine.poisoned.load(Ordering::Acquire) {
                return Err(VfsError::Unsupported(
                    "engine poisoned by an earlier panicking request".into(),
                ));
            }
            q.push_back(job);
            self.engine.obs.engine.note_queue_depth(q.len() as u64);
        }
        self.engine.job_ready.notify_one();
        Ok(id)
    }

    /// Block until any completion is available and return it (oldest first).
    pub fn recv(&self) -> Completion {
        let mut q = self.shared.completions.lock().expect("client queue");
        loop {
            if let Some(c) = q.pop_front() {
                return c;
            }
            q = self.shared.ready.wait(q).expect("client queue");
        }
    }

    /// Return a completion if one is already available.
    pub fn try_recv(&self) -> Option<Completion> {
        self.shared
            .completions
            .lock()
            .expect("client queue")
            .pop_front()
    }

    /// Block until the completion of request `id` arrives, buffering (and
    /// preserving) completions of other requests.
    pub fn wait_for(&self, id: RequestId) -> Completion {
        let mut q = self.shared.completions.lock().expect("client queue");
        loop {
            if let Some(pos) = q.iter().position(|c| c.id == id) {
                return q.remove(pos).expect("position is valid");
            }
            q = self.shared.ready.wait(q).expect("client queue");
        }
    }

    /// Submit and wait: the blocking convenience for depth-1 clients.
    ///
    /// # Panics
    /// Panics if the engine refused the submission (it is shutting down).
    pub fn call(&self, request: Request) -> Completion {
        let id = self.submit(request).expect("engine is shut down");
        self.wait_for(id)
    }

    /// Number of completions currently waiting to be received.
    pub fn pending_completions(&self) -> usize {
        self.shared.completions.lock().expect("client queue").len()
    }

    /// Sign the session off, closing every handle it still holds.  Dropping
    /// the client without calling this leaves the session alive (another
    /// client of the same engine could still use its handles).
    pub fn signoff(self) -> VfsResult<()> {
        self.vfs.signoff(self.session)
    }
}

/// Worker body: pop, execute, complete; exit once shut down *and* drained.
/// `worker` is the pool index, used as the `tid` for captured trace events.
fn worker_loop<D: BlockDevice + Send + Sync>(vfs: &Vfs<D>, shared: &EngineShared, worker: u32) {
    loop {
        let job = {
            let mut q = lock_queue(&shared.queue, &shared.obs.engine_queue);
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                if shared.shutting_down.load(Ordering::Acquire) {
                    return;
                }
                q = shared.job_ready.wait(q).expect("engine queue poisoned");
            }
            // Queue lock dropped here: execution holds no engine lock.
        };
        let started = Instant::now();
        // A panicking request must not shrink the pool or strand its client:
        // catch the unwind, deliver an error completion, and *poison* the
        // engine.  The unwind may have left the shared volume's invariants
        // half-mutated (parking_lot locks do not poison), so after the
        // catch no request *begins executing* against the volume — queued
        // work drains as errors and new submissions are refused.  Requests
        // already mid-execution on sibling workers do run to completion
        // (there is no cooperative cancellation), so poisoning bounds the
        // exposure to the in-flight window rather than eliminating it; the
        // `AssertUnwindSafe` is justified by that bound plus the error-only
        // drain, not by any stronger isolation.
        let request = job.request;
        let op = op_index(&request);
        let enabled = shared.obs.is_enabled();
        // Flat metrics follow `obs_enabled`; the causal span layer is
        // additionally gated on a non-zero trace capacity.
        let tracing = shared.obs.is_tracing();
        if tracing {
            // Admission: every span opened anywhere below (vfs, core, fs,
            // journal, blockdev) attaches to this request until request_end.
            span::request_begin(op);
            span::note(
                span::Phase::QueueWait,
                started.saturating_duration_since(job.submitted).as_nanos() as u64,
            );
        }
        let result = if shared.poisoned.load(Ordering::Acquire) {
            Err(VfsError::Unsupported(
                "engine poisoned by an earlier panicking request".into(),
            ))
        } else {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                execute(vfs, job.session, request)
            }))
            .unwrap_or_else(|_| {
                shared.poisoned.store(true, Ordering::Release);
                Err(VfsError::Unsupported("request panicked".into()))
            })
        };
        let completion = Completion {
            id: job.id,
            result,
            latency: job.submitted.elapsed(),
            service: started.elapsed(),
        };
        if enabled {
            let service_ns = completion.service.as_nanos() as u64;
            shared.obs.engine.record_completion(
                op,
                completion.latency.as_nanos() as u64,
                service_ns,
            );
            shared.obs.trace_span("engine", ENGINE_OPS[op], service_ns);
        }
        if tracing {
            // request_end force-closes anything a panicking request left
            // open, so the worker's context never leaks into the next job.
            if let Some(finished) = span::request_end() {
                shared.obs.complete_request(
                    &finished,
                    completion.latency.as_nanos() as u64,
                    worker,
                );
            }
        }
        // Count before delivering: a client that has received every one of
        // its completions must observe the full count.
        shared.completed.fetch_add(1, Ordering::Relaxed);
        {
            let mut c = job.client.completions.lock().expect("client queue");
            c.push_back(completion);
        }
        job.client.ready.notify_all();
    }
}

/// Dispatch one request against the volume.
fn execute<D: BlockDevice>(
    vfs: &Vfs<D>,
    session: SessionId,
    request: Request,
) -> VfsResult<Response> {
    match request {
        Request::Open { path, opts } => vfs.open(session, &path, opts).map(Response::Handle),
        Request::Close { handle } => vfs.close(handle).map(|()| Response::Unit),
        Request::Read { handle, len } => vfs.read(handle, len).map(Response::Data),
        Request::ReadAt {
            handle,
            offset,
            len,
        } => vfs.read_at(handle, offset, len).map(Response::Data),
        Request::Write { handle, data } => vfs
            .write(handle, &data)
            .map(|()| Response::Written(data.len())),
        Request::WriteAt {
            handle,
            offset,
            data,
        } => vfs
            .write_at(handle, offset, &data)
            .map(|()| Response::Written(data.len())),
        Request::Seek { handle, pos } => vfs.seek(handle, pos).map(Response::Offset),
        Request::Stat { path } => vfs.stat(session, &path).map(Response::Stat),
        Request::Readdir { path } => vfs.readdir(session, &path).map(Response::Listing),
        Request::Unlink { path } => vfs.unlink(session, &path).map(|()| Response::Unit),
        Request::Fsync { handle } => vfs.fsync(handle).map(|()| Response::Unit),
        Request::SyncAll => vfs.sync().map(|()| Response::Unit),
    }
}
