//! # stegfs-engine
//!
//! A thread-pool request engine in front of [`stegfs_vfs::Vfs`] — the role
//! the paper's kernel driver plays for its multi-user server experiments
//! (§5.3/§5.4): any number of clients submit file-system requests, N worker
//! threads execute them against one shared volume, and every request comes
//! back as a completion carrying its own latency.
//!
//! The whole stack below is shared-reference (`&self` end to end since the
//! core redesign), so the engine holds exactly one `Arc<Vfs>` and nothing
//! else global: adding workers adds parallelism, not lock traffic.
//!
//! ## Request/completion lifecycle
//!
//! 1. [`Engine::client`] signs a User Access Key on and returns a
//!    [`Client`] — the engine-side analogue of a connection.  A wrong key is
//!    *not* an error (there is nothing to validate against — that absence is
//!    the hiding property); the client simply sees an empty `/hidden`.
//! 2. [`Client::submit`] stamps the request with a per-client
//!    [`RequestId`] and a submission time, and pushes it onto the engine's
//!    shared queue.  Submission never blocks on I/O.
//! 3. A worker pops the job, executes it against the `Vfs` (this is where
//!    all file-system locking and block I/O happens), and pushes a
//!    [`Completion`] — result, queue-to-completion latency, and pure service
//!    time — onto the submitting client's completion queue.
//! 4. [`Client::recv`] / [`Client::try_recv`] / [`Client::wait_for`] drain
//!    completions; [`Client::call`] is the blocking submit-and-wait
//!    convenience.  Completions of *different* requests may arrive out of
//!    submission order (that is the point of N workers).
//!
//! [`Engine::shutdown`] (and `Drop`) stops accepting submissions, lets the
//! workers **drain the queue**, then joins them — every accepted request is
//! completed, so a client that receives one completion per submission can
//! never hang.  A request that *panics* mid-execution poisons the engine:
//! its unwind may have left volume invariants half-mutated, so no further
//! request **begins executing** against the volume — queued work drains as
//! error completions and new submissions are refused.  Requests already
//! running on sibling workers at the moment of the panic do finish (there
//! is no cooperative cancellation); poisoning bounds the exposure to that
//! in-flight window.  Fail-stop, not limp-on.
//!
//! ## Lock order
//!
//! The engine adds two leaf locks to the stack and holds neither across
//! file-system work:
//!
//! * the **job queue lock** — taken by `submit` (push) and by idle workers
//!   (pop); released before the request executes;
//! * each client's **completion queue lock** — taken by the finishing worker
//!   (push) and by `recv` (pop).
//!
//! A worker executing a request therefore holds *no* engine lock; inside the
//! `Vfs` the documented order `table shard < per-handle offset lock < object
//! registry < per-object lock < core locks` applies unchanged.  Handles are
//! capabilities: they are valid engine-wide, and a client is expected to use
//! the ones its own session opened (exactly like file descriptors handed
//! across a process boundary).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod request;

pub use engine::{Client, Engine};
pub use request::{Completion, Request, RequestId, Response};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;
    use stegfs_blockdev::MemBlockDevice;
    use stegfs_core::StegParams;
    use stegfs_vfs::{OpenOptions, Vfs, VfsHandle};

    fn small_engine(workers: usize) -> Engine<MemBlockDevice> {
        let vfs = Vfs::format(MemBlockDevice::new(1024, 8192), StegParams::for_tests()).unwrap();
        Engine::start(Arc::new(vfs), workers)
    }

    fn opened(c: &Client<MemBlockDevice>, path: &str) -> VfsHandle {
        match c
            .call(Request::Open {
                path: path.into(),
                opts: OpenOptions::read_write(),
            })
            .result
            .unwrap()
        {
            Response::Handle(h) => h,
            other => panic!("expected a handle, got {other:?}"),
        }
    }

    #[test]
    fn full_request_surface_roundtrips() {
        let engine = small_engine(3);
        let client = engine.client("alice key");

        let h = opened(&client, "/hidden/budget");
        let w = client.call(Request::WriteAt {
            handle: h,
            offset: 0,
            data: b"the real numbers".to_vec(),
        });
        assert!(matches!(w.result, Ok(Response::Written(16))));
        assert!(w.latency >= w.service);

        // Streaming read + seek through the engine.
        let seeked = client.call(Request::Seek {
            handle: h,
            pos: std::io::SeekFrom::Start(4),
        });
        assert!(matches!(seeked.result, Ok(Response::Offset(4))));
        let data = client.call(Request::Read { handle: h, len: 4 });
        match data.result.unwrap() {
            Response::Data(d) => assert_eq!(d, b"real"),
            other => panic!("unexpected {other:?}"),
        }

        let st = client.call(Request::Stat {
            path: "/hidden/budget".into(),
        });
        match st.result.unwrap() {
            Response::Stat(s) => assert_eq!(s.size, 16),
            other => panic!("unexpected {other:?}"),
        }
        let dir = client.call(Request::Readdir {
            path: "/hidden".into(),
        });
        match dir.result.unwrap() {
            Response::Listing(entries) => assert_eq!(entries.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            client.call(Request::Close { handle: h }).result,
            Ok(Response::Unit)
        ));
        assert!(matches!(
            client
                .call(Request::Unlink {
                    path: "/hidden/budget".into(),
                })
                .result,
            Ok(Response::Unit)
        ));
        // Errors come back as completions in the same deniable family.
        let gone = client.call(Request::Stat {
            path: "/hidden/budget".into(),
        });
        assert!(gone.result.unwrap_err().is_not_found());
        engine.shutdown();
    }

    #[test]
    fn pipelined_submissions_complete_out_of_order_but_fully() {
        let engine = small_engine(4);
        let client = engine.client("k");
        let h = opened(&client, "/plain/data");
        client
            .call(Request::WriteAt {
                handle: h,
                offset: 0,
                data: vec![7u8; 4096],
            })
            .result
            .unwrap();

        let ids: Vec<RequestId> = (0..32)
            .map(|i| {
                client
                    .submit(Request::ReadAt {
                        handle: h,
                        offset: (i % 4) * 1024,
                        len: 1024,
                    })
                    .unwrap()
            })
            .collect();
        for id in &ids {
            let c = client.wait_for(*id);
            assert_eq!(c.id, *id);
            match c.result.unwrap() {
                Response::Data(d) => assert_eq!(d, vec![7u8; 1024]),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(engine.completed(), 32 + 2);
        assert!(client.try_recv().is_none(), "nothing left over");
        engine.shutdown();
    }

    #[test]
    fn shutdown_drains_accepted_requests() {
        let engine = small_engine(1);
        let client = engine.client("k");
        let h = opened(&client, "/plain/f");
        let mut expected = Vec::new();
        for i in 0..8u64 {
            expected.push(
                client
                    .submit(Request::WriteAt {
                        handle: h,
                        offset: 0,
                        data: vec![i as u8; 512],
                    })
                    .unwrap(),
            );
        }
        engine.shutdown();
        // Every accepted request completed, in *some* order.
        let mut got: Vec<RequestId> = (0..8).map(|_| client.recv().id).collect();
        got.sort_unstable();
        assert_eq!(got, expected);
        // New submissions are refused once the engine is gone.
        assert!(client.submit(Request::Stat { path: "/".into() }).is_err());
    }

    #[test]
    fn per_request_latency_is_recorded() {
        let engine = small_engine(2);
        let client = engine.client("k");
        let c = client.call(Request::Readdir { path: "/".into() });
        assert!(c.result.is_ok());
        assert!(c.latency >= c.service);
        assert!(c.latency < Duration::from_secs(5));
        engine.shutdown();
    }
}
