//! Backup and recovery (§3.3): the administrator can back up and restore a
//! volume without ever being able to read — or even enumerate — the hidden
//! files on it.
//!
//! Run with `cargo run -p stegfs-examples --bin backup_restore`.

use stegfs_blockdev::MemBlockDevice;
use stegfs_core::{ObjectKind, StegFs, StegParams};
use stegfs_examples::{demo_volume, section};

fn main() {
    let fs = demo_volume(32);
    let uak = "owner key";

    section("Populate the volume");
    fs.write_plain("/readme.txt", b"ordinary visible file")
        .unwrap();
    fs.create_plain_dir("/projects").unwrap();
    fs.write_plain("/projects/plan.txt", b"visible project plan")
        .unwrap();
    fs.steg_create("hidden-ledger", uak, ObjectKind::File)
        .unwrap();
    fs.write_hidden_with_key("hidden-ledger", uak, b"the ledger nobody admits exists")
        .unwrap();

    section("Administrator takes a backup (no user keys involved)");
    let admin_key = b"administrator backup key";
    let image = fs.steg_backup(admin_key).unwrap();
    println!(
        "backup image: {} bytes ({} of them raw block images of unaccounted blocks)",
        image.len(),
        stegfs_core::BackupImage::from_bytes(&image, admin_key)
            .unwrap()
            .raw_image_bytes()
    );

    section("Disaster: the original volume is lost");
    drop(fs);

    section("Recovery onto a fresh device");
    let fresh = MemBlockDevice::with_capacity_mb(1024, 32);
    let params = StegParams {
        dummy_file_count: 4,
        dummy_file_size: 64 * 1024,
        random_fill: false,
        ..StegParams::default()
    };
    let recovered = StegFs::steg_recovery(fresh, &image, admin_key, params).unwrap();

    println!(
        "plain file restored:  {:?}",
        String::from_utf8_lossy(&recovered.read_plain("/projects/plan.txt").unwrap())
    );
    println!(
        "hidden file restored: {:?}",
        String::from_utf8_lossy(
            &recovered
                .read_hidden_with_key("hidden-ledger", uak)
                .unwrap()
        )
    );

    section("A wrong admin key cannot restore a tampered or substituted image");
    let fresh = MemBlockDevice::with_capacity_mb(1024, 32);
    match StegFs::steg_recovery(
        fresh,
        &image,
        b"not the admin key",
        StegParams {
            random_fill: false,
            ..StegParams::default()
        },
    ) {
        Err(err) => println!("recovery with the wrong key: {err}"),
        Ok(_) => unreachable!("an unauthenticated image must never restore"),
    }

    println!();
    println!("done.");
}
