//! Quickstart: the core promise of StegFS in a dozen lines.
//!
//! A plain file is visible to everyone; a hidden file is invisible — and
//! *deniable* — to anyone without its user access key, even someone holding
//! the raw device.
//!
//! Run with `cargo run -p stegfs-examples --bin quickstart`.

use stegfs_core::ObjectKind;
use stegfs_examples::{demo_volume, section};

fn main() {
    // A 32 MB in-memory StegFS volume (use FileBlockDevice for a persistent one).
    let mut fs = demo_volume(32);

    section("Plain files: the part everyone can see");
    fs.write_plain("/shopping-list.txt", b"eggs, milk, decoy documents")
        .unwrap();
    fs.create_plain_dir("/work").unwrap();
    fs.write_plain("/work/report.txt", b"quarterly report, nothing to see")
        .unwrap();
    println!("plain listing of /: {:?}", fs.list_plain_dir("/").unwrap());

    section("Hidden files: only the right key reveals them");
    let uak = "correct horse battery staple";
    fs.steg_create("real-budget", uak, ObjectKind::File).unwrap();
    fs.write_hidden_with_key("real-budget", uak, b"the numbers we don't show the auditor")
        .unwrap();

    let recovered = fs.read_hidden_with_key("real-budget", uak).unwrap();
    println!(
        "with the key:    {:?}",
        String::from_utf8_lossy(&recovered)
    );

    section("Plausible deniability");
    // The plain listing has not changed — the hidden object is not in the
    // central directory.
    println!("plain listing of /: {:?}", fs.list_plain_dir("/").unwrap());
    // A wrong key cannot even establish that the object exists: the error is
    // identical to the one for a name that was never created.
    let wrong = fs.read_hidden_with_key("real-budget", "rubber hose guess");
    let never = fs.read_hidden_with_key("file-that-never-existed", uak);
    println!("wrong key   -> {}", wrong.unwrap_err());
    println!("never stored-> {}", never.unwrap_err());

    section("Space accounting");
    let report = fs.space_report().unwrap();
    println!(
        "total {} blocks | metadata {} | plain {} | abandoned {} | hidden+dummy {} | free {}",
        report.total_blocks,
        report.metadata_blocks,
        report.plain_blocks,
        report.abandoned_blocks,
        report.hidden_blocks,
        report.free_blocks
    );
    println!();
    println!("done.");
}
