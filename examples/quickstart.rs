//! Quickstart: the core promise of StegFS in a dozen lines, exercised
//! through the `stegfs-vfs` front-end — the mountable surface with sessions,
//! paths and file handles that a kernel driver (or FUSE mount) would expose.
//!
//! A plain file is visible to everyone; a hidden file is invisible — and
//! *deniable* — to any session without its user access key, even one holding
//! the raw device.
//!
//! Run with `cargo run -p stegfs-examples --bin quickstart`.

use stegfs_examples::{demo_vfs, section};
use stegfs_vfs::OpenOptions;

fn main() {
    // A 32 MB in-memory StegFS volume served through the VFS (use
    // FileBlockDevice for a persistent one).
    let vfs = demo_vfs(32);

    section("Plain files: the part everyone can see");
    let alice = vfs.signon("correct horse battery staple");
    vfs.mkdir(alice, "/plain/work").unwrap();
    let h = vfs
        .open(alice, "/plain/shopping-list.txt", OpenOptions::read_write())
        .unwrap();
    vfs.write_at(h, 0, b"eggs, milk, decoy documents").unwrap();
    vfs.close(h).unwrap();
    let h = vfs
        .open(alice, "/plain/work/report.txt", OpenOptions::read_write())
        .unwrap();
    vfs.write_at(h, 0, b"quarterly report, nothing to see")
        .unwrap();
    vfs.close(h).unwrap();
    println!(
        "listing of /plain: {:?}",
        names(&vfs.readdir(alice, "/plain").unwrap())
    );

    section("Hidden files: only the right key reveals them");
    let h = vfs
        .open(alice, "/hidden/real-budget", OpenOptions::read_write())
        .unwrap();
    vfs.write_at(h, 0, b"the numbers we don't show the auditor")
        .unwrap();
    // Handles support positional and streaming access, like any fd.
    let recovered = vfs.read_at(h, 0, 1024).unwrap();
    vfs.close(h).unwrap();
    println!("with the key:    {:?}", String::from_utf8_lossy(&recovered));
    println!(
        "alice's /hidden: {:?}",
        names(&vfs.readdir(alice, "/hidden").unwrap())
    );

    section("Plausible deniability");
    // A different session — the auditor, the adversary — signs on with a
    // guessed key.  Sign-on cannot fail: there is no key registry to check
    // against, and that absence is the hiding property.
    let snoop = vfs.signon("rubber hose guess");
    println!(
        "snoop's /plain:  {:?}",
        names(&vfs.readdir(snoop, "/plain").unwrap())
    );
    println!(
        "snoop's /hidden: {:?}  (same volume!)",
        names(&vfs.readdir(snoop, "/hidden").unwrap())
    );
    // A wrong key cannot even establish that the object exists: the error is
    // identical to the one for a name that was never created.
    let wrong = vfs.open(snoop, "/hidden/real-budget", OpenOptions::read_only());
    let never = vfs.open(
        alice,
        "/hidden/file-that-never-existed",
        OpenOptions::read_only(),
    );
    println!("wrong key   -> {}", wrong.unwrap_err());
    println!("never stored-> {}", never.unwrap_err());

    section("Space accounting");
    let report = vfs.space_report().unwrap();
    println!(
        "total {} blocks | metadata {} | plain {} | abandoned {} | hidden+dummy {} | free {}",
        report.total_blocks,
        report.metadata_blocks,
        report.plain_blocks,
        report.abandoned_blocks,
        report.hidden_blocks,
        report.free_blocks
    );
    println!();
    println!("done.");
}

fn names(entries: &[stegfs_vfs::VfsDirEntry]) -> Vec<&str> {
    entries.iter().map(|e| e.name.as_str()).collect()
}
