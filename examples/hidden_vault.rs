//! A multi-user hidden vault: access hierarchies, hidden directories,
//! sharing and revocation (§3.2 and Figure 4 of the paper).
//!
//! Alice keeps two access levels — an "everyday" level she would disclose
//! under pressure and a "deniable" level she would not.  She shares one file
//! with Bob by encrypting its directory entry under Bob's public key, later
//! revokes the share, and Bob loses access while Alice keeps hers.
//!
//! Run with `cargo run -p stegfs-examples --bin hidden_vault`.

use stegfs_core::{AccessHierarchy, ObjectKind};
use stegfs_crypto::rsa::RsaKeyPair;
use stegfs_examples::{demo_volume, section};

fn main() {
    let fs = demo_volume(32);

    // ------------------------------------------------------------------
    // Alice's two access levels.
    // ------------------------------------------------------------------
    let alice = AccessHierarchy::new(vec![
        "alice everyday key".to_string(),
        "alice deniable key".to_string(),
    ]);
    let everyday = alice.uak_at(0).unwrap().to_string();
    let deniable = alice.uak_at(1).unwrap().to_string();

    section("Level 0 (disclosable): an address book");
    fs.steg_create("address-book", &everyday, ObjectKind::File)
        .unwrap();
    fs.write_hidden_with_key(
        "address-book",
        &everyday,
        b"mum: 555-0101, dentist: 555-0199",
    )
    .unwrap();

    section("Level 1 (deniable): a hidden directory of sensitive files");
    fs.steg_create("vault", &deniable, ObjectKind::Directory)
        .unwrap();
    fs.create_in_hidden_dir("vault", "sources", &deniable, ObjectKind::File)
        .unwrap();
    fs.create_in_hidden_dir("vault", "draft-story", &deniable, ObjectKind::File)
        .unwrap();
    // Connecting the directory reveals its offspring for this session.
    fs.steg_connect("vault", &deniable).unwrap();
    fs.write_hidden("sources", b"the whistleblower's contact details")
        .unwrap();
    fs.write_hidden("draft-story", b"working title: what the audit missed")
        .unwrap();
    println!(
        "connected after steg_connect(vault): {:?}",
        fs.connected_objects()
    );
    fs.disconnect_all();
    println!("connected after logoff: {:?}", fs.connected_objects());

    section("Under compulsion: disclose level 0, deny level 1");
    for uak in alice.visible_at(0).unwrap() {
        println!(
            "objects visible with the disclosed key: {:?}",
            fs.list_hidden(uak).unwrap()
        );
    }
    println!(
        "the deniable level is indistinguishable from not existing: {}",
        fs.read_hidden_with_key("vault", "some guessed key")
            .unwrap_err()
    );

    // ------------------------------------------------------------------
    // Sharing with Bob (Figure 4).
    // ------------------------------------------------------------------
    section("Sharing a single file with Bob");
    let bob_keys = RsaKeyPair::generate(768, b"bob's keypair seed");
    let bob_uak = "bob's own uak";

    let envelope = fs
        .steg_getentry("address-book", &everyday, &bob_keys.public)
        .unwrap();
    println!(
        "share envelope: {} opaque bytes (travels out of band, e.g. e-mail)",
        envelope.as_bytes().len()
    );
    let added = fs
        .steg_addentry(&envelope, &bob_keys.private, bob_uak)
        .unwrap();
    println!(
        "bob added '{added}' and reads: {:?}",
        String::from_utf8_lossy(&fs.read_hidden_with_key("address-book", bob_uak).unwrap())
    );

    section("Revocation: re-key the file, Bob's stale FAK stops working");
    fs.revoke_sharing("address-book", &everyday).unwrap();
    println!(
        "alice still reads: {:?}",
        String::from_utf8_lossy(&fs.read_hidden_with_key("address-book", &everyday).unwrap())
    );
    println!(
        "bob now gets: {}",
        fs.read_hidden_with_key("address-book", bob_uak)
            .unwrap_err()
    );

    println!();
    println!("done.");
}
