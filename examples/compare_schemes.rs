//! Compare StegFS against the prior steganographic schemes and the native
//! file system on the same simulated disk — a miniature version of the
//! paper's Section 5 that runs in well under a minute.
//!
//! Run with `cargo run --release -p stegfs-examples --bin compare_schemes`.

use stegfs_examples::section;
use stegfs_sim::experiments::{figure7, render_access_rows, render_space_summary, space_summary};
use stegfs_sim::WorkloadParams;

fn main() {
    // A small workload keeps this example interactive; the repro binary in
    // stegfs-bench runs the full sweeps.
    let mut params = WorkloadParams::scaled_quick();
    params.volume_mb = 32;
    params.file_count = 12;
    params.file_size_min = 128 * 1024;
    params.file_size_max = 256 * 1024;

    section("Access time vs concurrency (miniature Figure 7)");
    match figure7(&params, &[1, 4, 8]) {
        Ok(rows) => println!(
            "{}",
            render_access_rows("Access time by scheme", "users", &rows, false)
        ),
        Err(e) => eprintln!("experiment failed: {e}"),
    }
    println!("Expected shape: StegCover far above everyone; StegRand above StegFS;");
    println!("CleanDisk/FragDisk fastest alone but converging towards StegFS as users grow.");

    section("Effective space utilization (miniature Section 5.2)");
    match space_summary(32, 7) {
        Ok(rows) => println!("{}", render_space_summary(&rows)),
        Err(e) => eprintln!("experiment failed: {e}"),
    }
    println!("Expected shape: StegFS above 80%, StegCover around 75%, StegRand in single digits.");

    println!();
    println!("done.");
}
