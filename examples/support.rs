//! Shared helpers for the runnable examples.
//!
//! The binaries in this package (`quickstart`, `hidden_vault`,
//! `compare_schemes`, `backup_restore`) demonstrate the public API of the
//! StegFS reproduction end to end.  Run them with, e.g.:
//!
//! ```text
//! cargo run -p stegfs-examples --bin quickstart
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use stegfs_blockdev::MemBlockDevice;
use stegfs_core::{StegFs, StegParams};

/// Create an in-memory StegFS volume of `megabytes` MB with 1 KB blocks and
/// parameters sized for interactive examples (small dummy files, no random
/// fill so start-up is instant).
pub fn demo_volume(megabytes: u64) -> StegFs<MemBlockDevice> {
    let device = MemBlockDevice::with_capacity_mb(1024, megabytes);
    let params = StegParams {
        dummy_file_count: 4,
        dummy_file_size: 64 * 1024,
        random_fill: false,
        ..StegParams::default()
    };
    StegFs::format(device, params).expect("formatting an in-memory volume cannot fail")
}

/// Create an in-memory StegFS volume like [`demo_volume`], served through
/// the `stegfs-vfs` front-end on a [`stegfs_blockdev::SharedDevice`] — the
/// multi-session, handle-based surface.
pub fn demo_vfs(megabytes: u64) -> stegfs_vfs::Vfs<stegfs_blockdev::SharedDevice> {
    let device =
        stegfs_blockdev::SharedDevice::new(MemBlockDevice::with_capacity_mb(1024, megabytes));
    let params = StegParams {
        dummy_file_count: 4,
        dummy_file_size: 64 * 1024,
        random_fill: false,
        ..StegParams::default()
    };
    stegfs_vfs::Vfs::format(device, params).expect("formatting an in-memory volume cannot fail")
}

/// Pretty-print a section header.
pub fn section(title: &str) {
    println!();
    println!("== {title} ==");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_volume_is_usable() {
        let fs = demo_volume(16);
        fs.write_plain("/hello", b"world").unwrap();
        assert_eq!(fs.read_plain("/hello").unwrap(), b"world");
    }

    #[test]
    fn demo_vfs_is_usable() {
        let vfs = demo_vfs(16);
        let s = vfs.signon("demo key");
        let h = vfs
            .open(s, "/plain/hello", stegfs_vfs::OpenOptions::read_write())
            .unwrap();
        vfs.write_at(h, 0, b"world").unwrap();
        assert_eq!(vfs.read_at(h, 0, 5).unwrap(), b"world");
        vfs.close(h).unwrap();
    }
}
