//! Multi-threaded stress tests for the `stegfs-vfs` front-end: the workload
//! shape of the paper's Figure 7 concurrency experiment, expressed through
//! real handles on one shared volume — N threads interleaving plain reads
//! and writes with hidden reads and writes, while adversary sessions keep
//! checking that nothing hidden ever becomes visible to them.

use std::io::SeekFrom;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use stegfs_blockdev::{MemBlockDevice, SharedDevice};
use stegfs_core::StegParams;
use stegfs_tests::full_feature_params;
use stegfs_vfs::{OpenOptions, Vfs};

const SECRET_UAK: &str = "the real user access key";
const ROUNDS: usize = 24;

fn stress_volume() -> Arc<Vfs<SharedDevice>> {
    // 16 MB with every camouflage feature on, as in a production format.
    let dev = SharedDevice::new(MemBlockDevice::new(1024, 16384));
    Arc::new(Vfs::format(dev, full_feature_params()).expect("format"))
}

/// Deterministic per-(worker, round) payload so every reader can validate
/// whatever write it observes.
fn payload(worker: usize, round: usize, len: usize) -> Vec<u8> {
    let tag = (worker * 131 + round * 17) as u8;
    (0..len).map(|i| tag ^ (i % 251) as u8).collect()
}

#[test]
fn mixed_plain_hidden_traffic_from_many_threads() {
    let vfs = stress_volume();
    let checks = Arc::new(AtomicUsize::new(0));

    // 12 threads >= the acceptance bar of 8: 4 plain workers, 4 hidden
    // workers, 2 hidden re-readers, 2 adversaries.
    let plain_workers = 4usize;
    let hidden_workers = 4usize;
    let rereaders = 2usize;
    let adversaries = 2usize;
    let total = plain_workers + hidden_workers + rereaders + adversaries;
    let barrier = Arc::new(Barrier::new(total));
    let mut handles = Vec::new();

    for w in 0..plain_workers {
        let vfs = Arc::clone(&vfs);
        let barrier = Arc::clone(&barrier);
        let checks = Arc::clone(&checks);
        handles.push(thread::spawn(move || {
            let session = vfs.signon(&format!("plain worker {w}"));
            barrier.wait();
            for round in 0..ROUNDS {
                let path = format!("/plain/worker-{w}-{}.dat", round % 3);
                let h = vfs
                    .open(session, &path, OpenOptions::read_write())
                    .expect("open plain");
                let data = payload(w, round, 600 + round * 13);
                vfs.write_at(h, 0, &data).expect("write plain");
                let back = vfs.read_at(h, 0, data.len()).expect("read plain");
                assert_eq!(back, data, "plain roundtrip w={w} round={round}");
                // Positional re-read of a slice.
                let slice = vfs.read_at(h, 100, 50).expect("pread plain");
                assert_eq!(slice, &data[100..150]);
                vfs.close(h).expect("close plain");
                checks.fetch_add(1, Ordering::Relaxed);
            }
            vfs.signoff(session).expect("signoff");
        }));
    }

    for w in 0..hidden_workers {
        let vfs = Arc::clone(&vfs);
        let barrier = Arc::clone(&barrier);
        let checks = Arc::clone(&checks);
        handles.push(thread::spawn(move || {
            let session = vfs.signon(SECRET_UAK);
            barrier.wait();
            for round in 0..ROUNDS {
                let path = format!("/hidden/vault-{w}");
                let h = vfs
                    .open(session, &path, OpenOptions::read_write())
                    .expect("open hidden");
                let data = payload(w, round, 900 + round * 29);
                vfs.write_at(h, 0, &data).expect("write hidden");
                let back = vfs.read_at(h, 0, data.len()).expect("read hidden");
                assert_eq!(back, data, "hidden roundtrip w={w} round={round}");
                // Streaming access through the same handle.
                vfs.seek(h, SeekFrom::Start(10)).expect("seek");
                assert_eq!(vfs.read(h, 20).expect("stream read"), &data[10..30]);
                vfs.close(h).expect("close hidden");
                checks.fetch_add(1, Ordering::Relaxed);
            }
            vfs.signoff(session).expect("signoff");
        }));
    }

    for r in 0..rereaders {
        let vfs = Arc::clone(&vfs);
        let barrier = Arc::clone(&barrier);
        let checks = Arc::clone(&checks);
        handles.push(thread::spawn(move || {
            let session = vfs.signon(SECRET_UAK);
            barrier.wait();
            for round in 0..ROUNDS {
                // Re-read whatever some writer last committed; any
                // well-formed payload is acceptable, torn data is not.
                let target = format!("/hidden/vault-{}", (r + round) % 4);
                match vfs.open(session, &target, OpenOptions::read_only()) {
                    Ok(h) => {
                        let size = vfs.handle_size(h).expect("size") as usize;
                        if size > 0 {
                            let data = vfs.read_at(h, 0, size).expect("read");
                            assert_eq!(data.len(), size);
                            let tag = data[0];
                            for (i, &b) in data.iter().enumerate() {
                                assert_eq!(
                                    b,
                                    tag ^ (i % 251) as u8,
                                    "torn hidden read at byte {i} of {target}"
                                );
                            }
                        }
                        vfs.close(h).expect("close");
                        checks.fetch_add(1, Ordering::Relaxed);
                    }
                    // Not created yet by its writer: the same not-found the
                    // adversary sees, which is fine and deniable.
                    Err(e) => assert!(e.is_not_found(), "unexpected error: {e}"),
                }
            }
            vfs.signoff(session).expect("signoff");
        }));
    }

    for a in 0..adversaries {
        let vfs = Arc::clone(&vfs);
        let barrier = Arc::clone(&barrier);
        let checks = Arc::clone(&checks);
        handles.push(thread::spawn(move || {
            let session = vfs.signon(&format!("adversary guess #{a}"));
            barrier.wait();
            for round in 0..ROUNDS {
                // The hidden tree is empty under a wrong key — always.
                assert!(
                    vfs.readdir(session, "/hidden").expect("readdir").is_empty(),
                    "hidden object leaked to adversary session"
                );
                // Guessing names fails with the indistinguishable error.
                let guess = format!("/hidden/vault-{}", round % 4);
                assert!(vfs.stat(session, &guess).unwrap_err().is_not_found());
                assert!(vfs
                    .open(session, &guess, OpenOptions::read_only())
                    .unwrap_err()
                    .is_not_found());
                // The plain namespace never mentions hidden names.
                for entry in vfs.readdir(session, "/plain").expect("plain ls") {
                    assert!(
                        !entry.name.contains("vault"),
                        "hidden name in plain listing: {}",
                        entry.name
                    );
                }
                checks.fetch_add(1, Ordering::Relaxed);
            }
            vfs.signoff(session).expect("signoff");
        }));
    }

    for h in handles {
        h.join().expect("worker thread panicked");
    }

    assert!(checks.load(Ordering::Relaxed) >= (total - rereaders) * ROUNDS);
    assert_eq!(vfs.open_handles(), 0, "every handle was closed");
    assert_eq!(vfs.session_count(), 0, "every session signed off");

    // After the storm: the volume is intact and the hidden data survives a
    // remount, readable only with the key.
    let report = vfs.space_report().expect("space report");
    assert!(report.free_blocks > 0);
    let vfs = Arc::into_inner(vfs).expect("sole owner");
    let dev = vfs.unmount().expect("unmount");
    let vfs = Vfs::mount(dev, full_feature_params()).expect("remount");
    let owner = vfs.signon(SECRET_UAK);
    assert_eq!(vfs.readdir(owner, "/hidden").expect("ls").len(), 4);
    let snoop = vfs.signon("still guessing");
    assert!(vfs.readdir(snoop, "/hidden").expect("ls").is_empty());
}

#[test]
fn writers_progress_while_a_streaming_handle_stays_open() {
    // Regression test for the shared-reference redesign: under the old
    // global write lock every operation queued behind one guard; now an open
    // streaming handle on one file must not impede writers of *other* files.
    // A holder keeps one hidden file open and streams it continuously while
    // two writers chew through their own files; everyone must finish, and
    // the holder must still be mid-stream (handle open) when the writers do.
    let dev = SharedDevice::new(MemBlockDevice::new(1024, 16384));
    let vfs = Arc::new(Vfs::format(dev, StegParams::for_tests()).expect("format"));
    let writers_done = Arc::new(AtomicUsize::new(0));
    let holder_ready = Arc::new(Barrier::new(3));

    // Pre-create the streamed file.
    let owner = vfs.signon(SECRET_UAK);
    let h = vfs
        .open(owner, "/hidden/long-stream", OpenOptions::read_write())
        .expect("open");
    let streamed = payload(99, 0, 32 * 1024);
    vfs.write_at(h, 0, &streamed).expect("prefill");
    vfs.close(h).expect("close");
    vfs.signoff(owner).expect("signoff");

    let holder = {
        let vfs = Arc::clone(&vfs);
        let writers_done = Arc::clone(&writers_done);
        let holder_ready = Arc::clone(&holder_ready);
        let streamed = streamed.clone();
        thread::spawn(move || {
            let s = vfs.signon(SECRET_UAK);
            let h = vfs
                .open(s, "/hidden/long-stream", OpenOptions::read_only())
                .expect("open stream");
            holder_ready.wait();
            // Stream in small chunks, wrapping around, until both writers
            // are done — the handle stays open the whole time.
            let mut wrapped = 0usize;
            while writers_done.load(Ordering::Acquire) < 2 || wrapped < 1 {
                let chunk = vfs.read(h, 1024).expect("stream chunk");
                if chunk.is_empty() {
                    vfs.seek(h, SeekFrom::Start(0)).expect("rewind");
                    wrapped += 1;
                    continue;
                }
            }
            // Validate one full pass at the end.
            vfs.seek(h, SeekFrom::Start(0)).expect("rewind");
            let all = vfs.read_at(h, 0, streamed.len()).expect("full read");
            assert_eq!(all, streamed, "stream torn by concurrent writers");
            vfs.close(h).expect("close");
            vfs.signoff(s).expect("signoff");
        })
    };

    let writers: Vec<_> = (0..2usize)
        .map(|w| {
            let vfs = Arc::clone(&vfs);
            let writers_done = Arc::clone(&writers_done);
            let holder_ready = Arc::clone(&holder_ready);
            thread::spawn(move || {
                let s = vfs.signon(SECRET_UAK);
                holder_ready.wait();
                for round in 0..12 {
                    let path = format!("/hidden/writer-{w}");
                    let h = vfs.open(s, &path, OpenOptions::read_write()).expect("open");
                    let data = payload(w * 7, round, 4096 + round * 97);
                    vfs.write_at(h, 0, &data).expect("write");
                    assert_eq!(vfs.read_at(h, 0, data.len()).expect("read"), data);
                    vfs.close(h).expect("close");
                }
                writers_done.fetch_add(1, Ordering::Release);
                vfs.signoff(s).expect("signoff");
            })
        })
        .collect();

    for w in writers {
        w.join().expect("writer panicked");
    }
    holder.join().expect("holder panicked");
    assert_eq!(vfs.open_handles(), 0);
}

#[test]
fn many_threads_share_one_hidden_file_positionally() {
    // 8 threads, one object, disjoint 512-byte strips: concurrent pread /
    // pwrite through per-thread handles must not interleave into torn data.
    let dev = SharedDevice::new(MemBlockDevice::new(1024, 8192));
    let vfs = Arc::new(Vfs::format(dev, StegParams::for_tests()).expect("format"));
    let threads = 8usize;
    let strip = 512usize;

    // Pre-size the file so every strip write is in place.
    let owner = vfs.signon(SECRET_UAK);
    let h = vfs
        .open(owner, "/hidden/shared-arena", OpenOptions::read_write())
        .expect("open");
    vfs.write_at(h, 0, &vec![0u8; threads * strip])
        .expect("prefill");
    vfs.close(h).expect("close");

    let barrier = Arc::new(Barrier::new(threads));
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let vfs = Arc::clone(&vfs);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let session = vfs.signon(SECRET_UAK);
                let h = vfs
                    .open(session, "/hidden/shared-arena", OpenOptions::read_write())
                    .expect("open");
                barrier.wait();
                for round in 0..16 {
                    let data = payload(t, round, strip);
                    vfs.write_at(h, (t * strip) as u64, &data).expect("pwrite");
                    let back = vfs.read_at(h, (t * strip) as u64, strip).expect("pread");
                    assert_eq!(back, data, "strip {t} torn in round {round}");
                }
                vfs.close(h).expect("close");
                vfs.signoff(session).expect("signoff");
            })
        })
        .collect();
    for w in workers {
        w.join().expect("strip worker panicked");
    }

    // Every strip holds its final round intact.
    let h = vfs
        .open(owner, "/hidden/shared-arena", OpenOptions::read_only())
        .expect("reopen");
    for t in 0..threads {
        let got = vfs.read_at(h, (t * strip) as u64, strip).expect("read");
        assert_eq!(got, payload(t, 15, strip), "final strip {t}");
    }
    vfs.close(h).expect("close");
}

/// A device that can be armed to *park* the next block read inside the
/// device until the test releases it — a deterministic way to freeze a
/// streaming handle mid-I/O, with whatever locks the VFS holds at that
/// point still held.
struct ParkNextRead {
    inner: MemBlockDevice,
    armed: Arc<std::sync::atomic::AtomicBool>,
    parked: Arc<Barrier>,
    release: Arc<(std::sync::Mutex<bool>, std::sync::Condvar)>,
}

impl ParkNextRead {
    fn maybe_park(&self) {
        if self.armed.swap(false, Ordering::AcqRel) {
            self.parked.wait();
            let (flag, cvar) = &*self.release;
            let mut released = flag.lock().expect("release lock");
            while !*released {
                released = cvar.wait(released).expect("release wait");
            }
        }
    }
}

impl stegfs_blockdev::BlockDevice for ParkNextRead {
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn total_blocks(&self) -> u64 {
        self.inner.total_blocks()
    }

    fn read_block(&self, block: u64, buf: &mut [u8]) -> stegfs_blockdev::BlockResult<()> {
        self.maybe_park();
        self.inner.read_block(block, buf)
    }

    fn write_block(&self, block: u64, buf: &[u8]) -> stegfs_blockdev::BlockResult<()> {
        self.inner.write_block(block, buf)
    }

    // read_blocks/write_blocks use the trait's default loop, so an armed
    // gate also parks the first block of a batched submission.
}

#[test]
fn parked_streaming_handle_does_not_block_its_table_shard() {
    // Regression test for the per-handle stream-offset locks: streaming I/O
    // used to run under the open-file-table shard lock, so a stalled stream
    // on one handle blocked *positional* I/O and seeks on every unrelated
    // handle that hashed to the same 1-of-16 shard.  Now the offset lives
    // behind a per-handle mutex: with a streaming read provably frozen
    // inside the device, same-shard positional I/O and seeks must complete.
    let armed = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let parked = Arc::new(Barrier::new(2));
    let release = Arc::new((std::sync::Mutex::new(false), std::sync::Condvar::new()));
    let dev = ParkNextRead {
        inner: MemBlockDevice::new(1024, 16384),
        armed: Arc::clone(&armed),
        parked: Arc::clone(&parked),
        release: Arc::clone(&release),
    };
    let vfs = Arc::new(Vfs::format(dev, StegParams::for_tests()).expect("format"));
    let s = vfs.signon(SECRET_UAK);

    // Two unrelated files, prefilled.
    for path in ["/hidden/stream-target", "/plain/bystander"] {
        let h = vfs.open(s, path, OpenOptions::read_write()).expect("open");
        vfs.write_at(h, 0, &payload(3, 7, 8 * 1024))
            .expect("prefill");
        vfs.close(h).expect("close");
    }

    let stream = vfs
        .open(s, "/hidden/stream-target", OpenOptions::read_only())
        .expect("open stream");
    // Open bystander handles until one lands on the stream handle's table
    // shard (handle ids are sequential, so at most SHARD_COUNT opens).
    let bystander = loop {
        let h = vfs
            .open(s, "/plain/bystander", OpenOptions::read_write())
            .expect("open bystander");
        if h.raw() % stegfs_vfs::table::SHARD_COUNT as u64
            == stream.raw() % stegfs_vfs::table::SHARD_COUNT as u64
        {
            break h;
        }
        vfs.close(h).expect("close mismatched");
    };

    // Freeze a streaming read mid-device-I/O: it parks holding the stream
    // handle's offset lock (and its object lock), which under the old
    // design was the table shard lock instead.
    armed.store(true, Ordering::Release);
    let streamer = {
        let vfs = Arc::clone(&vfs);
        thread::spawn(move || {
            let chunk = vfs.read(stream, 4096).expect("streaming read");
            assert_eq!(chunk, payload(3, 7, 8 * 1024)[..4096]);
            vfs.close(stream).expect("close stream");
        })
    };
    parked.wait(); // the stream is now provably frozen inside the device

    // Same-shard positional I/O and seeks must complete while it is parked.
    let got = vfs.read_at(bystander, 1024, 2048).expect("positional read");
    assert_eq!(got, payload(3, 7, 8 * 1024)[1024..3072]);
    vfs.write_at(bystander, 0, b"unblocked")
        .expect("positional write");
    assert_eq!(
        vfs.seek(bystander, SeekFrom::Start(512)).expect("seek"),
        512
    );
    assert_eq!(vfs.handle_size(bystander).expect("size"), 8 * 1024);

    // Release the parked stream and let everything finish.
    {
        let (flag, cvar) = &*release;
        *flag.lock().expect("release lock") = true;
        cvar.notify_all();
    }
    streamer.join().expect("streamer");
    vfs.close(bystander).expect("close bystander");
    vfs.signoff(s).expect("signoff");
}

#[test]
fn hidden_namespace_nests_arbitrarily_deep() {
    // Creation at depth >= 3: resolution always walked arbitrary depth, and
    // since the journal PR creation does too — mkdir and open(create) both
    // route through the parent chain at any level.
    let vfs = stress_volume();
    let s = vfs.signon(SECRET_UAK);

    vfs.mkdir(s, "/hidden/a").expect("depth 1");
    vfs.mkdir(s, "/hidden/a/b").expect("depth 2");
    vfs.mkdir(s, "/hidden/a/b/c").expect("depth 3");
    vfs.mkdir(s, "/hidden/a/b/c/d").expect("depth 4");

    // Create a file four levels down through open(create).
    let h = vfs
        .open(
            s,
            "/hidden/a/b/c/d/deep.dat",
            OpenOptions::read_write().create(true),
        )
        .expect("create deep file");
    let data = payload(9, 4, 5000);
    vfs.write_at(h, 0, &data).expect("write deep");
    vfs.close(h).expect("close deep");

    // The whole chain resolves: stat, readdir and read at every level.
    assert_eq!(
        vfs.stat(s, "/hidden/a/b/c/d/deep.dat").expect("stat").size,
        5000
    );
    let listing = vfs.readdir(s, "/hidden/a/b/c").expect("readdir c");
    assert_eq!(listing.len(), 1);
    assert_eq!(listing[0].name, "d");
    let h = vfs
        .open(s, "/hidden/a/b/c/d/deep.dat", OpenOptions::read_only())
        .expect("reopen deep");
    assert_eq!(vfs.read_at(h, 0, 5000).expect("read deep"), data);
    vfs.close(h).expect("close");

    // Mutations at depth: rename within the directory, then unlink.
    vfs.rename(s, "/hidden/a/b/c/d/deep.dat", "/hidden/a/b/c/d/renamed.dat")
        .expect("rename at depth");
    vfs.unlink(s, "/hidden/a/b/c/d/renamed.dat")
        .expect("unlink at depth");
    vfs.unlink(s, "/hidden/a/b/c/d").expect("rmdir d");

    // A second session with the same key sees the same tree; a wrong-key
    // session sees nothing at any depth.
    let s2 = vfs.signon(SECRET_UAK);
    assert_eq!(vfs.readdir(s2, "/hidden/a/b").expect("readdir b").len(), 1);
    let intruder = vfs.signon("wrong key entirely");
    assert!(vfs
        .stat(intruder, "/hidden/a/b/c")
        .expect_err("hidden from intruder")
        .is_not_found());
    // Creating under a parent the key cannot resolve fails deniably.
    assert!(vfs
        .mkdir(intruder, "/hidden/a/b/x")
        .expect_err("cannot create under unresolvable parent")
        .is_not_found());

    // Duplicate creation at depth is refused.
    assert!(vfs.mkdir(s, "/hidden/a/b/c").is_err());
    vfs.signoff(s).expect("signoff");
    vfs.signoff(s2).expect("signoff 2");
    vfs.signoff(intruder).expect("signoff intruder");
}
