//! Tests written from the adversary's point of view: what can an attacker
//! with full knowledge of the implementation and raw access to the device
//! actually learn?
//!
//! These encode the paper's threat model (§1, §3): hidden objects must leave
//! no trace in the central directory, wrong keys must behave exactly like
//! missing objects, and allocated-but-unaccounted blocks must be
//! indistinguishable from abandoned blocks and random fill.

use stegfs_blockdev::{BufferCache, CrashDevice, MemBlockDevice};
use stegfs_core::{ObjectKind, StegFs};
use stegfs_tests::{full_feature_params, journaled_params, payload, test_volume};

const OWNER: &str = "the real key";

/// Shannon entropy (bits per byte) of a buffer.
fn entropy_bits_per_byte(data: &[u8]) -> f64 {
    let mut counts = [0u64; 256];
    for &b in data {
        counts[b as usize] += 1;
    }
    let n = data.len() as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

#[test]
fn central_directory_never_mentions_hidden_objects() {
    let fs = test_volume(8192);
    fs.write_plain("/innocent.txt", b"cover traffic").unwrap();
    fs.steg_create("the-secret", OWNER, ObjectKind::File)
        .unwrap();
    fs.write_hidden_with_key("the-secret", OWNER, &payload(1, 150 * 1024))
        .unwrap();

    // Nothing in any plain listing refers to the hidden object.
    let listing = fs.list_plain_dir("/").unwrap();
    assert!(listing.iter().all(|name| !name.contains("secret")));

    // The blocks of every plain object do not include any block holding the
    // hidden object's data (verified indirectly: freeing the hidden object
    // releases blocks that were never part of the plain set).
    let plain_blocks = fs.plain_fs().plain_object_blocks().unwrap();
    let before_free = fs.space_report().unwrap().free_blocks;
    fs.delete_hidden("the-secret", OWNER).unwrap();
    let after_free = fs.space_report().unwrap().free_blocks;
    assert!(after_free > before_free + 140);
    // Plain set unchanged by the deletion.
    assert_eq!(fs.plain_fs().plain_object_blocks().unwrap(), plain_blocks);
}

#[test]
fn wrong_key_is_indistinguishable_from_absent_object() {
    let fs = test_volume(4096);
    fs.steg_create("exists", OWNER, ObjectKind::File).unwrap();
    fs.write_hidden_with_key("exists", OWNER, b"present")
        .unwrap();

    let wrong_key = fs
        .read_hidden_with_key("exists", "guessed key")
        .unwrap_err();
    let absent = fs
        .read_hidden_with_key("never-created", "guessed key")
        .unwrap_err();
    // Same variant, same deniable phrasing.
    assert!(wrong_key.is_not_found());
    assert!(absent.is_not_found());
    let w = wrong_key.to_string().replace("exists", "<name>");
    let a = absent.to_string().replace("never-created", "<name>");
    assert_eq!(w, a, "error text must not distinguish the two cases");
}

#[test]
fn hidden_blocks_look_like_random_fill_on_the_raw_device() {
    // Format with random fill, write a highly structured hidden file, then
    // inspect the raw device: every allocated-but-unaccounted block should
    // have the same high entropy as the untouched random fill.
    let fs = test_volume(4096);
    let structured = vec![0u8; 120 * 1024]; // all zeros: worst case plaintext
    fs.steg_create("zeros", OWNER, ObjectKind::File).unwrap();
    fs.write_hidden_with_key("zeros", OWNER, &structured)
        .unwrap();

    let plain_blocks: std::collections::HashSet<u64> = fs
        .plain_fs()
        .plain_object_blocks()
        .unwrap()
        .into_iter()
        .collect();
    let sb = fs.plain_fs().superblock().clone();

    let mut unaccounted = Vec::new();
    let mut free_fill = Vec::new();
    for block in sb.data_start..sb.total_blocks {
        let allocated = fs.plain_fs().is_block_allocated(block);
        if allocated && !plain_blocks.contains(&block) {
            unaccounted.push(block);
        } else if !allocated {
            free_fill.push(block);
        }
    }
    assert!(unaccounted.len() > 120, "hidden + dummy + abandoned blocks");

    // Sample entropy of both populations.
    let mut unaccounted_bytes = Vec::new();
    for &b in unaccounted.iter().take(64) {
        unaccounted_bytes.extend(fs.plain_fs().read_raw_block(b).unwrap());
    }
    let mut free_bytes = Vec::new();
    for &b in free_fill.iter().take(64) {
        free_bytes.extend(fs.plain_fs().read_raw_block(b).unwrap());
    }
    let e_hidden = entropy_bits_per_byte(&unaccounted_bytes);
    let e_free = entropy_bits_per_byte(&free_bytes);
    assert!(
        e_hidden > 7.5,
        "allocated-but-unaccounted blocks must look random (entropy {e_hidden:.2})"
    );
    assert!(
        (e_hidden - e_free).abs() < 0.3,
        "hidden blocks ({e_hidden:.2} bits/byte) must match free fill ({e_free:.2} bits/byte)"
    );
    // And the all-zero plaintext never appears on the device.
    let zero_block = vec![0u8; 1024];
    for &b in unaccounted.iter().take(64) {
        assert_ne!(fs.plain_fs().read_raw_block(b).unwrap(), zero_block);
    }
}

#[test]
fn snapshot_differencing_cannot_separate_real_files_from_dummies() {
    // An attacker who diffs bitmap snapshots sees allocations change between
    // snapshots.  Because dummy files are rewritten too (and real files hold
    // internal free pools), the per-snapshot deltas include dummy activity,
    // so new allocations cannot be attributed to real hidden data.
    let mut fs = test_volume(8192);
    let sb = fs.plain_fs().superblock().clone();
    let snapshot = |fs: &mut StegFs<MemBlockDevice>| -> Vec<bool> {
        (sb.data_start..sb.total_blocks)
            .map(|b| fs.plain_fs().is_block_allocated(b))
            .collect()
    };

    let before = snapshot(&mut fs);
    // Interval 1: only dummy maintenance runs.
    fs.touch_dummy_files().unwrap();
    let after_dummies = snapshot(&mut fs);
    // Interval 2: a real hidden file is created as well as dummy maintenance.
    fs.steg_create("real", OWNER, ObjectKind::File).unwrap();
    fs.write_hidden_with_key("real", OWNER, &payload(9, 64 * 1024))
        .unwrap();
    fs.touch_dummy_files().unwrap();
    let after_real = snapshot(&mut fs);

    let delta = |a: &[bool], b: &[bool]| a.iter().zip(b).filter(|(x, y)| x != y).count();
    let dummy_only_delta = delta(&before, &after_dummies);
    let with_real_delta = delta(&after_dummies, &after_real);
    // Both intervals show allocation churn; the dummy-only interval is not
    // silent, which is exactly what denies the attacker a clean signal.
    assert!(
        dummy_only_delta > 0,
        "dummy maintenance must itself change the bitmap"
    );
    assert!(with_real_delta > 0);
}

#[test]
fn crashed_journaled_volume_reveals_nothing_to_the_inspector() {
    // The strongest position the journal ever puts an adversary in: a
    // journaled volume crashes in the middle of a hidden-file rewrite
    // (header + chain + bitmap in flight), the power-cut tears the unsynced
    // writes, and the inspector images the raw device — including the
    // journal region — before and after replay.
    let params = journaled_params(160);
    let dev = CrashDevice::new(MemBlockDevice::new(1024, 8192));
    let fs = StegFs::format(BufferCache::new_write_back(dev.clone(), 64), params.clone())
        .expect("format journaled volume");
    fs.write_plain("/cover.txt", b"innocent cover traffic")
        .unwrap();
    fs.steg_create("the-secret", OWNER, ObjectKind::File)
        .unwrap();
    fs.write_hidden_with_key("the-secret", OWNER, &vec![0u8; 60 * 1024])
        .unwrap();
    fs.sync().unwrap();

    // Tear a rewrite mid-flight, then crash.
    dev.fail_after_writes(17);
    let _ = fs.write_hidden_with_key("the-secret", OWNER, &vec![0u8; 70 * 1024]);
    drop(fs);
    dev.crash(0x5eed);

    // Remount (replay runs inside mount) and inspect the raw image, journal
    // region included, as an adversary with the full implementation would.
    let fs_probe = StegFs::mount(BufferCache::new_write_back(dev.clone(), 64), params.clone())
        .expect("remount with replay");
    let sb = fs_probe.plain_fs().superblock().clone();

    // The journal region is uniform high entropy — indistinguishable
    // from the random fill around it — and carries no plaintext
    // structure that could tag records as hidden-file activity.
    let mut journal_bytes = Vec::new();
    for b in sb.journal_start..sb.journal_start + sb.journal_blocks {
        journal_bytes.extend(fs_probe.plain_fs().read_raw_block(b).unwrap());
    }
    let e_journal = entropy_bits_per_byte(&journal_bytes);
    assert!(
        e_journal > 7.5,
        "journal region must look like random fill (entropy {e_journal:.2})"
    );
    let zero_block = vec![0u8; 1024];
    for b in sb.journal_start..sb.journal_start + sb.journal_blocks {
        assert_ne!(
            fs_probe.plain_fs().read_raw_block(b).unwrap(),
            zero_block,
            "journal block {b} is structured"
        );
    }

    // Wrong key and never-existed remain indistinguishable after the
    // crash + replay.
    let wrong = fs_probe
        .read_hidden_with_key("the-secret", "guessed key")
        .unwrap_err();
    let absent = fs_probe
        .read_hidden_with_key("never-created", "guessed key")
        .unwrap_err();
    assert!(wrong.is_not_found());
    assert!(absent.is_not_found());
    let w = wrong.to_string().replace("the-secret", "<name>");
    let a = absent.to_string().replace("never-created", "<name>");
    assert_eq!(w, a, "crash + replay must not split the error families");

    // The rightful owner still reads a complete (never torn) file.
    let got = fs_probe.read_hidden_with_key("the-secret", OWNER).unwrap();
    assert!(
        got == vec![0u8; 60 * 1024] || got == vec![0u8; 70 * 1024],
        "owner sees a torn rewrite of {} bytes",
        got.len()
    );

    // Allocated-but-unaccounted blocks (hidden + dummies + abandoned)
    // still match the free fill's entropy, as on a never-crashed volume.
    let plain_blocks: std::collections::HashSet<u64> = fs_probe
        .plain_fs()
        .plain_object_blocks()
        .unwrap()
        .into_iter()
        .collect();
    let mut unaccounted_bytes = Vec::new();
    let mut free_bytes = Vec::new();
    for block in sb.data_start..sb.total_blocks {
        let allocated = fs_probe.plain_fs().is_block_allocated(block);
        if allocated && !plain_blocks.contains(&block) && unaccounted_bytes.len() < 64 * 1024 {
            unaccounted_bytes.extend(fs_probe.plain_fs().read_raw_block(block).unwrap());
        } else if !allocated && free_bytes.len() < 64 * 1024 {
            free_bytes.extend(fs_probe.plain_fs().read_raw_block(block).unwrap());
        }
    }
    let e_hidden = entropy_bits_per_byte(&unaccounted_bytes);
    let e_free = entropy_bits_per_byte(&free_bytes);
    assert!(
        (e_hidden - e_free).abs() < 0.3,
        "after a crash, unaccounted blocks ({e_hidden:.2}) must still match free fill ({e_free:.2})"
    );
}

/// Entropy of a volume's allocated-but-unaccounted blocks plus the count
/// of such blocks — the complete statistical view an adversary gets of the
/// hidden population.
fn unaccounted_profile(fs: &StegFs<MemBlockDevice>) -> (f64, usize) {
    let sb = fs.plain_fs().superblock().clone();
    let plain_blocks: std::collections::HashSet<u64> = fs
        .plain_fs()
        .plain_object_blocks()
        .unwrap()
        .into_iter()
        .collect();
    let mut sample = Vec::new();
    let mut count = 0usize;
    for block in sb.data_start..sb.total_blocks {
        if fs.plain_fs().is_block_allocated(block) && !plain_blocks.contains(&block) {
            count += 1;
            if sample.len() < 96 * 1024 {
                sample.extend(fs.plain_fs().read_raw_block(block).unwrap());
            }
        }
    }
    (entropy_bits_per_byte(&sample), count)
}

#[test]
fn dispersed_volume_is_statistically_indistinguishable_from_a_plain_one() {
    // Same volume geometry, same seed, same logical content — one volume
    // stores the hidden file Plain, the other dispersed 2-of-4.  The
    // dispersed volume allocates more blocks (that is the price of
    // redundancy, and on its own says nothing: dummies, abandoned blocks
    // and bigger files move that number too), but the *blocks themselves*
    // must be statistically identical: shares are AES-CTR ciphertext placed
    // by independent locator probes, exactly like every other hidden block.
    let plain_fs = StegFs::format(
        MemBlockDevice::new(1024, 8192),
        stegfs_tests::full_feature_params(),
    )
    .unwrap();
    let coded_fs = StegFs::format(
        MemBlockDevice::new(1024, 8192),
        stegfs_tests::coded_params(2, 4),
    )
    .unwrap();
    for fs in [&plain_fs, &coded_fs] {
        fs.steg_create("payload", OWNER, ObjectKind::File).unwrap();
        fs.write_hidden_with_key("payload", OWNER, &vec![0u8; 80 * 1024])
            .unwrap();
    }

    let (e_plain, n_plain) = unaccounted_profile(&plain_fs);
    let (e_coded, n_coded) = unaccounted_profile(&coded_fs);
    assert!(n_coded > n_plain, "dispersal stores extra share blocks");
    assert!(
        e_plain > 7.5 && e_coded > 7.5,
        "both populations look like random fill ({e_plain:.2} vs {e_coded:.2})"
    );
    assert!(
        (e_plain - e_coded).abs() < 0.1,
        "share blocks must not be statistically separable from plain hidden \
         blocks ({e_plain:.3} vs {e_coded:.3} bits/byte)"
    );
    // The worst-case plaintext (all zeros, stored 4 ways) never surfaces.
    let sb = coded_fs.plain_fs().superblock().clone();
    let zero_block = vec![0u8; 1024];
    for block in sb.data_start..sb.total_blocks {
        if coded_fs.plain_fs().is_block_allocated(block) {
            assert_ne!(
                coded_fs.plain_fs().read_raw_block(block).unwrap(),
                zero_block
            );
        }
    }
}

#[test]
fn wrong_key_on_a_dispersed_volume_still_reads_as_never_existed() {
    let fs = StegFs::format(
        MemBlockDevice::new(1024, 8192),
        stegfs_tests::coded_params(2, 4),
    )
    .unwrap();
    fs.steg_create("coded-secret", OWNER, ObjectKind::File)
        .unwrap();
    fs.write_hidden_with_key("coded-secret", OWNER, &payload(3, 30 * 1024))
        .unwrap();

    let wrong = fs
        .read_hidden_with_key("coded-secret", "guessed key")
        .unwrap_err();
    let absent = fs
        .read_hidden_with_key("never-created", "guessed key")
        .unwrap_err();
    assert!(wrong.is_not_found());
    assert!(absent.is_not_found());
    let w = wrong.to_string().replace("coded-secret", "<name>");
    let a = absent.to_string().replace("never-created", "<name>");
    assert_eq!(
        w, a,
        "a coded object under the wrong key must read as never-existed"
    );
}

#[test]
fn formatting_without_random_fill_would_leak_and_is_therefore_detectable() {
    // Negative control for the entropy test above: on a volume formatted
    // *without* random fill, free blocks are all zeros, so allocated
    // encrypted blocks stand out starkly.  This documents why the paper's
    // format step writes random patterns everywhere.
    // No random fill, and none of the other camouflage either, so the only
    // allocated-but-unaccounted blocks are the encrypted ones of the hidden
    // file itself.
    let params = stegfs_core::StegParams {
        random_fill: false,
        abandoned_pct: 0.0,
        dummy_file_count: 0,
        free_blocks_min: 0,
        free_blocks_max: 0,
        ..full_feature_params()
    };
    let fs = StegFs::format(MemBlockDevice::new(1024, 4096), params).unwrap();
    fs.steg_create("obvious", OWNER, ObjectKind::File).unwrap();
    fs.write_hidden_with_key("obvious", OWNER, &vec![0u8; 50 * 1024])
        .unwrap();

    let sb = fs.plain_fs().superblock().clone();
    let plain_blocks: std::collections::HashSet<u64> = fs
        .plain_fs()
        .plain_object_blocks()
        .unwrap()
        .into_iter()
        .collect();
    let mut free_sample = Vec::new();
    let mut hidden_sample = Vec::new();
    for block in sb.data_start..sb.total_blocks {
        let allocated = fs.plain_fs().is_block_allocated(block);
        if !allocated && free_sample.len() < 32 * 1024 {
            free_sample.extend(fs.plain_fs().read_raw_block(block).unwrap());
        } else if allocated && !plain_blocks.contains(&block) && hidden_sample.len() < 32 * 1024 {
            hidden_sample.extend(fs.plain_fs().read_raw_block(block).unwrap());
        }
    }
    let e_free = entropy_bits_per_byte(&free_sample);
    let e_hidden = entropy_bits_per_byte(&hidden_sample);
    assert!(e_free < 1.0, "zero-filled free space has near-zero entropy");
    assert!(e_hidden > 7.0, "encrypted blocks are high entropy");
    // The gap is the leak: an adversary can spot hidden data immediately.
    assert!(e_hidden - e_free > 5.0);
}
