//! Property-based tests (proptest) over the core data paths: whatever is
//! written must come back intact, across arbitrary sizes, offsets and keys.

use proptest::prelude::*;
use stegfs_baselines::Ida;
use stegfs_blockdev::MemBlockDevice;
use stegfs_core::{ObjectKind, StegFs, StegParams};
use stegfs_fs::{AllocPolicy, FormatOptions, PlainFs};

fn quick_steg_params() -> StegParams {
    StegParams {
        random_fill: false,
        dummy_file_count: 0,
        abandoned_pct: 0.5,
        ..StegParams::for_tests()
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    #[test]
    fn plainfs_write_read_roundtrip(
        data in proptest::collection::vec(any::<u8>(), 0..40_000),
        policy_choice in 0u8..3
    ) {
        let policy = match policy_choice {
            0 => AllocPolicy::FirstFit,
            1 => AllocPolicy::Contiguous,
            _ => AllocPolicy::frag_disk(),
        };
        let fs = PlainFs::format(
            MemBlockDevice::new(1024, 2048),
            FormatOptions { policy, ..FormatOptions::default() },
        ).unwrap();
        fs.write_file("/f", &data).unwrap();
        prop_assert_eq!(fs.read_file("/f").unwrap(), data);
    }

    #[test]
    fn plainfs_range_reads_match_full_reads(
        data in proptest::collection::vec(any::<u8>(), 1..30_000),
        offset_frac in 0.0f64..1.0,
        len in 1usize..5_000
    ) {
        let fs = PlainFs::format(
            MemBlockDevice::new(1024, 2048),
            FormatOptions::default(),
        ).unwrap();
        fs.write_file("/f", &data).unwrap();
        let offset = (offset_frac * data.len() as f64) as u64;
        let got = fs.read_file_range("/f", offset, len).unwrap();
        let expected_end = ((offset as usize) + len).min(data.len());
        let expected = &data[(offset as usize).min(data.len())..expected_end];
        prop_assert_eq!(got, expected.to_vec());
    }

    #[test]
    fn hidden_file_roundtrip_arbitrary_contents(
        data in proptest::collection::vec(any::<u8>(), 0..60_000),
        uak in "[a-zA-Z0-9 ]{4,24}",
        name in "[a-z][a-z0-9-]{0,16}"
    ) {
        let fs = StegFs::format(MemBlockDevice::new(1024, 4096), quick_steg_params()).unwrap();
        fs.steg_create(&name, &uak, ObjectKind::File).unwrap();
        fs.write_hidden_with_key(&name, &uak, &data).unwrap();
        prop_assert_eq!(fs.read_hidden_with_key(&name, &uak).unwrap(), data);
        // A perturbed key cannot find it.
        let wrong = format!("{uak}!");
        prop_assert!(fs.read_hidden_with_key(&name, &wrong).unwrap_err().is_not_found());
    }

    #[test]
    fn hidden_rewrite_never_leaks_blocks(
        sizes in proptest::collection::vec(0usize..50_000, 1..5)
    ) {
        let fs = StegFs::format(MemBlockDevice::new(1024, 4096), quick_steg_params()).unwrap();
        fs.steg_create("rw", "key", ObjectKind::File).unwrap();
        let baseline = fs.space_report().unwrap().free_blocks;
        let mut last = Vec::new();
        for (i, &size) in sizes.iter().enumerate() {
            last = vec![(i % 251) as u8; size];
            fs.write_hidden_with_key("rw", "key", &last).unwrap();
        }
        prop_assert_eq!(fs.read_hidden_with_key("rw", "key").unwrap(), last.clone());
        // After deleting, every block the object ever held is free again
        // (the pool and all data/chain blocks).
        fs.delete_hidden("rw", "key").unwrap();
        let after = fs.space_report().unwrap().free_blocks;
        // The UAK directory itself still holds a handful of blocks.
        prop_assert!(after + 24 >= baseline,
            "free before {} vs after delete {}", baseline, after);
    }

    #[test]
    fn ida_reconstructs_from_any_threshold_subset(
        data in proptest::collection::vec(any::<u8>(), 0..2_000),
        m in 1usize..5,
        extra in 0usize..4,
        pick_seed in any::<u64>()
    ) {
        let n = m + extra;
        let ida = Ida::new(m, n).unwrap();
        let shares = ida.split(&data);
        // Pick a pseudo-random subset of exactly m shares.
        let mut order: Vec<usize> = (0..n).collect();
        let mut s = pick_seed;
        for i in (1..order.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            order.swap(i, (s >> 33) as usize % (i + 1));
        }
        let subset: Vec<_> = order[..m].iter().map(|&i| shares[i].clone()).collect();
        prop_assert_eq!(ida.reconstruct(&subset, data.len()).unwrap(), data);
    }

    #[test]
    fn crypto_block_cipher_roundtrip(
        key in proptest::collection::vec(any::<u8>(), 32..=32),
        nonce_seed in any::<u64>(),
        data in proptest::collection::vec(any::<u8>(), 0..4_096)
    ) {
        use stegfs_crypto::modes::{derive_iv, CtrCipher};
        let cipher = CtrCipher::new(&key);
        let iv = derive_iv(&key, nonce_seed);
        let mut buf = data.clone();
        cipher.apply(&iv, &mut buf);
        if !data.is_empty() {
            // Overwhelmingly likely to differ for non-trivial data.
            if data.iter().any(|&b| b != 0) || data.len() > 8 {
                prop_assert_ne!(&buf, &data);
            }
        }
        cipher.apply(&iv, &mut buf);
        prop_assert_eq!(buf, data);
    }
}
