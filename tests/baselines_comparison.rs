//! Behavioural comparisons between StegFS and the prior schemes — the claims
//! of §1 and §2 expressed as executable checks.

use stegfs_baselines::{BaselineError, Mnemosyne, StegCover, StegRand};
use stegfs_blockdev::{MemBlockDevice, MeteredDevice};
use stegfs_core::ObjectKind;
use stegfs_tests::{payload, test_volume};

#[test]
fn stegfs_never_loses_data_where_stegrand_does() {
    // Load the same sequence of files into StegFS and into StegRand (on
    // volumes of the same size) until the volume is reasonably full, then
    // read everything back.  StegFS must return every byte; StegRand is
    // expected to have destroyed something.
    let uak = "loader";
    let stegfs = test_volume(4096); // 4 MB
    let mut stegrand = StegRand::format(MemBlockDevice::new(1024, 4096), 4).unwrap();

    let mut stored = Vec::new();
    for i in 0..12 {
        let data = payload(i, 160 * 1024);
        let name = format!("file-{i}");
        match stegfs.steg_create(&name, uak, ObjectKind::File) {
            Ok(()) => match stegfs.write_hidden_with_key(&name, uak, &data) {
                Ok(()) => {}
                Err(stegfs_core::StegError::NoSpace) => break,
                Err(e) => panic!("unexpected StegFS error: {e}"),
            },
            Err(stegfs_core::StegError::NoSpace) => break,
            Err(e) => panic!("unexpected StegFS error: {e}"),
        }
        stegrand.store(&name, "pw", &data).unwrap();
        stored.push((name, data));
    }
    assert!(stored.len() >= 6, "expected to fit a meaningful load");

    let mut stegrand_losses = 0;
    for (name, data) in &stored {
        // StegFS: always intact.
        assert_eq!(
            stegfs.read_hidden_with_key(name, uak).unwrap(),
            *data,
            "StegFS lost {name}"
        );
        // StegRand: count the casualties.
        match stegrand.load(name, "pw", data.len()) {
            Ok(read) => {
                if read != *data {
                    stegrand_losses += 1;
                }
            }
            Err(BaselineError::DataLoss { .. }) | Err(BaselineError::NotFound(_)) => {
                stegrand_losses += 1
            }
            Err(e) => panic!("unexpected StegRand error: {e}"),
        }
    }
    assert!(
        stegrand_losses > 0,
        "at this load factor StegRand should have overwritten at least one file"
    );
}

#[test]
fn stegfs_uses_an_order_of_magnitude_fewer_ios_than_stegcover() {
    // Write then read one ~100 KB file through each scheme and compare the
    // I/O counts at the device level.
    let data = payload(42, 100 * 1024);

    // StegCover on a metered device.
    let metered = MeteredDevice::new(MemBlockDevice::new(1024, 16 * 1024));
    let cover_stats = metered.stats_handle();
    let mut cover = StegCover::format(metered, 512 * 1024, 16).unwrap();
    cover_stats.reset();
    cover.store("doc", "pw", &data).unwrap();
    cover.load("doc", "pw").unwrap();
    let cover_ops = cover_stats.snapshot().total_ops();

    // StegFS on a metered device.
    let metered = MeteredDevice::new(MemBlockDevice::new(1024, 16 * 1024));
    let steg_stats = metered.stats_handle();
    let fs = stegfs_core::StegFs::format(
        metered,
        stegfs_core::StegParams {
            random_fill: false,
            dummy_file_count: 0,
            ..stegfs_core::StegParams::for_tests()
        },
    )
    .unwrap();
    fs.steg_create("doc", "u", ObjectKind::File).unwrap();
    steg_stats.reset();
    fs.write_hidden_with_key("doc", "u", &data).unwrap();
    fs.read_hidden_with_key("doc", "u").unwrap();
    let steg_ops = steg_stats.snapshot().total_ops();

    assert!(
        cover_ops > steg_ops * 10,
        "StegCover used {cover_ops} I/Os vs StegFS {steg_ops}; expected >10x"
    );
}

#[test]
fn mnemosyne_needs_less_space_than_replication_for_equal_tolerance() {
    // Tolerating 2 lost copies: replication needs 3 copies (3x), a (4, 6)
    // dispersal needs 1.5x.  Verify both actually tolerate the damage.
    let data = payload(7, 30 * 1024);

    let mut rand = StegRand::format(MemBlockDevice::new(1024, 8192), 3).unwrap();
    rand.store("f", "pw", &data).unwrap();
    let replication_overhead = 3.0;

    // A roomier volume keeps the pseudorandom share placements collision-free
    // (collisions are a property of the scheme, not what this test checks).
    let mut mnem = Mnemosyne::format(MemBlockDevice::new(1024, 65_536), 4, 6).unwrap();
    mnem.store("f", "pw", &data).unwrap();
    let share_len = data.len().div_ceil(4);
    mnem.clobber_share("f", "pw", 1, share_len).unwrap();
    mnem.clobber_share("f", "pw", 4, share_len).unwrap();
    assert_eq!(mnem.load("f", "pw", data.len()).unwrap(), data);
    assert!(mnem.expansion() < replication_overhead);
}

#[test]
fn stegfs_and_baselines_all_deny_wrong_credentials_identically() {
    let data = payload(5, 8 * 1024);

    let fs = test_volume(4096);
    fs.steg_create("x", "right", ObjectKind::File).unwrap();
    fs.write_hidden_with_key("x", "right", &data).unwrap();
    assert!(fs
        .read_hidden_with_key("x", "wrong")
        .unwrap_err()
        .is_not_found());

    let mut cover = StegCover::format(MemBlockDevice::new(1024, 8192), 256 * 1024, 8).unwrap();
    cover.store("x", "right", &data).unwrap();
    assert!(matches!(
        cover.load("x", "wrong"),
        Err(BaselineError::NotFound(_))
    ));

    let mut rand = StegRand::format(MemBlockDevice::new(1024, 8192), 4).unwrap();
    rand.store("x", "right", &data).unwrap();
    assert!(matches!(
        rand.load("x", "wrong", data.len()),
        Err(BaselineError::NotFound(_))
    ));

    let mut mnem = Mnemosyne::format(MemBlockDevice::new(1024, 8192), 2, 4).unwrap();
    mnem.store("x", "right", &data).unwrap();
    assert!(matches!(
        mnem.load("x", "wrong", data.len()),
        Err(BaselineError::NotFound(_))
    ));
}
