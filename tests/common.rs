//! Shared fixtures for the cross-crate integration tests.

#![forbid(unsafe_code)]

use stegfs_blockdev::MemBlockDevice;
use stegfs_core::{Policy, StegFs, StegParams};

/// Parameters small enough for integration tests but with every feature
/// (abandoned blocks, dummy files, random fill) switched on, so the tests
/// exercise the same code paths as a production format.
pub fn full_feature_params() -> StegParams {
    StegParams {
        abandoned_pct: 2.0,
        free_blocks_min: 1,
        free_blocks_max: 6,
        dummy_file_count: 3,
        dummy_file_size: 8 * 1024,
        max_locator_probes: 50_000,
        volume_seed: 0xdead_beef,
        random_fill: true,
        journal_blocks: 0,
        readpath_cache_blocks: 1024,
        obs_enabled: true,
        trace_capacity: stegfs_core::TRACE_CAPACITY,
        hidden_policy: Policy::Plain,
        checkpoint_daemon: false,
    }
}

/// [`full_feature_params`] with a default coded durability policy, so every
/// hidden object the test creates is dispersed `m`-of-`n`.
pub fn coded_params(m: u8, n: u8) -> StegParams {
    StegParams {
        hidden_policy: Policy::Disperse { m, n },
        ..full_feature_params()
    }
}

/// [`full_feature_params`] plus a write-ahead journal, so the integration
/// tests can exercise the crash-consistent configuration with every
/// camouflage feature switched on.
pub fn journaled_params(journal_blocks: u64) -> StegParams {
    StegParams {
        journal_blocks,
        ..full_feature_params()
    }
}

/// Format a fresh in-memory StegFS volume of `blocks` 1 KB blocks with the
/// full-feature parameters.
pub fn test_volume(blocks: u64) -> StegFs<MemBlockDevice> {
    StegFs::format(MemBlockDevice::new(1024, blocks), full_feature_params())
        .expect("formatting an in-memory test volume")
}

/// Deterministic pseudo-random payload for test files.
pub fn payload(seed: u64, len: usize) -> Vec<u8> {
    let mut rng = stegfs_crypto::prng::XorShiftRng::new(seed);
    let mut data = vec![0u8; len];
    rng.fill(&mut data);
    data
}
