//! Property tests for VFS handle semantics: arbitrary sequences of
//! positional writes, positional reads, seeks, streaming I/O and truncates
//! are applied in lockstep to a plain handle, a hidden handle and a plain
//! `Vec<u8>` model — all three must agree at every step and at the end.

use proptest::prelude::*;
use std::io::SeekFrom;
use stegfs_blockdev::{MemBlockDevice, SharedDevice};
use stegfs_core::StegParams;
use stegfs_vfs::{OpenOptions, Vfs, VfsHandle};

/// One encoded operation: (opcode, position argument, length argument).
type Op = (u8, usize, usize);

const MAX_FILE: usize = 48 * 1024;

fn quick_params() -> StegParams {
    StegParams {
        random_fill: false,
        dummy_file_count: 0,
        ..StegParams::for_tests()
    }
}

/// Apply one op to the reference model, returning what the VFS must observe.
struct Model {
    data: Vec<u8>,
    pos: u64,
}

fn pattern(seed: usize, len: usize) -> Vec<u8> {
    (0..len).map(|i| ((seed + i * 7) % 256) as u8).collect()
}

/// Run `ops` against `handle`, checking every step against `model`.
fn drive(
    vfs: &Vfs<SharedDevice>,
    handle: VfsHandle,
    model: &mut Model,
    ops: &[Op],
) -> Result<(), TestCaseError> {
    for (step, &(code, pos_arg, len_arg)) in ops.iter().enumerate() {
        let len = model.data.len();
        match code % 6 {
            // Positional write somewhere within [0, len + 4k): may extend.
            0 => {
                let offset = pos_arg % (len + 1);
                let n = len_arg % 2048;
                if offset + n > MAX_FILE {
                    continue;
                }
                let data = pattern(step, n);
                vfs.write_at(handle, offset as u64, &data)
                    .map_err(|e| TestCaseError::fail(format!("write_at: {e}")))?;
                if !data.is_empty() {
                    if model.data.len() < offset + n {
                        model.data.resize(offset + n, 0);
                    }
                    model.data[offset..offset + n].copy_from_slice(&data);
                }
            }
            // Positional read anywhere, including past EOF.
            1 => {
                let offset = pos_arg % (len + 512 + 1);
                let n = len_arg % 4096;
                let got = vfs
                    .read_at(handle, offset as u64, n)
                    .map_err(|e| TestCaseError::fail(format!("read_at: {e}")))?;
                let start = offset.min(model.data.len());
                let end = (offset + n).min(model.data.len());
                prop_assert_eq!(&got, &model.data[start..end], "read_at step {}", step);
            }
            // Truncate: shrink or zero-extend.
            2 => {
                let new_len = pos_arg % (MAX_FILE + 1);
                vfs.truncate(handle, new_len as u64)
                    .map_err(|e| TestCaseError::fail(format!("truncate: {e}")))?;
                model.data.resize(new_len, 0);
                let size = vfs
                    .handle_size(handle)
                    .map_err(|e| TestCaseError::fail(format!("size: {e}")))?;
                prop_assert_eq!(size, new_len as u64, "size after truncate step {}", step);
            }
            // Seek (absolute, relative, or from end) — past-EOF allowed.
            3 => {
                let target = match len_arg % 3 {
                    0 => SeekFrom::Start((pos_arg % (MAX_FILE + 512)) as u64),
                    1 => {
                        let delta = (pos_arg % 1024) as i64 - 512;
                        if model.pos as i64 + delta < 0 {
                            SeekFrom::Start(0)
                        } else {
                            SeekFrom::Current(delta)
                        }
                    }
                    _ => SeekFrom::End(-((pos_arg % (model.data.len() + 1)) as i64)),
                };
                let new_pos = vfs
                    .seek(handle, target)
                    .map_err(|e| TestCaseError::fail(format!("seek: {e}")))?;
                model.pos = match target {
                    SeekFrom::Start(n) => n,
                    SeekFrom::Current(d) => (model.pos as i64 + d) as u64,
                    SeekFrom::End(d) => (model.data.len() as i64 + d) as u64,
                };
                prop_assert_eq!(new_pos, model.pos, "seek result step {}", step);
            }
            // Streaming read advances the offset.
            4 => {
                let n = len_arg % 2048;
                let got = vfs
                    .read(handle, n)
                    .map_err(|e| TestCaseError::fail(format!("read: {e}")))?;
                let start = (model.pos as usize).min(model.data.len());
                let end = (model.pos as usize + n).min(model.data.len());
                prop_assert_eq!(&got, &model.data[start..end], "read step {}", step);
                model.pos += got.len() as u64;
            }
            // Streaming write advances the offset and zero-fills seek gaps.
            _ => {
                let n = len_arg % 1024;
                if model.pos as usize + n > MAX_FILE {
                    continue;
                }
                let data = pattern(step * 31 + 7, n);
                vfs.write(handle, &data)
                    .map_err(|e| TestCaseError::fail(format!("write: {e}")))?;
                if !data.is_empty() {
                    let offset = model.pos as usize;
                    if model.data.len() < offset + n {
                        model.data.resize(offset + n, 0);
                    }
                    model.data[offset..offset + n].copy_from_slice(&data);
                }
                model.pos += n as u64;
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        ..ProptestConfig::default()
    })]

    #[test]
    fn handle_semantics_match_vec_model(
        ops in proptest::collection::vec(
            (any::<u8>(), 0usize..64 * 1024, 0usize..4096),
            1..40
        )
    ) {
        let dev = SharedDevice::new(MemBlockDevice::new(1024, 8192));
        let vfs = Vfs::format(dev, quick_params()).unwrap();
        let session = vfs.signon("property key");

        // The same op sequence drives a hidden file and a plain file; both
        // must track the model exactly.
        for path in ["/hidden/model", "/plain/model"] {
            let handle = vfs.open(session, path, OpenOptions::read_write()).unwrap();
            let mut model = Model { data: Vec::new(), pos: 0 };
            drive(&vfs, handle, &mut model, &ops)?;

            // Final state: sizes agree and the full contents agree.
            let size = vfs.handle_size(handle).unwrap();
            prop_assert_eq!(size, model.data.len() as u64, "final size of {}", path);
            let contents = vfs.read_at(handle, 0, model.data.len() + 1).unwrap();
            prop_assert_eq!(contents, model.data, "final contents of {}", path);
            vfs.close(handle).unwrap();
        }
    }

    #[test]
    fn truncate_grow_shrink_cycles_preserve_prefix(
        sizes in proptest::collection::vec(0usize..20_000, 1..12)
    ) {
        let dev = SharedDevice::new(MemBlockDevice::new(1024, 8192));
        let vfs = Vfs::format(dev, quick_params()).unwrap();
        let session = vfs.signon("trunc key");
        let h = vfs.open(session, "/hidden/t", OpenOptions::read_write()).unwrap();

        let seed = pattern(99, 20_000);
        vfs.write_at(h, 0, &seed[..sizes[0].min(seed.len())]).unwrap();
        let mut model: Vec<u8> = seed[..sizes[0].min(seed.len())].to_vec();

        for &s in &sizes {
            vfs.truncate(h, s as u64).unwrap();
            model.resize(s, 0);
            prop_assert_eq!(vfs.handle_size(h).unwrap(), s as u64);
        }
        let final_contents = vfs.read_at(h, 0, model.len() + 1).unwrap();
        prop_assert_eq!(final_contents, model);
        vfs.close(h).unwrap();
    }
}
