//! Batched block I/O: equivalence and submission-count guarantees.
//!
//! Two families of checks:
//!
//! * a property test that `read_blocks` / `write_blocks` is observably
//!   identical to the block-at-a-time loop on **every** device
//!   implementation (the trait's default, the native in-memory/cache/meter
//!   paths, the shared handle, the timing models);
//! * metered assertions that the file-system layers actually *use* the batch
//!   path: a multi-block read or write of a 16-block object reaches the
//!   device as **one** batched submission, for plain files and hidden
//!   objects alike.

use proptest::prelude::*;
use std::time::Duration;
use stegfs_blockdev::{
    BlockDevice, BufferCache, CorruptingDevice, DiskParameters, FlakyDevice, LatencyDevice,
    MemBlockDevice, MeteredDevice, RetryDevice, SharedDevice, SimDisk,
};
use stegfs_core::crypt::ObjectKeys;
use stegfs_core::{hidden, ObjectKind, StegParams};
use stegfs_crypto::prng::DeterministicRng;
use stegfs_fs::{FormatOptions, PlainFs};

const BS: usize = 256;
const TOTAL: u64 = 64;

/// Write via one batched submission, read back block at a time — then write
/// block at a time, read back via one batched submission.  Both directions
/// must agree bytewise with the loop semantics on `dev`.
fn assert_batch_equals_loop<D: BlockDevice>(dev: &D, blocks: &[u64], seed: u8) {
    let data: Vec<u8> = (0..blocks.len() * BS)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
        .collect();

    dev.write_blocks(blocks, &data).unwrap();
    let mut single = vec![0u8; BS];
    for (i, &b) in blocks.iter().enumerate() {
        dev.read_block(b, &mut single).unwrap();
        assert_eq!(single, &data[i * BS..(i + 1) * BS], "block {b} via loop");
    }

    let reversed: Vec<u8> = data.iter().rev().copied().collect();
    for (i, &b) in blocks.iter().enumerate() {
        dev.write_block(b, &reversed[i * BS..(i + 1) * BS]).unwrap();
    }
    let mut batched = vec![0u8; blocks.len() * BS];
    dev.read_blocks(blocks, &mut batched).unwrap();
    assert_eq!(batched, reversed, "batched read disagrees with loop writes");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn batched_io_equals_block_at_a_time_on_every_device(
        raw in proptest::collection::vec(0u64..TOTAL, 1..24),
        seed in any::<u64>(),
    ) {
        // Distinct blocks keep the property crisp (ordering of duplicate
        // writes is covered by `duplicate_blocks_apply_in_order`).
        let mut blocks = raw.clone();
        blocks.sort_unstable();
        blocks.dedup();
        let seed = seed as u8;

        assert_batch_equals_loop(&MemBlockDevice::new(BS, TOTAL), &blocks, seed);
        assert_batch_equals_loop(
            &LatencyDevice::symmetric(MemBlockDevice::new(BS, TOTAL), Duration::from_micros(20)),
            &blocks,
            seed,
        );
        assert_batch_equals_loop(&MeteredDevice::new(MemBlockDevice::new(BS, TOTAL)), &blocks, seed);
        assert_batch_equals_loop(&BufferCache::new(MemBlockDevice::new(BS, TOTAL), 8), &blocks, seed);
        assert_batch_equals_loop(&SharedDevice::new(MemBlockDevice::new(BS, TOTAL)), &blocks, seed);
        // SimDisk exercises the trait's default (loop) implementation.
        assert_batch_equals_loop(
            &SimDisk::new(MemBlockDevice::new(BS, TOTAL), DiskParameters::ultra_ata_100()),
            &blocks,
            seed,
        );
        // The fault injectors are pass-throughs for healthy I/O and must not
        // disturb batch/loop equivalence.
        assert_batch_equals_loop(&CorruptingDevice::new(MemBlockDevice::new(BS, TOTAL)), &blocks, seed);
        assert_batch_equals_loop(
            &RetryDevice::new(
                FlakyDevice::new(MemBlockDevice::new(BS, TOTAL), 9, 10, 1),
                8,
                Duration::ZERO,
            ),
            &blocks,
            seed,
        );
    }

    /// Damage at rest must be indifferent to the submission shape: a volume
    /// populated with one batched write and a volume populated block at a
    /// time receive byte-identical damage from the same seeded call, and the
    /// damaged image reads back identically through both read paths.
    #[test]
    fn corrupting_device_damage_is_identical_across_batch_and_loop(
        raw in proptest::collection::vec(0u64..TOTAL, 2..24),
        damage_count in 1usize..8,
        seed in any::<u64>(),
    ) {
        let mut blocks = raw.clone();
        blocks.sort_unstable();
        blocks.dedup();
        let data: Vec<u8> = (0..blocks.len() * BS)
            .map(|i| (i as u8).wrapping_mul(77).wrapping_add(seed as u8))
            .collect();

        let batched_dev = CorruptingDevice::new(MemBlockDevice::new(BS, TOTAL));
        batched_dev.write_blocks(&blocks, &data).unwrap();
        let loop_dev = CorruptingDevice::new(MemBlockDevice::new(BS, TOTAL));
        for (i, &b) in blocks.iter().enumerate() {
            loop_dev.write_block(b, &data[i * BS..(i + 1) * BS]).unwrap();
        }

        let ra = batched_dev.corrupt_random_in(&blocks, damage_count, seed).unwrap();
        let rb = loop_dev.corrupt_random_in(&blocks, damage_count, seed).unwrap();
        prop_assert_eq!(ra, rb, "same seed, same damage tally");

        // Batched read of the batch-written volume vs loop read of the
        // loop-written volume: the damaged images must agree bytewise.
        let mut via_batch = vec![0u8; blocks.len() * BS];
        batched_dev.read_blocks(&blocks, &mut via_batch).unwrap();
        let mut via_loop = vec![0u8; blocks.len() * BS];
        for (i, &b) in blocks.iter().enumerate() {
            loop_dev.read_block(b, &mut via_loop[i * BS..(i + 1) * BS]).unwrap();
        }
        prop_assert_eq!(&via_batch, &via_loop, "damaged state diverges between paths");

        // And each device agrees with itself across read paths.
        let mut cross = vec![0u8; blocks.len() * BS];
        for (i, &b) in blocks.iter().enumerate() {
            batched_dev.read_block(b, &mut cross[i * BS..(i + 1) * BS]).unwrap();
        }
        prop_assert_eq!(&cross, &via_batch, "batch-written device read paths diverge");
    }
}

#[test]
fn duplicate_blocks_apply_in_order() {
    // A batch naming one block twice behaves like the loop: last write wins.
    for dev in [
        Box::new(MemBlockDevice::new(BS, TOTAL)) as Box<dyn BlockDevice>,
        Box::new(BufferCache::new(MemBlockDevice::new(BS, TOTAL), 4)),
        Box::new(MeteredDevice::new(MemBlockDevice::new(BS, TOTAL))),
    ] {
        let mut data = vec![1u8; 2 * BS];
        data[BS..].fill(2);
        dev.write_blocks(&[7, 7], &data).unwrap();
        assert_eq!(dev.read_block_vec(7).unwrap(), vec![2u8; BS]);
        // And a duplicate read batch returns the block twice.
        let mut out = vec![0u8; 2 * BS];
        dev.read_blocks(&[7, 7], &mut out).unwrap();
        assert_eq!(out, vec![2u8; 2 * BS]);
    }
}

#[test]
fn batch_geometry_errors_match_the_loop() {
    let dev = MemBlockDevice::new(BS, TOTAL);
    let mut buf = vec![0u8; 2 * BS];
    // Out-of-range block anywhere in the batch fails the whole submission.
    assert!(dev.read_blocks(&[0, TOTAL], &mut buf).is_err());
    assert!(dev.write_blocks(&[0, TOTAL], &buf).is_err());
    // Mismatched buffer length is rejected up front.
    assert!(dev.read_blocks(&[0], &mut buf).is_err());
    assert!(dev.write_blocks(&[0, 1, 2], &buf).is_err());
}

// ----------------------------------------------------------------------
// The layers above must *route* multi-block object I/O through one batch.
// ----------------------------------------------------------------------

const OBJECT_BLOCKS: usize = 16;

#[test]
fn plain_16_block_file_io_is_one_batched_submission() {
    let dev = MeteredDevice::new(MemBlockDevice::new(1024, 8192));
    let stats = dev.stats_handle();
    let fs = PlainFs::format(dev, FormatOptions::default()).unwrap();
    let data = vec![0xa5u8; OBJECT_BLOCKS * 1024];
    fs.write_file("/f", &data).unwrap();
    let id = fs.resolve_file("/f").unwrap();

    // Whole-file rewrite: 16 data blocks in ONE submission, plus the
    // indirect pointer block and the inode-table block as singles.
    stats.reset();
    fs.write_inode_file(id, &data).unwrap();
    let s = stats.snapshot();
    assert_eq!(s.writes, 18, "16 data + 1 pointer + 1 inode block: {s:?}");
    assert_eq!(
        s.write_submissions, 3,
        "the 16-block extent must ride one batched submission: {s:?}"
    );

    // Whole-range read: inode + pointer block as singles, the 16-block
    // extent as ONE submission.
    stats.reset();
    assert_eq!(fs.read_inode_range(id, 0, data.len()).unwrap(), data);
    let s = stats.snapshot();
    assert_eq!(s.reads, 18, "1 inode + 1 pointer + 16 data: {s:?}");
    assert_eq!(
        s.read_submissions, 3,
        "the 16-block extent must ride one batched submission: {s:?}"
    );
}

#[test]
fn hidden_16_block_object_io_is_one_batched_submission() {
    let dev = MeteredDevice::new(MemBlockDevice::new(1024, 8192));
    let stats = dev.stats_handle();
    let fs = PlainFs::format(dev, FormatOptions::default()).unwrap();
    let keys = ObjectKeys::derive("batched", b"fak");
    let params = StegParams::for_tests();
    let mut rng = DeterministicRng::new(b"batched-io");
    let mut obj = hidden::create(&fs, "batched", &keys, ObjectKind::File, &params).unwrap();
    let data = vec![0x3cu8; OBJECT_BLOCKS * 1024];
    hidden::write(&fs, &keys, &mut obj, &data, &params, &mut rng).unwrap();

    // Rewrite: 16 data blocks in ONE submission, one chain block and the
    // header as further submissions, and the old chain read as one single.
    stats.reset();
    hidden::write(&fs, &keys, &mut obj, &data, &params, &mut rng).unwrap();
    let s = stats.snapshot();
    assert_eq!(s.writes, 18, "16 data + 1 chain + 1 header: {s:?}");
    assert_eq!(
        s.write_submissions, 3,
        "the 16-block extent must ride one batched submission: {s:?}"
    );

    // Read: one single for the chain block, ONE batch for all 16 data
    // blocks.
    stats.reset();
    assert_eq!(hidden::read(&fs, &keys, &obj).unwrap(), data);
    let s = stats.snapshot();
    assert_eq!(s.reads, 17, "1 chain + 16 data: {s:?}");
    assert_eq!(
        s.read_submissions, 2,
        "the 16-block extent must ride one batched submission: {s:?}"
    );
}
