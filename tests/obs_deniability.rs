//! Deniability tests for the observability layer (`stegfs-obs`).
//!
//! The obs registry trades visibility for nothing: an adversary who can read
//! the metrics output (or image RAM after a sign-off, or image the disk with
//! instrumentation on) must learn exactly what they would learn without it.
//! These tests pin the three load-bearing claims:
//!
//! 1. The snapshot's *shape* — every key, label, and metric name — is a
//!    static property of the binary, identical whether or not hidden objects
//!    exist or were ever touched.  Only numeric magnitudes vary.  The same
//!    holds one level down for the span layer: the attribution table's shape
//!    and the chrome-trace export's label vocabulary are closed sets baked
//!    into the binary.
//! 2. The RAM-only trace ring, the slow-request capture, and any in-flight
//!    chrome-trace capture are scrubbed on session sign-off.
//! 3. The on-disk image is bit-identical with observability on and off, and
//!    with tracing on and off: nothing about the registry is ever persisted.
//! 4. Request ids in span trees come from a process-global monotonic
//!    counter, never from key material.

use std::sync::Arc;
use stegfs_blockdev::{BlockDevice, MemBlockDevice, SharedDevice};
use stegfs_core::{ObjectKind, StegFs, StegParams};
use stegfs_engine::{Client, Engine, Request, Response};
use stegfs_tests::{full_feature_params, payload};
use stegfs_vfs::{OpenOptions, Vfs, VfsHandle};

const OWNER: &str = "the real key";

fn obs_params() -> StegParams {
    StegParams {
        obs_enabled: true,
        ..full_feature_params()
    }
}

/// Run a workload on a fresh volume and return the obs snapshot.  When
/// `hidden` is set, the workload also creates, rewrites, and reads hidden
/// objects; op counts deliberately differ so only the *values* can diverge.
fn snapshot_after_workload(hidden: bool) -> stegfs_obs::Snapshot {
    let fs = StegFs::format(MemBlockDevice::new(1024, 8192), obs_params()).unwrap();
    fs.write_plain("/cover.txt", &payload(1, 32 * 1024))
        .unwrap();
    fs.write_plain("/cover2.txt", &payload(2, 16 * 1024))
        .unwrap();
    fs.read_plain("/cover.txt").unwrap();
    if hidden {
        fs.steg_create("secret-a", OWNER, ObjectKind::File).unwrap();
        fs.write_hidden_with_key("secret-a", OWNER, &payload(3, 96 * 1024))
            .unwrap();
        fs.read_hidden_with_key("secret-a", OWNER).unwrap();
        fs.write_hidden_with_key("secret-a", OWNER, &payload(4, 48 * 1024))
            .unwrap();
    }
    fs.sync().unwrap();
    fs.obs().snapshot()
}

#[test]
fn snapshot_shape_is_independent_of_hidden_activity() {
    let without = snapshot_after_workload(false);
    let with = snapshot_after_workload(true);
    // Byte-identical shape: same keys, same labels, same structure.  Only
    // digit runs (the measured magnitudes) are allowed to differ.
    assert_eq!(
        without.shape(),
        with.shape(),
        "metric names/structure must not depend on hidden objects"
    );
    // And the JSON never embeds workload identifiers: names, keys, paths.
    let json = with.to_json();
    for leak in ["secret-a", OWNER, "cover", "/"] {
        assert!(
            !json.contains(leak),
            "snapshot JSON must not contain {leak:?}"
        );
    }
}

fn eng_open<D: BlockDevice + Send + Sync + 'static>(client: &Client<D>, path: &str) -> VfsHandle {
    match client
        .call(Request::Open {
            path: path.into(),
            opts: OpenOptions::read_write(),
        })
        .result
        .unwrap()
    {
        Response::Handle(h) => h,
        other => panic!("open returned {other:?}"),
    }
}

fn eng_write<D: BlockDevice + Send + Sync + 'static>(
    client: &Client<D>,
    h: VfsHandle,
    data: Vec<u8>,
) {
    let len = data.len();
    match client
        .call(Request::WriteAt {
            handle: h,
            offset: 0,
            data,
        })
        .result
        .unwrap()
    {
        Response::Written(n) => assert_eq!(n, len),
        other => panic!("write returned {other:?}"),
    }
}

fn eng_read<D: BlockDevice + Send + Sync + 'static>(client: &Client<D>, h: VfsHandle, len: usize) {
    client
        .call(Request::ReadAt {
            handle: h,
            offset: 0,
            len,
        })
        .result
        .unwrap();
}

fn eng_close<D: BlockDevice + Send + Sync + 'static>(client: &Client<D>, h: VfsHandle) {
    client.call(Request::Close { handle: h }).result.unwrap();
}

#[test]
fn trace_slow_and_capture_rings_are_zeroized_on_signoff() {
    let dev = MemBlockDevice::new(1024, 8192);
    let vfs = Arc::new(Vfs::format(dev, obs_params()).unwrap());
    let engine = Arc::new(Engine::start(Arc::clone(&vfs), 2));
    vfs.obs().capture.begin(1024);
    let client = engine.client(OWNER);
    let h = eng_open(&client, "/hidden/diary");
    eng_write(&client, h, payload(5, 8 * 1024));
    eng_close(&client, h);
    assert!(
        vfs.obs().trace.accepted() > 0,
        "engine ops must land spans in the trace ring"
    );
    assert!(
        vfs.obs().slow.offered() > 0 && !vfs.obs().slow.is_zeroed(),
        "completed requests must be offered to the slow capture"
    );
    assert!(
        !vfs.obs().capture.is_zeroed(),
        "an active chrome-trace capture must hold the run's trees"
    );
    client.signoff().unwrap();
    assert!(
        vfs.obs().trace.is_zeroed(),
        "signoff must scrub the trace ring"
    );
    assert!(
        vfs.obs().slow.is_zeroed(),
        "signoff must scrub the slow-request capture"
    );
    assert!(
        vfs.obs().capture.is_zeroed(),
        "signoff must scrub any in-flight chrome-trace capture"
    );
    Arc::try_unwrap(engine)
        .unwrap_or_else(|_| panic!("engine still shared"))
        .shutdown();
}

/// Drive a fixed engine request sequence (optionally touching a hidden
/// object) and return the attribution-table shape plus the run's
/// chrome-trace JSON.
fn span_layer_run(key: &str, hidden: bool) -> (String, String) {
    let vfs = Arc::new(Vfs::format(MemBlockDevice::new(1024, 8192), obs_params()).unwrap());
    let engine = Arc::new(Engine::start(Arc::clone(&vfs), 1));
    vfs.obs().capture.begin(4096);
    let client = engine.client(key);
    let h = eng_open(&client, "/plain/cover.dat");
    eng_write(&client, h, payload(21, 16 * 1024));
    eng_read(&client, h, 16 * 1024);
    eng_close(&client, h);
    if hidden {
        let h = eng_open(&client, "/hidden/secret-a");
        eng_write(&client, h, payload(22, 16 * 1024));
        eng_read(&client, h, 16 * 1024);
        eng_close(&client, h);
    }
    let (events, _) = vfs.obs().capture.take();
    let json = stegfs_obs::chrome_trace_json(&events);
    let shape = vfs.obs().attribution.summary().shape();
    client.signoff().unwrap();
    Arc::try_unwrap(engine)
        .unwrap_or_else(|_| panic!("engine still shared"))
        .shutdown();
    (shape, json)
}

#[test]
fn span_layer_shape_is_independent_of_hidden_activity() {
    let (plain_shape, _) = span_layer_run(OWNER, false);
    let (hidden_shape, json) = span_layer_run(OWNER, true);
    // The attribution table is a fixed ENGINE_OPS × phases grid: its shape
    // (keys, labels, structure) is byte-identical whether or not hidden
    // objects were ever touched.
    assert_eq!(
        plain_shape, hidden_shape,
        "attribution shape must not depend on hidden activity"
    );
    // The export never embeds workload identifiers.
    for leak in ["secret", OWNER, "cover", "/plain", "/hidden"] {
        assert!(
            !json.contains(leak),
            "trace export must not contain {leak:?}"
        );
    }
    // Every event label is drawn from the closed static vocabulary baked
    // into the binary — call sites cannot invent names.
    let mut rest = json.as_str();
    let mut seen = 0usize;
    while let Some(i) = rest.find("\"name\": \"") {
        rest = &rest[i + 9..];
        let end = rest.find('"').expect("name string terminated");
        let name = &rest[..end];
        assert!(
            stegfs_obs::PHASE_NAMES.contains(&name) || stegfs_obs::ENGINE_OPS.contains(&name),
            "trace event label {name:?} is not in the static vocabulary"
        );
        rest = &rest[end..];
        seen += 1;
    }
    assert!(seen > 0, "the hidden run must export events");
    let mut rest = json.as_str();
    while let Some(i) = rest.find("\"cat\": \"") {
        rest = &rest[i + 8..];
        let end = rest.find('"').expect("cat string terminated");
        assert!(matches!(&rest[..end], "request" | "phase"));
        rest = &rest[end..];
    }
}

#[test]
fn request_ids_are_counter_allocated_never_key_derived() {
    // The same workload under two unrelated access keys: if span request
    // ids were in any way derived from key material the two id sets could
    // interleave or collide.  A process-global monotonic counter — the only
    // allocator — makes every id of the later run strictly greater than
    // every id of the earlier run.
    let ids = |key: &str| -> Vec<u64> {
        let vfs = Arc::new(Vfs::format(MemBlockDevice::new(1024, 8192), obs_params()).unwrap());
        let engine = Arc::new(Engine::start(Arc::clone(&vfs), 1));
        vfs.obs().capture.begin(4096);
        let client = engine.client(key);
        let h = eng_open(&client, "/hidden/diary");
        eng_write(&client, h, payload(31, 8 * 1024));
        eng_close(&client, h);
        let (events, _) = vfs.obs().capture.take();
        client.signoff().unwrap();
        Arc::try_unwrap(engine)
            .unwrap_or_else(|_| panic!("engine still shared"))
            .shutdown();
        events
            .iter()
            .filter(|e| e.cat == "request")
            .map(|e| e.req_id)
            .collect()
    };
    let first = ids("alpha key material");
    let second = ids("a completely different key");
    assert_eq!(first.len(), second.len(), "identical workloads");
    assert!(!first.is_empty());
    let max_first = *first.iter().max().unwrap();
    let min_second = *second.iter().min().unwrap();
    assert!(
        min_second > max_first,
        "request ids must advance monotonically across sessions ({min_second} <= {max_first})"
    );
}

/// Image every block of the volume through the raw-read path.
fn image(fs: &StegFs<MemBlockDevice>) -> Vec<u8> {
    let total = fs.plain_fs().superblock().total_blocks;
    let mut out = Vec::new();
    for b in 0..total {
        out.extend(fs.plain_fs().read_raw_block(b).unwrap());
    }
    out
}

#[test]
fn disk_image_is_bit_identical_with_obs_on_and_off() {
    let run = |obs_enabled: bool| -> Vec<u8> {
        let params = StegParams {
            obs_enabled,
            ..full_feature_params()
        };
        let fs = StegFs::format(MemBlockDevice::new(1024, 4096), params).unwrap();
        fs.write_plain("/cover.txt", &payload(7, 24 * 1024))
            .unwrap();
        fs.steg_create("secret", OWNER, ObjectKind::File).unwrap();
        fs.write_hidden_with_key("secret", OWNER, &payload(8, 64 * 1024))
            .unwrap();
        fs.read_hidden_with_key("secret", OWNER).unwrap();
        fs.sync().unwrap();
        image(&fs)
    };
    assert_eq!(
        run(true),
        run(false),
        "instrumentation must leave no mark on the volume"
    );
}

#[test]
fn disk_image_is_bit_identical_with_tracing_on_and_off() {
    // Same workload driven through the full engine stack, once with the
    // trace ring disabled (`trace_capacity: 0`) and once with tracing plus
    // an active chrome-trace capture.  An adversary imaging the raw device
    // afterwards sees the same bytes either way.
    let run = |trace_capacity: usize| -> Vec<u8> {
        let params = StegParams {
            trace_capacity,
            ..full_feature_params()
        };
        let shared = SharedDevice::new(MemBlockDevice::new(1024, 8192));
        let adversary = shared.clone();
        let vfs = Arc::new(Vfs::format(shared, params).unwrap());
        let engine = Arc::new(Engine::start(Arc::clone(&vfs), 1));
        if trace_capacity > 0 {
            vfs.obs().capture.begin(trace_capacity);
        }
        let client = engine.client(OWNER);
        let h = eng_open(&client, "/plain/cover.dat");
        eng_write(&client, h, payload(41, 24 * 1024));
        eng_close(&client, h);
        let h = eng_open(&client, "/hidden/secret");
        eng_write(&client, h, payload(42, 32 * 1024));
        eng_read(&client, h, 32 * 1024);
        eng_close(&client, h);
        client.signoff().unwrap();
        vfs.sync().unwrap();
        Arc::try_unwrap(engine)
            .unwrap_or_else(|_| panic!("engine still shared"))
            .shutdown();
        drop(vfs);
        let total = adversary.total_blocks();
        let mut out = Vec::new();
        for b in 0..total {
            out.extend(adversary.read_block_shared(b).unwrap());
        }
        out
    };
    assert_eq!(
        run(0),
        run(1024),
        "tracing must leave no mark on the volume"
    );
}

#[test]
fn disabled_registry_collects_nothing() {
    let params = StegParams {
        obs_enabled: false,
        ..full_feature_params()
    };
    let fs = StegFs::format(MemBlockDevice::new(1024, 4096), params).unwrap();
    fs.write_plain("/cover.txt", &payload(9, 16 * 1024))
        .unwrap();
    fs.sync().unwrap();
    let snap = fs.obs().snapshot();
    assert!(!snap.enabled);
    for (name, lock) in &snap.locks {
        assert_eq!(lock.acquisitions, 0, "{name} counted while disabled");
    }
    assert_eq!(snap.device.reads, 0);
    assert_eq!(snap.device.writes, 0);
    assert_eq!(snap.trace_accepted, 0);
}
