//! Deniability tests for the observability layer (`stegfs-obs`).
//!
//! The obs registry trades visibility for nothing: an adversary who can read
//! the metrics output (or image RAM after a sign-off, or image the disk with
//! instrumentation on) must learn exactly what they would learn without it.
//! These tests pin the three load-bearing claims:
//!
//! 1. The snapshot's *shape* — every key, label, and metric name — is a
//!    static property of the binary, identical whether or not hidden objects
//!    exist or were ever touched.  Only numeric magnitudes vary.
//! 2. The RAM-only trace ring is scrubbed on session sign-off.
//! 3. The on-disk image is bit-identical with observability on and off:
//!    nothing about the registry is ever persisted.

use std::sync::Arc;
use stegfs_blockdev::MemBlockDevice;
use stegfs_core::{ObjectKind, StegFs, StegParams};
use stegfs_engine::{Engine, Request, Response};
use stegfs_tests::{full_feature_params, payload};
use stegfs_vfs::{OpenOptions, Vfs};

const OWNER: &str = "the real key";

fn obs_params() -> StegParams {
    StegParams {
        obs_enabled: true,
        ..full_feature_params()
    }
}

/// Run a workload on a fresh volume and return the obs snapshot.  When
/// `hidden` is set, the workload also creates, rewrites, and reads hidden
/// objects; op counts deliberately differ so only the *values* can diverge.
fn snapshot_after_workload(hidden: bool) -> stegfs_obs::Snapshot {
    let fs = StegFs::format(MemBlockDevice::new(1024, 8192), obs_params()).unwrap();
    fs.write_plain("/cover.txt", &payload(1, 32 * 1024))
        .unwrap();
    fs.write_plain("/cover2.txt", &payload(2, 16 * 1024))
        .unwrap();
    fs.read_plain("/cover.txt").unwrap();
    if hidden {
        fs.steg_create("secret-a", OWNER, ObjectKind::File).unwrap();
        fs.write_hidden_with_key("secret-a", OWNER, &payload(3, 96 * 1024))
            .unwrap();
        fs.read_hidden_with_key("secret-a", OWNER).unwrap();
        fs.write_hidden_with_key("secret-a", OWNER, &payload(4, 48 * 1024))
            .unwrap();
    }
    fs.sync().unwrap();
    fs.obs().snapshot()
}

#[test]
fn snapshot_shape_is_independent_of_hidden_activity() {
    let without = snapshot_after_workload(false);
    let with = snapshot_after_workload(true);
    // Byte-identical shape: same keys, same labels, same structure.  Only
    // digit runs (the measured magnitudes) are allowed to differ.
    assert_eq!(
        without.shape(),
        with.shape(),
        "metric names/structure must not depend on hidden objects"
    );
    // And the JSON never embeds workload identifiers: names, keys, paths.
    let json = with.to_json();
    for leak in ["secret-a", OWNER, "cover", "/"] {
        assert!(
            !json.contains(leak),
            "snapshot JSON must not contain {leak:?}"
        );
    }
}

#[test]
fn trace_ring_is_zeroized_on_signoff() {
    let dev = MemBlockDevice::new(1024, 8192);
    let vfs = Arc::new(Vfs::format(dev, obs_params()).unwrap());
    let engine = Arc::new(Engine::start(Arc::clone(&vfs), 2));
    let client = engine.client(OWNER);
    let h = match client
        .call(Request::Open {
            path: "/hidden/diary".into(),
            opts: OpenOptions::read_write(),
        })
        .result
        .unwrap()
    {
        Response::Handle(h) => h,
        other => panic!("open returned {other:?}"),
    };
    match client
        .call(Request::WriteAt {
            handle: h,
            offset: 0,
            data: payload(5, 8 * 1024),
        })
        .result
        .unwrap()
    {
        Response::Written(n) => assert_eq!(n, 8 * 1024),
        other => panic!("write returned {other:?}"),
    }
    client.call(Request::Close { handle: h });
    assert!(
        vfs.obs().trace.accepted() > 0,
        "engine ops must land spans in the trace ring"
    );
    client.signoff().unwrap();
    assert!(
        vfs.obs().trace.is_zeroed(),
        "signoff must scrub the trace ring"
    );
    Arc::try_unwrap(engine)
        .unwrap_or_else(|_| panic!("engine still shared"))
        .shutdown();
}

/// Image every block of the volume through the raw-read path.
fn image(fs: &StegFs<MemBlockDevice>) -> Vec<u8> {
    let total = fs.plain_fs().superblock().total_blocks;
    let mut out = Vec::new();
    for b in 0..total {
        out.extend(fs.plain_fs().read_raw_block(b).unwrap());
    }
    out
}

#[test]
fn disk_image_is_bit_identical_with_obs_on_and_off() {
    let run = |obs_enabled: bool| -> Vec<u8> {
        let params = StegParams {
            obs_enabled,
            ..full_feature_params()
        };
        let fs = StegFs::format(MemBlockDevice::new(1024, 4096), params).unwrap();
        fs.write_plain("/cover.txt", &payload(7, 24 * 1024))
            .unwrap();
        fs.steg_create("secret", OWNER, ObjectKind::File).unwrap();
        fs.write_hidden_with_key("secret", OWNER, &payload(8, 64 * 1024))
            .unwrap();
        fs.read_hidden_with_key("secret", OWNER).unwrap();
        fs.sync().unwrap();
        image(&fs)
    };
    assert_eq!(
        run(true),
        run(false),
        "instrumentation must leave no mark on the volume"
    );
}

#[test]
fn disabled_registry_collects_nothing() {
    let params = StegParams {
        obs_enabled: false,
        ..full_feature_params()
    };
    let fs = StegFs::format(MemBlockDevice::new(1024, 4096), params).unwrap();
    fs.write_plain("/cover.txt", &payload(9, 16 * 1024))
        .unwrap();
    fs.sync().unwrap();
    let snap = fs.obs().snapshot();
    assert!(!snap.enabled);
    for (name, lock) in &snap.locks {
        assert_eq!(lock.acquisitions, 0, "{name} counted while disabled");
    }
    assert_eq!(snap.device.reads, 0);
    assert_eq!(snap.device.writes, 0);
    assert_eq!(snap.trace_accepted, 0);
}
