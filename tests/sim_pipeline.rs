//! Cross-crate check of the experiment pipeline: small versions of the
//! paper's figures must come out with the right qualitative shape.

use stegfs_sim::driver::{run_access, Operation};
use stegfs_sim::experiments::{figure6, figure9, space_summary};
use stegfs_sim::schemes::{build_scheme, SchemeKind};
use stegfs_sim::{AccessPattern, WorkloadParams};

fn tiny_params() -> WorkloadParams {
    let mut p = WorkloadParams::tiny_test();
    p.file_count = 4;
    p
}

#[test]
fn figure6_shape_utilization_peaks_at_moderate_replication() {
    let rows = figure6(64, 1, 11);
    // For every block size the peak utilization across replication factors is
    // not at replication 1 and not at replication 64 going up — i.e. the
    // curve rises then falls, as in the paper.
    for bs in [512u64, 1024, 4096, 65536] {
        let series: Vec<(usize, f64)> = rows
            .iter()
            .filter(|r| r.block_size == bs)
            .map(|r| (r.replication, r.utilization))
            .collect();
        let peak = series
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        let at_1 = series.iter().find(|(r, _)| *r == 1).unwrap().1;
        let at_64 = series.iter().find(|(r, _)| *r == 64).unwrap().1;
        assert!(peak.1 >= at_1, "block size {bs}");
        assert!(peak.1 >= at_64, "block size {bs}");
        assert!(peak.1 < 0.3, "StegRand never reaches healthy utilization");
    }
    // Smaller blocks produce lower utilization at the paper's highlighted
    // point (1 KB vs 64 KB at replication 8).
    let util = |bs: u64, r: usize| {
        rows.iter()
            .find(|x| x.block_size == bs && x.replication == r)
            .unwrap()
            .utilization
    };
    assert!(util(65536, 8) >= util(512, 8));
}

#[test]
fn figure9_shape_cleandisk_fastest_stegcover_slowest_serial() {
    let params = tiny_params();
    let rows = figure9(&params, &[1024, 8192]).unwrap();
    for &bs_kb in &[1.0f64, 8.0] {
        let get = |kind: SchemeKind| {
            rows.iter()
                .find(|r| r.scheme == kind && (r.x - bs_kb).abs() < 1e-9)
                .unwrap()
                .read_s
        };
        assert!(
            get(SchemeKind::CleanDisk) <= get(SchemeKind::FragDisk) * 1.05,
            "CleanDisk should not lose to FragDisk at {bs_kb} KB"
        );
        assert!(
            get(SchemeKind::FragDisk) < get(SchemeKind::StegFs),
            "serial single-user load is where StegFS pays its penalty ({bs_kb} KB)"
        );
        assert!(
            get(SchemeKind::StegCover) > get(SchemeKind::StegFs),
            "StegCover is the most expensive scheme ({bs_kb} KB)"
        );
    }
    // The StegFS penalty shrinks as the block size grows (fewer seeks per
    // byte) — the effect visible across Figure 9's x axis.
    let ratio = |bs_kb: f64| {
        let steg = rows
            .iter()
            .find(|r| r.scheme == SchemeKind::StegFs && (r.x - bs_kb).abs() < 1e-9)
            .unwrap()
            .read_s;
        let clean = rows
            .iter()
            .find(|r| r.scheme == SchemeKind::CleanDisk && (r.x - bs_kb).abs() < 1e-9)
            .unwrap()
            .read_s;
        steg / clean
    };
    assert!(ratio(8.0) < ratio(1.0));
}

#[test]
fn interleaved_write_load_converges_stegfs_with_native_fs() {
    // The §5.3 headline: by 8 concurrent users StegFS matches the native file
    // system for writes.  At tiny scale we check the trend: the ratio at 4
    // users is much smaller than at 1 user and within a small factor.
    let params = tiny_params();
    let measure = |kind: SchemeKind, users: usize| {
        let mut p = params.clone();
        p.users = users;
        let specs = p.generate_files();
        let mut scheme = build_scheme(kind, &p).unwrap();
        scheme.prepare(&specs, &p).unwrap();
        run_access(
            scheme.as_mut(),
            &specs,
            users,
            AccessPattern::Interleaved,
            Operation::Write,
        )
        .unwrap()
        .avg_access_time_s()
    };
    let ratio_1 = measure(SchemeKind::StegFs, 1) / measure(SchemeKind::CleanDisk, 1);
    let ratio_4 = measure(SchemeKind::StegFs, 4) / measure(SchemeKind::CleanDisk, 4);
    assert!(
        ratio_1 > 2.0,
        "alone, StegFS writes are clearly slower ({ratio_1:.1}x)"
    );
    assert!(
        ratio_4 < ratio_1 / 2.0,
        "under concurrency the gap must collapse ({ratio_1:.1}x -> {ratio_4:.1}x)"
    );
    assert!(ratio_4 < 3.0, "by 4 users StegFS is within a small factor");
}

#[test]
fn space_summary_reproduces_the_order_of_magnitude_claim() {
    // At this deliberately tiny volume (24 MB) StegRand's relative
    // utilization is flattered — files are only a few dozen blocks, so the
    // first unrecoverable collision arrives later in relative terms than it
    // does at the paper's 1 GB scale.  The full 10x-plus gap is reproduced by
    // the repro binary at its default scale (see EXPERIMENTS.md: 94.6% vs
    // 7.6%); here we check the ordering and a conservative 4x margin.
    let rows = space_summary(24, 3).unwrap();
    let util = |name: &str| rows.iter().find(|r| r.scheme == name).unwrap().utilization;
    assert!(util("StegFS") > 0.6);
    assert!(util("StegCover") > 0.5 && util("StegCover") < 0.9);
    assert!(util("StegRand") < 0.25);
    assert!(
        util("StegFS") >= util("StegRand") * 4.0,
        "StegFS must be several times more space-efficient than StegRand even at toy scale"
    );
}
