//! End-to-end survivability: randomized media damage against k-of-n coded
//! hidden objects, exercised through the full stack (StegFS facade, coded
//! write path, checksum-verified degraded reads, offline scavenger).
//!
//! The contract under test, for `Disperse{m, n}` objects:
//!
//! * destroying **any** `n - m` share blocks of every group leaves every
//!   object byte-identical — both through a live (degraded) read and after
//!   an offline scavenge repair, which must restore the *raw device* to a
//!   byte-identical image;
//! * destroying more shares in a group yields a clean error — never torn
//!   or partial plaintext — and the scavenger reports the object lost
//!   without writing anything.

use proptest::prelude::*;
use stegfs_blockdev::{BlockDevice, CorruptingDevice, MemBlockDevice};
use stegfs_core::{ObjectKind, StegFs};
use stegfs_survival::{scavenge, RepairOutcome};
use stegfs_tests::{coded_params, payload};

const OWNER: &str = "the real key";

type CodedVolume = StegFs<CorruptingDevice<MemBlockDevice>>;

fn coded_volume(m: u8, n: u8, blocks: u64) -> CodedVolume {
    StegFs::format(
        CorruptingDevice::new(MemBlockDevice::new(1024, blocks)),
        coded_params(m, n),
    )
    .expect("format coded volume")
}

/// Seeded xorshift for picking damage victims.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Destroy `losses` pseudorandomly chosen distinct shares in every group of
/// `name`, mixing zeroing, junk overwrite and bit flips.  Returns the
/// number of blocks destroyed.
fn destroy_shares(fs: &CodedVolume, name: &str, losses: usize, seed: u64) -> usize {
    let dev = fs.plain_fs().device().clone();
    let mut rng = seed ^ 0x5743_2003;
    let mut destroyed = 0;
    for group in fs.hidden_share_extents(name, OWNER).expect("extents") {
        let mut pool = group.clone();
        for _ in 0..losses.min(pool.len()) {
            let pick = (xorshift(&mut rng) % pool.len() as u64) as usize;
            let victim = pool.swap_remove(pick);
            match xorshift(&mut rng) % 3 {
                0 => {
                    dev.zero_block(victim).expect("zero");
                }
                1 => {
                    dev.overwrite_region(victim, 1, xorshift(&mut rng))
                        .expect("junk");
                }
                // Heavy bit rot rather than a single flip, so the share
                // cannot accidentally still checksum-match.
                _ => {
                    dev.flip_bits(victim, 65, xorshift(&mut rng)).expect("flip");
                }
            }
            destroyed += 1;
        }
    }
    fs.purge_read_caches();
    destroyed
}

/// The object's metadata replica groups visible from outside the engine:
/// the header-replica set and the head inode-chain replica set.  Both are
/// replicated `n - m + 1` ways under `Disperse{m, n}`, so they tolerate the
/// same `n - m` losses as a data group.
fn metadata_groups(fs: &CodedVolume, name: &str) -> Vec<Vec<u64>> {
    let entry = fs.lookup_entry(name, OWNER).expect("entry");
    let keys = stegfs_core::crypt::ObjectKeys::derive(&entry.physical_name, &entry.fak);
    let obj = stegfs_core::hidden::open(fs.plain_fs(), &entry.physical_name, &keys, fs.params())
        .expect("open");
    let mut groups = Vec::new();
    if obj.header.header_replicas.is_empty() {
        groups.push(vec![obj.header_block]);
    } else {
        groups.push(obj.header.header_replicas.clone());
    }
    if obj.header.inode_chain != stegfs_core::header::NO_BLOCK {
        let mut chain = vec![obj.header.inode_chain];
        chain.extend(obj.header.chain_replicas.iter().copied());
        groups.push(chain);
    }
    groups
}

/// Destroy `losses` pseudorandomly chosen replicas in every metadata group
/// of `name` (never more than the group can spare unless `losses` exceeds
/// the group size on purpose).
fn destroy_metadata(fs: &CodedVolume, name: &str, losses: usize, seed: u64) -> usize {
    let dev = fs.plain_fs().device().clone();
    let mut rng = seed ^ 0x6d65_7461;
    let mut destroyed = 0;
    for group in metadata_groups(fs, name) {
        let mut pool = group.clone();
        for _ in 0..losses.min(pool.len()) {
            let pick = (xorshift(&mut rng) % pool.len() as u64) as usize;
            let victim = pool.swap_remove(pick);
            match xorshift(&mut rng) % 3 {
                0 => {
                    dev.zero_block(victim).expect("zero");
                }
                1 => {
                    dev.overwrite_region(victim, 1, xorshift(&mut rng))
                        .expect("junk");
                }
                _ => {
                    dev.flip_bits(victim, 65, xorshift(&mut rng)).expect("flip");
                }
            }
            destroyed += 1;
        }
    }
    fs.purge_read_caches();
    destroyed
}

fn raw_image(fs: &CodedVolume) -> Vec<u8> {
    let dev = fs.plain_fs().device();
    let mut image = Vec::with_capacity((dev.total_blocks() as usize) * dev.block_size());
    for b in 0..dev.total_blocks() {
        image.extend(dev.read_block_vec(b).expect("raw read"));
    }
    image
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        ..ProptestConfig::default()
    })]

    #[test]
    fn any_n_minus_m_losses_leave_every_byte_recoverable(
        code_idx in 0usize..3,
        size in 1usize..40_000,
        damage_seed in any::<u64>()
    ) {
        let (m, n) = [(2u8, 4u8), (2, 3), (3, 5)][code_idx];
        let fs = coded_volume(m, n, 8192);
        let data = payload(size as u64 ^ damage_seed, size);
        fs.steg_create("obj", OWNER, ObjectKind::File).unwrap();
        fs.write_hidden_with_key("obj", OWNER, &data).unwrap();
        let pristine = raw_image(&fs);

        let destroyed = destroy_shares(&fs, "obj", (n - m) as usize, damage_seed);
        prop_assert!(destroyed > 0);

        // A live read survives on checksum-verified fallback shares.
        prop_assert_eq!(fs.read_hidden_with_key("obj", OWNER).unwrap(), data.clone());

        // The offline scavenger heals the volume back to the byte-identical
        // pristine image: deterministic re-split + block-keyed cipher mean a
        // repaired share re-encrypts to exactly the original ciphertext.
        let report = scavenge(&fs, &[OWNER]).unwrap();
        prop_assert!(report.all_recovered(), "scavenge lost objects: {:?}", report);
        prop_assert_eq!(report.objects_repaired, 1);
        prop_assert_eq!(raw_image(&fs), pristine);

        fs.purge_read_caches();
        prop_assert_eq!(fs.read_hidden_with_key("obj", OWNER).unwrap(), data);
    }

    #[test]
    fn metadata_damage_within_redundancy_heals_byte_identically(
        code_idx in 0usize..3,
        size in 1usize..30_000,
        damage_seed in any::<u64>()
    ) {
        let (m, n) = [(2u8, 4u8), (2, 3), (3, 5)][code_idx];
        let fs = coded_volume(m, n, 8192);
        let data = payload(size as u64 ^ damage_seed, size);
        fs.steg_create("obj", OWNER, ObjectKind::File).unwrap();
        fs.write_hidden_with_key("obj", OWNER, &data).unwrap();
        let pristine = raw_image(&fs);

        // Header and chain replicas are n-m+1 deep: losing n-m of each
        // group — on top of n-m data shares per group — leaves exactly one
        // live copy everywhere.
        let tol = (n - m) as usize;
        prop_assert!(destroy_metadata(&fs, "obj", tol, damage_seed) > 0);
        destroy_shares(&fs, "obj", tol, damage_seed);

        // A live read still reconstructs every byte, from the surviving
        // metadata replicas and fallback shares.
        prop_assert_eq!(fs.read_hidden_with_key("obj", OWNER).unwrap(), data.clone());

        // The scavenger restores the raw device byte-identically: metadata
        // replicas carry identical plaintext and the cipher is keyed per
        // block number, so rewrites reproduce the original ciphertext.
        let report = scavenge(&fs, &[OWNER]).unwrap();
        prop_assert!(report.all_recovered(), "scavenge lost objects: {:?}", report);
        prop_assert_eq!(report.objects_repaired, 1);
        prop_assert_eq!(raw_image(&fs), pristine);

        fs.purge_read_caches();
        prop_assert_eq!(fs.read_hidden_with_key("obj", OWNER).unwrap(), data);
    }

    #[test]
    fn metadata_damage_beyond_redundancy_fails_closed_and_stays_deniable(
        code_idx in 0usize..3,
        size in 2_000usize..30_000,
        damage_seed in any::<u64>()
    ) {
        let (m, n) = [(2u8, 4u8), (2, 3), (3, 5)][code_idx];
        let fs = coded_volume(m, n, 8192);
        let data = payload(0xfee1 ^ damage_seed, size);
        fs.steg_create("obj", OWNER, ObjectKind::File).unwrap();
        fs.write_hidden_with_key("obj", OWNER, &data).unwrap();

        // Destroy a whole metadata group — one loss past its redundancy.
        let groups = metadata_groups(&fs, "obj");
        let target = &groups[(damage_seed as usize) % groups.len()];
        let dev = fs.plain_fs().device().clone();
        for &b in target {
            dev.zero_block(b).unwrap();
        }
        fs.purge_read_caches();

        // Fail-closed: a clean error, never torn plaintext.  A destroyed
        // header keeps the absent-object error family, so the failure tells
        // an inspector nothing a missing object would not.
        let err = fs.read_hidden_with_key("obj", OWNER).unwrap_err();
        if target == &groups[0] {
            prop_assert!(err.is_not_found(), "expected NotFound, got: {err}");
        }

        // The scavenger reports it lost and writes nothing at all.
        let before_scavenge = raw_image(&fs);
        let report = scavenge(&fs, &[OWNER]).unwrap();
        prop_assert_eq!(report.objects_lost, 1);
        prop_assert_eq!(raw_image(&fs), before_scavenge);
        prop_assert!(fs.read_hidden_with_key("obj", OWNER).is_err());
    }

    #[test]
    fn beyond_tolerance_fails_closed_with_no_partial_plaintext(
        code_idx in 0usize..3,
        size in 4_000usize..40_000,
        damage_seed in any::<u64>()
    ) {
        let (m, n) = [(2u8, 4u8), (2, 3), (3, 5)][code_idx];
        let fs = coded_volume(m, n, 8192);
        let data = payload(0xbad ^ damage_seed, size);
        fs.steg_create("doomed", OWNER, ObjectKind::File).unwrap();
        fs.write_hidden_with_key("doomed", OWNER, &data).unwrap();

        // One more loss per group than the code tolerates.
        destroy_shares(&fs, "doomed", (n - m) as usize + 1, damage_seed);

        // Clean failure, deniable family, no bytes returned.
        let err = fs.read_hidden_with_key("doomed", OWNER).unwrap_err();
        prop_assert!(
            err.to_string().contains("live shares"),
            "expected a fail-closed share error, got: {err}"
        );

        // The scavenger reports it lost and writes nothing (the image is
        // unchanged by the scavenge pass itself).
        let before_scavenge = raw_image(&fs);
        let report = scavenge(&fs, &[OWNER]).unwrap();
        prop_assert_eq!(report.objects_lost, 1);
        prop_assert_eq!(report.lost.clone(), vec!["doomed".to_string()]);
        prop_assert_eq!(raw_image(&fs), before_scavenge);

        // Still fail-closed after the scavenge pass.
        prop_assert!(fs.read_hidden_with_key("doomed", OWNER).is_err());
    }
}

#[test]
fn degraded_objects_coexist_with_healthy_ones() {
    // Mixed damage across a small population: the scavenger repairs what it
    // can, reports what it cannot, and healthy objects are untouched.
    let fs = coded_volume(2, 4, 8192);
    for (i, name) in ["healthy", "degraded", "doomed"].iter().enumerate() {
        fs.steg_create(name, OWNER, ObjectKind::File).unwrap();
        fs.write_hidden_with_key(name, OWNER, &payload(i as u64, 12_000))
            .unwrap();
    }
    destroy_shares(&fs, "degraded", 2, 41); // exactly tolerated
    destroy_shares(&fs, "doomed", 3, 42); // beyond tolerance

    let report = scavenge(&fs, &[OWNER]).unwrap();
    assert_eq!(report.objects_scanned, 3);
    assert_eq!(report.objects_intact, 1);
    assert_eq!(report.objects_repaired, 1);
    assert_eq!(report.objects_lost, 1);
    assert_eq!(report.lost, vec!["doomed".to_string()]);

    fs.purge_read_caches();
    assert_eq!(
        fs.read_hidden_with_key("healthy", OWNER).unwrap(),
        payload(0, 12_000)
    );
    assert_eq!(
        fs.read_hidden_with_key("degraded", OWNER).unwrap(),
        payload(1, 12_000)
    );
    assert!(fs.read_hidden_with_key("doomed", OWNER).is_err());
}

#[test]
fn per_object_policy_overrides_the_volume_default() {
    use stegfs_core::Policy;
    // A volume whose default is Plain can still create dispersed objects,
    // and the dispersed object survives damage the plain one cannot.
    let fs = StegFs::format(
        CorruptingDevice::new(MemBlockDevice::new(1024, 8192)),
        stegfs_tests::full_feature_params(),
    )
    .unwrap();
    fs.steg_create_with_policy(
        "tough",
        OWNER,
        ObjectKind::File,
        Policy::Disperse { m: 2, n: 4 },
    )
    .unwrap();
    fs.write_hidden_with_key("tough", OWNER, &payload(7, 10_000))
        .unwrap();

    destroy_shares(&fs, "tough", 2, 7);
    assert_eq!(
        fs.read_hidden_with_key("tough", OWNER).unwrap(),
        payload(7, 10_000)
    );
    let entry = fs.lookup_entry("tough", OWNER).unwrap();
    assert!(matches!(
        fs.scavenge_entry(&entry).unwrap(),
        RepairOutcome::Repaired { .. }
    ));
}

/// Online self-healing under concurrency: degraded readers race the repair
/// drain, and a full rewrite racing a still-queued ticket must never let the
/// drain resurrect the superseded incarnation.
#[test]
fn concurrent_degraded_reads_and_repairs_never_resurrect_old_data() {
    use std::sync::Arc;
    use std::thread;
    let fs = Arc::new(coded_volume(2, 4, 8192));
    fs.steg_create("hot", OWNER, ObjectKind::File).unwrap();
    let mut current = payload(0, 10_000);
    fs.write_hidden_with_key("hot", OWNER, &current).unwrap();

    for round in 1..=4u64 {
        // Tolerable damage: one share per group plus one replica per
        // metadata group (each tolerates n - m = 2 losses).
        destroy_shares(&fs, "hot", 1, round);
        destroy_metadata(&fs, "hot", 1, round);

        // Concurrent degraded readers race the self-healing drain.
        let mut joins = Vec::new();
        for _ in 0..3 {
            let fs = Arc::clone(&fs);
            let want = current.clone();
            joins.push(thread::spawn(move || {
                assert_eq!(fs.read_hidden_with_key("hot", OWNER).unwrap(), want);
            }));
        }
        {
            let fs = Arc::clone(&fs);
            joins.push(thread::spawn(move || {
                let _ = fs.process_repairs(8);
            }));
        }
        for j in joins {
            j.join().unwrap();
        }

        // Rewrite a new incarnation while a ticket may still be queued; the
        // drain re-opens fresh, so it must converge on the *new* bytes.
        current = payload(round, 10_000 + round as usize * 512);
        fs.write_hidden_with_key("hot", OWNER, &current).unwrap();
        let drain = fs.process_repairs(8);
        assert_eq!(drain.failed, 0, "round {round}: {drain:?}");
        fs.purge_read_caches();
        assert_eq!(fs.read_hidden_with_key("hot", OWNER).unwrap(), current);
    }

    let report = scavenge(&*fs, &[OWNER]).unwrap();
    assert!(report.all_recovered(), "{report:?}");
}
