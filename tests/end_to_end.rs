//! End-to-end life cycle tests spanning every crate: format → populate →
//! remount → share → back up → destroy → recover.

use stegfs_blockdev::MemBlockDevice;
use stegfs_core::{ObjectKind, StegError, StegFs};
use stegfs_crypto::rsa::RsaKeyPair;
use stegfs_tests::{full_feature_params, payload, test_volume};

const ALICE: &str = "alice uak";
const BOB: &str = "bob uak";

#[test]
fn full_lifecycle_survives_remounts_and_recovery() {
    let fs = test_volume(8192);

    // Plain tree.
    fs.create_plain_dir("/docs").unwrap();
    fs.write_plain("/docs/visible.txt", b"ordinary file")
        .unwrap();

    // Hidden objects for two users, including a large multi-chain file.
    let big = payload(1, 700 * 1024);
    fs.steg_create("alice-big", ALICE, ObjectKind::File)
        .unwrap();
    fs.write_hidden_with_key("alice-big", ALICE, &big).unwrap();
    fs.steg_create("bob-notes", BOB, ObjectKind::File).unwrap();
    fs.write_hidden_with_key("bob-notes", BOB, b"bob's hidden notes")
        .unwrap();

    // Hide an existing plain file.
    fs.write_plain("/docs/to-hide.txt", b"was plain, becomes hidden")
        .unwrap();
    fs.steg_hide("/docs/to-hide.txt", "alice-hidden-doc", ALICE)
        .unwrap();
    assert!(!fs.plain_exists("/docs/to-hide.txt").unwrap());

    // Remount and verify everything.
    let dev = fs.unmount().unwrap();
    let fs = StegFs::mount(dev, full_feature_params()).unwrap();
    assert_eq!(
        fs.read_plain("/docs/visible.txt").unwrap(),
        b"ordinary file"
    );
    assert_eq!(fs.read_hidden_with_key("alice-big", ALICE).unwrap(), big);
    assert_eq!(
        fs.read_hidden_with_key("bob-notes", BOB).unwrap(),
        b"bob's hidden notes"
    );
    assert_eq!(
        fs.read_hidden_with_key("alice-hidden-doc", ALICE).unwrap(),
        b"was plain, becomes hidden"
    );
    // Each user's directory only lists their own objects.
    let alice_names: Vec<String> = fs
        .list_hidden(ALICE)
        .unwrap()
        .into_iter()
        .map(|(n, _)| n)
        .collect();
    assert_eq!(alice_names.len(), 2);
    assert!(alice_names.contains(&"alice-big".to_string()));
    assert_eq!(fs.list_hidden(BOB).unwrap().len(), 1);

    // Share alice-big with Bob, verify, then revoke.
    let bob_rsa = RsaKeyPair::generate(512, b"bob rsa e2e");
    let envelope = fs
        .steg_getentry("alice-big", ALICE, &bob_rsa.public)
        .unwrap();
    fs.steg_addentry(&envelope, &bob_rsa.private, BOB).unwrap();
    assert_eq!(fs.read_hidden_with_key("alice-big", BOB).unwrap(), big);
    fs.revoke_sharing("alice-big", ALICE).unwrap();
    assert!(fs
        .read_hidden_with_key("alice-big", BOB)
        .unwrap_err()
        .is_not_found());
    assert_eq!(fs.read_hidden_with_key("alice-big", ALICE).unwrap(), big);

    // Back up, destroy, recover onto a brand new device.
    let image = fs.steg_backup(b"admin").unwrap();
    drop(fs);
    let recovered = StegFs::steg_recovery(
        MemBlockDevice::new(1024, 8192),
        &image,
        b"admin",
        full_feature_params(),
    )
    .unwrap();
    assert_eq!(
        recovered.read_plain("/docs/visible.txt").unwrap(),
        b"ordinary file"
    );
    assert_eq!(
        recovered.read_hidden_with_key("alice-big", ALICE).unwrap(),
        big
    );
    assert_eq!(
        recovered.read_hidden_with_key("bob-notes", BOB).unwrap(),
        b"bob's hidden notes"
    );
}

#[test]
fn unhide_round_trips_through_plain_namespace() {
    let fs = test_volume(4096);
    let content = payload(2, 40 * 1024);
    fs.steg_create("secret", ALICE, ObjectKind::File).unwrap();
    fs.write_hidden_with_key("secret", ALICE, &content).unwrap();

    fs.steg_unhide("/now-public.bin", "secret", ALICE).unwrap();
    assert_eq!(fs.read_plain("/now-public.bin").unwrap(), content);
    assert!(fs
        .read_hidden_with_key("secret", ALICE)
        .unwrap_err()
        .is_not_found());
    assert!(fs.list_hidden(ALICE).unwrap().is_empty());
}

#[test]
fn sessions_expose_connected_objects_only() {
    let fs = test_volume(4096);
    fs.steg_create("vault", ALICE, ObjectKind::Directory)
        .unwrap();
    fs.create_in_hidden_dir("vault", "inner", ALICE, ObjectKind::File)
        .unwrap();
    fs.steg_create("loose-file", ALICE, ObjectKind::File)
        .unwrap();

    fs.steg_connect("vault", ALICE).unwrap();
    let mut connected = fs.connected_objects();
    connected.sort();
    assert_eq!(connected, vec!["inner", "vault"]);
    assert!(matches!(
        fs.read_hidden("loose-file"),
        Err(StegError::NotConnected(_))
    ));
    fs.write_hidden("inner", b"written via session").unwrap();
    fs.disconnect_all();
    assert!(fs.connected_objects().is_empty());
    assert!(
        fs.read_hidden_with_key("inner", ALICE)
            .unwrap_err()
            .is_not_found(),
        "children created inside a hidden dir are not in the UAK directory"
    );
    // But reconnecting the vault reaches it again.
    fs.steg_connect("vault", ALICE).unwrap();
    assert_eq!(fs.read_hidden("inner").unwrap(), b"written via session");
}

#[test]
fn hidden_data_survives_heavy_plain_churn() {
    // Hidden blocks are protected by the bitmap even though the central
    // directory knows nothing about them: create/delete lots of plain files
    // around a hidden one and make sure it is never overwritten.
    let fs = test_volume(8192);
    let secret = payload(3, 200 * 1024);
    fs.steg_create("precious", ALICE, ObjectKind::File).unwrap();
    fs.write_hidden_with_key("precious", ALICE, &secret)
        .unwrap();

    for round in 0..8 {
        for i in 0..12 {
            let name = format!("/churn-{round}-{i}");
            fs.write_plain(&name, &payload(round * 100 + i, 64 * 1024))
                .unwrap();
        }
        for i in 0..12 {
            if i % 2 == 0 {
                fs.delete_plain(&format!("/churn-{round}-{i}")).unwrap();
            }
        }
        assert_eq!(
            fs.read_hidden_with_key("precious", ALICE).unwrap(),
            secret,
            "hidden file corrupted during churn round {round}"
        );
    }
}

#[test]
fn dummy_file_maintenance_does_not_disturb_user_data() {
    let fs = test_volume(8192);
    let secret = payload(4, 100 * 1024);
    fs.steg_create("user-data", ALICE, ObjectKind::File)
        .unwrap();
    fs.write_hidden_with_key("user-data", ALICE, &secret)
        .unwrap();
    fs.write_plain("/plain.txt", b"plain data").unwrap();

    for _ in 0..5 {
        let touched = fs.touch_dummy_files().unwrap();
        assert_eq!(touched, full_feature_params().dummy_file_count);
    }
    assert_eq!(fs.read_hidden_with_key("user-data", ALICE).unwrap(), secret);
    assert_eq!(fs.read_plain("/plain.txt").unwrap(), b"plain data");
}
