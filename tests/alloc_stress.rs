//! Stress and property tests for the shared block allocator under the
//! shared-reference core API: many threads allocating and freeing hidden
//! objects on one volume must never hand one block to two live objects, and
//! the free bitmap must balance once everything is deleted.

use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use std::thread;
use stegfs_blockdev::MemBlockDevice;
use stegfs_core::crypt::ObjectKeys;
use stegfs_core::{hidden, ObjectKind, StegFs, StegParams};
use stegfs_tests::payload;

/// Parameters with a *deterministic* free-pool size (`FB_min == FB_max`), so
/// that after any write the pool holds exactly `FB_max` blocks and the
/// end-of-round free count is reproducible across rounds.
fn stress_params() -> StegParams {
    StegParams {
        random_fill: false,
        dummy_file_count: 0,
        abandoned_pct: 0.0,
        free_blocks_min: 4,
        free_blocks_max: 4,
        ..StegParams::for_tests()
    }
}

fn uak_for(thread: usize) -> String {
    format!("stress thread key {thread}")
}

/// One round of parallel object churn: every thread creates, rewrites and
/// deletes hidden objects under its own UAK, all against one shared
/// allocator and bitmap.
fn churn_round(fs: &Arc<StegFs<MemBlockDevice>>, seeds: &[u64], sizes: &[usize]) {
    let workers: Vec<_> = (0..seeds.len())
        .map(|t| {
            let fs = Arc::clone(fs);
            let seed = seeds[t];
            let size = sizes[t];
            thread::spawn(move || {
                let uak = uak_for(t);
                // Two objects per thread; the first is deleted mid-round so
                // frees interleave with everyone else's allocations.
                fs.steg_create("ephemeral", &uak, ObjectKind::File).unwrap();
                let data: Vec<u8> = (0..size).map(|i| (seed as usize + i) as u8).collect();
                fs.write_hidden_with_key("ephemeral", &uak, &data).unwrap();

                fs.steg_create("durable", &uak, ObjectKind::File).unwrap();
                fs.write_hidden_with_key("durable", &uak, &data).unwrap();

                fs.delete_hidden("ephemeral", &uak).unwrap();

                // Rewrite (shrink or grow) to push blocks through the free
                // pool while other threads allocate.
                let second = vec![seed as u8; size / 2 + 1];
                fs.write_hidden_with_key("durable", &uak, &second).unwrap();
                assert_eq!(fs.read_hidden_with_key("durable", &uak).unwrap(), second);
            })
        })
        .collect();
    for w in workers {
        w.join().expect("churn worker panicked");
    }
}

/// Blocks owned by every live hidden object reachable from the given UAKs,
/// including each UAK directory object itself.
fn live_owned_blocks(fs: &StegFs<MemBlockDevice>, uaks: &[String]) -> HashMap<u64, String> {
    let mut owner_of: HashMap<u64, String> = HashMap::new();
    let mut claim = |fs: &StegFs<MemBlockDevice>, label: String, physical: &str, key: &[u8]| {
        let keys = ObjectKeys::derive(physical, key);
        let obj = hidden::open(fs.plain_fs(), physical, &keys, fs.params()).unwrap();
        for b in hidden::owned_blocks(fs.plain_fs(), &keys, &obj).unwrap() {
            assert!(
                fs.plain_fs().is_block_allocated(b),
                "{label}: owned block {b} not marked allocated"
            );
            if let Some(other) = owner_of.insert(b, label.clone()) {
                panic!("block {b} owned by both {other} and {label}");
            }
        }
    };
    for uak in uaks {
        // The UAK directory object.
        claim(
            fs,
            format!("uak-dir[{uak}]"),
            stegfs_core::keys::UAK_DIRECTORY_NAME,
            uak.as_bytes(),
        );
        // Every object it lists.
        for (name, _) in fs.list_hidden(uak).unwrap() {
            let entry = fs.lookup_entry(&name, uak).unwrap();
            claim(
                fs,
                format!("{uak}/{name}"),
                &entry.physical_name,
                &entry.fak,
            );
        }
    }
    owner_of
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 4,
        ..ProptestConfig::default()
    })]

    #[test]
    fn parallel_alloc_free_never_double_owns_and_bitmap_balances(
        seeds in proptest::collection::vec(any::<u64>(), 6..=6),
        sizes in proptest::collection::vec(2_000usize..24_000, 6..=6),
    ) {
        let fs = Arc::new(
            StegFs::format(MemBlockDevice::new(1024, 16384), stress_params()).unwrap(),
        );
        let uaks: Vec<String> = (0..seeds.len()).map(uak_for).collect();

        churn_round(&fs, &seeds, &sizes);

        // Invariant 1: no block is owned by two live objects, and every
        // owned block is marked allocated in the shared bitmap.
        let owned = live_owned_blocks(&fs, &uaks);
        prop_assert!(!owned.is_empty());

        // Invariant 2: deleting every object returns its blocks; a second,
        // identical round then lands on exactly the same free count, so no
        // round leaks blocks (UAK directories persist with deterministic
        // free pools because FB_min == FB_max).
        for uak in &uaks {
            for (name, _) in fs.list_hidden(uak).unwrap() {
                fs.delete_hidden(&name, uak).unwrap();
            }
            prop_assert!(fs.list_hidden(uak).unwrap().is_empty());
        }
        let free_after_round1 = fs.plain_fs().free_data_blocks();

        churn_round(&fs, &seeds, &sizes);
        for uak in &uaks {
            for (name, _) in fs.list_hidden(uak).unwrap() {
                fs.delete_hidden(&name, uak).unwrap();
            }
        }
        let free_after_round2 = fs.plain_fs().free_data_blocks();
        prop_assert_eq!(
            free_after_round1,
            free_after_round2,
            "allocator leaked blocks across identical rounds"
        );
    }
}

/// A single object bigger than any one bitmap segment's share of the data
/// region: its keyed probes land in one segment's neighbourhood, so the
/// allocator must refill from (steal out of) other segments as each one
/// drains.  Delete must then return every block, and an identical second
/// pass must land on exactly the same free count — stealing cannot leak.
#[test]
fn cross_segment_claims_fill_and_drain_cleanly() {
    let fs = StegFs::format(MemBlockDevice::new(1024, 16384), stress_params()).unwrap();
    let uak = uak_for(0);
    let data = payload(0x5e6, 8 * 1024 * 1024); // ~8k blocks of a ~16k volume
    fs.steg_create("big", &uak, ObjectKind::File).unwrap();
    fs.write_hidden_with_key("big", &uak, &data).unwrap();
    assert_eq!(fs.read_hidden_with_key("big", &uak).unwrap(), data);

    // The object's blocks must span well past one segment of the data
    // region (the bitmap shards it 8 ways), or nothing was stolen.
    let owned = live_owned_blocks(&fs, std::slice::from_ref(&uak));
    let lo = owned.keys().min().copied().unwrap();
    let hi = owned.keys().max().copied().unwrap();
    let span = hi - lo;
    let data_blocks = fs.plain_fs().data_blocks();
    assert!(
        span > data_blocks / 4,
        "an {}-block object only spans {span} of {data_blocks} data blocks",
        owned.len()
    );

    fs.delete_hidden("big", &uak).unwrap();
    let free1 = fs.plain_fs().free_data_blocks();
    fs.steg_create("big", &uak, ObjectKind::File).unwrap();
    fs.write_hidden_with_key("big", &uak, &data).unwrap();
    fs.delete_hidden("big", &uak).unwrap();
    let free2 = fs.plain_fs().free_data_blocks();
    assert_eq!(free1, free2, "cross-segment churn leaked blocks");
}

/// Layout compatibility: the sharded allocator is a pure in-memory
/// reorganisation of the same on-disk bitmap format, so mounting a
/// previously formatted volume, reading everything and unmounting must not
/// change a single byte of the image.
#[test]
fn mount_read_unmount_round_trips_image_bit_identically() {
    let fs = StegFs::format(MemBlockDevice::new(1024, 8192), stress_params()).unwrap();
    let uak = uak_for(1);
    let data = payload(0xc0de, 40_000);
    fs.steg_create("doc", &uak, ObjectKind::File).unwrap();
    fs.write_hidden_with_key("doc", &uak, &data).unwrap();
    fs.write_plain("/visible.txt", b"plain bytes").unwrap();
    let dev = fs.unmount().unwrap();
    let before = dev.snapshot_raw();

    let fs = StegFs::mount(dev, stress_params()).unwrap();
    assert_eq!(fs.read_hidden_with_key("doc", &uak).unwrap(), data);
    assert_eq!(fs.read_plain("/visible.txt").unwrap(), b"plain bytes");
    let dev = fs.unmount().unwrap();
    assert_eq!(
        before,
        dev.snapshot_raw(),
        "mount + read + unmount changed the on-disk image"
    );
}

/// The write-path cache must never change what reaches the disk: an
/// identical single-threaded workload (full rewrites served from the warm
/// chain, in-place range patches, truncate + extend through a handle,
/// directory churn) run with the cache on and off must produce
/// bit-identical images.
#[test]
fn write_path_cache_never_changes_the_disk_image() {
    let run = |cache_blocks: usize| -> Vec<u8> {
        let params = StegParams {
            readpath_cache_blocks: cache_blocks,
            ..stress_params()
        };
        let fs = StegFs::format(MemBlockDevice::new(1024, 8192), params).unwrap();
        let uak = "image determinism key";
        fs.steg_create("a", uak, ObjectKind::File).unwrap();
        fs.write_hidden_with_key("a", uak, &payload(1, 20_000))
            .unwrap();
        // Warm full rewrite: with the cache on, the chain walk is served
        // from RAM; the blocks written must be the same either way.
        fs.write_hidden_with_key("a", uak, &payload(2, 26_000))
            .unwrap();
        fs.write_hidden_range_with_key("a", uak, 512, &payload(3, 2_000))
            .unwrap();
        let mut h = fs.open_hidden("a", uak).unwrap();
        fs.truncate_handle(&mut h, 9_000).unwrap();
        fs.write_at_handle(&mut h, 8_000, &payload(4, 4_000))
            .unwrap();
        fs.steg_create("dir", uak, ObjectKind::Directory).unwrap();
        fs.create_in_hidden_dir("dir", "child", uak, ObjectKind::File)
            .unwrap();
        fs.unmount().unwrap().snapshot_raw()
    };
    assert_eq!(
        run(0),
        run(4096),
        "write-path cache changed the on-disk image"
    );
}

/// Non-property variant pinned to a high thread count: raw allocator
/// contention with reads validating data integrity throughout.
#[test]
fn twelve_threads_of_allocator_churn_stay_consistent() {
    let fs = Arc::new(StegFs::format(MemBlockDevice::new(1024, 16384), stress_params()).unwrap());
    let seeds: Vec<u64> = (0..12).map(|t| 0x9e37 + t as u64).collect();
    let sizes: Vec<usize> = (0..12).map(|t| 3_000 + t * 700).collect();
    churn_round(&fs, &seeds, &sizes);
    let uaks: Vec<String> = (0..12).map(uak_for).collect();
    let owned = live_owned_blocks(&fs, &uaks);
    assert!(owned.len() > 12, "every durable object owns blocks");
    // The volume survives a remount with every durable object intact.
    let fs = Arc::into_inner(fs).expect("sole owner");
    let dev = fs.unmount().unwrap();
    let fs = StegFs::mount(dev, stress_params()).unwrap();
    for (t, uak) in uaks.iter().enumerate() {
        let expected = vec![seeds[t] as u8; sizes[t] / 2 + 1];
        assert_eq!(fs.read_hidden_with_key("durable", uak).unwrap(), expected);
    }
}
