//! Randomized crash-point recovery harness for the write-ahead journal.
//!
//! Each case drives a mixed plain/hidden workload against the full journaled
//! stack — `StegFs` over a **write-back** `BufferCache` over a `CrashDevice`
//! — arms a failure trip wire so the device dies at an arbitrary interior
//! write of an arbitrary operation, then pulls the plug
//! (`CrashDevice::crash` applies, drops, or tears a seeded subset of the
//! unsynced writes, including mid-batch) and remounts.  After replay:
//!
//! * every operation that **returned success** before the crash reads back
//!   exactly (committed data is readable),
//! * the one operation in flight at the crash is either fully present or
//!   fully absent — never torn (the fsync contract: a failed commit may be
//!   durable, never partial),
//! * the allocator owns every live block exactly once (no double-allocated
//!   blocks across plain files, hidden objects and their free pools),
//! * a wrong-key probe remains byte-for-byte indistinguishable from probing
//!   an object that never existed,
//! * and the volume keeps working: new writes, a checkpoint, and a second
//!   remount all succeed.

use proptest::prelude::*;
use std::collections::HashMap;
use stegfs_blockdev::{BufferCache, CrashDevice, MemBlockDevice};
use stegfs_core::crypt::ObjectKeys;
use stegfs_core::{hidden, ObjectKind, StegFs, StegParams};
use stegfs_tests::{journaled_params, payload};

const OWNER: &str = "crash-harness key";
const CACHE_BLOCKS: usize = 64;

type Stack = StegFs<BufferCache<CrashDevice<MemBlockDevice>>>;

fn params() -> StegParams {
    StegParams {
        // Small dummies keep each case fast while still churning.
        dummy_file_count: 2,
        dummy_file_size: 4 * 1024,
        ..journaled_params(160)
    }
}

fn mount_stack(dev: &CrashDevice<MemBlockDevice>) -> Stack {
    StegFs::mount(
        BufferCache::new_write_back(dev.clone(), CACHE_BLOCKS),
        params(),
    )
    .expect("remount after crash")
}

/// What the interrupted operation was about to do, so the post-crash check
/// can accept either outcome (complete or absent) but never a torn one.
enum Interrupted {
    None,
    Hidden {
        name: String,
        old: Option<Vec<u8>>,
        new: Option<Vec<u8>>,
    },
    Plain {
        path: String,
        old: Option<Vec<u8>>,
        new: Option<Vec<u8>>,
    },
}

struct Driver {
    fs: Option<Stack>,
    dev: CrashDevice<MemBlockDevice>,
    hidden_model: HashMap<String, Vec<u8>>,
    plain_model: HashMap<String, Vec<u8>>,
    interrupted: Interrupted,
}

impl Driver {
    fn new() -> Self {
        let dev = CrashDevice::new(MemBlockDevice::new(1024, 8192));
        let fs = StegFs::format(
            BufferCache::new_write_back(dev.clone(), CACHE_BLOCKS),
            params(),
        )
        .expect("format journaled volume");
        Driver {
            fs: Some(fs),
            dev,
            hidden_model: HashMap::new(),
            plain_model: HashMap::new(),
            interrupted: Interrupted::None,
        }
    }

    /// Run one decoded operation; returns false once the device has died.
    fn step(&mut self, i: usize, word: u64) -> bool {
        let fs = self.fs.as_ref().expect("fs alive");
        let kind = word % 5;
        let size = 512 + (word / 5 % 12_000) as usize;
        let result = match kind {
            // Create-or-rewrite a hidden file.
            0 | 1 => {
                let name = format!("h{}", word / 64 % 3);
                let data = payload(word ^ i as u64, size);
                let old = self.hidden_model.get(&name).cloned();
                if old.is_none() {
                    if let Err(e) = fs.steg_create(&name, OWNER, ObjectKind::File) {
                        self.interrupted = Interrupted::Hidden {
                            name,
                            old: None,
                            new: Some(Vec::new()),
                        };
                        return !is_device_death(&e);
                    }
                }
                match fs.write_hidden_with_key(&name, OWNER, &data) {
                    Ok(()) => {
                        self.hidden_model.insert(name, data);
                        Ok(())
                    }
                    Err(e) => {
                        // A failed create-then-write may leave the empty
                        // created object behind.
                        let fallback = if old.is_none() {
                            Some(Vec::new())
                        } else {
                            old.clone()
                        };
                        self.interrupted = Interrupted::Hidden {
                            name,
                            old: fallback,
                            new: Some(data),
                        };
                        Err(e)
                    }
                }
            }
            // Write a plain file.
            2 => {
                let path = format!("/p{}", word / 64 % 3);
                let data = payload(word ^ 0xbeef, size);
                match fs.write_plain(&path, &data) {
                    Ok(()) => {
                        self.plain_model.insert(path, data);
                        Ok(())
                    }
                    Err(e) => {
                        self.interrupted = Interrupted::Plain {
                            path: path.clone(),
                            old: self.plain_model.get(&path).cloned(),
                            new: Some(data),
                        };
                        Err(e)
                    }
                }
            }
            // Delete a hidden file (if one exists).
            3 => {
                let name = match self.hidden_model.keys().next() {
                    Some(n) => n.clone(),
                    None => return true,
                };
                match fs.delete_hidden(&name, OWNER) {
                    Ok(_) => {
                        self.hidden_model.remove(&name);
                        Ok(())
                    }
                    Err(e) => {
                        self.interrupted = Interrupted::Hidden {
                            name: name.clone(),
                            old: self.hidden_model.get(&name).cloned(),
                            new: None,
                        };
                        Err(e)
                    }
                }
            }
            // Dummy maintenance: journaled churn the adversary also sees.
            _ => fs.touch_dummy_files().map(|_| ()),
        };
        match result {
            Ok(()) => true,
            Err(e) => !is_device_death(&e),
        }
    }
}

/// True when the error is the injected device failure (the signal to stop
/// submitting work and crash).
fn is_device_death(e: &stegfs_core::StegError) -> bool {
    e.to_string().contains("injected crash")
}

/// Read a hidden file after remount through a fresh key derivation.
fn read_hidden(fs: &Stack, name: &str) -> Result<Vec<u8>, stegfs_core::StegError> {
    fs.read_hidden_with_key(name, OWNER)
}

/// Owned-block accounting: every live object's blocks (data, chain, header,
/// free pool) must be allocated and owned exactly once, disjoint from every
/// plain block and from the metadata + journal regions.
fn assert_no_double_ownership(fs: &Stack) {
    let sb = fs.plain_fs().superblock().clone();
    let mut owner_of: HashMap<u64, String> = HashMap::new();
    for b in fs.plain_fs().plain_object_blocks().unwrap() {
        assert!(sb.in_data_region(b), "plain block {b} outside data region");
        owner_of.insert(b, "plain".into());
    }
    let mut claim = |physical: &str, key: &[u8], label: String| {
        let keys = ObjectKeys::derive(physical, key);
        let obj = match hidden::open(fs.plain_fs(), physical, &keys, fs.params()) {
            Ok(obj) => obj,
            // The object (e.g. the UAK directory before any hidden create
            // committed) does not exist — nothing to claim.
            Err(e) if e.is_not_found() => return,
            Err(e) => panic!("{label}: open failed: {e}"),
        };
        for b in hidden::owned_blocks(fs.plain_fs(), &keys, &obj).unwrap() {
            assert!(
                fs.plain_fs().is_block_allocated(b),
                "{label}: owned block {b} not marked allocated"
            );
            assert!(
                sb.in_data_region(b),
                "{label}: block {b} outside data region"
            );
            if let Some(other) = owner_of.insert(b, label.clone()) {
                panic!("block {b} owned by both {other} and {label}");
            }
        }
    };
    claim(
        stegfs_core::keys::UAK_DIRECTORY_NAME,
        OWNER.as_bytes(),
        "uak-dir".into(),
    );
    for (name, _) in fs.list_hidden(OWNER).unwrap() {
        let entry = fs.lookup_entry(&name, OWNER).unwrap();
        claim(&entry.physical_name, &entry.fak, format!("hidden/{name}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 10,
        ..ProptestConfig::default()
    })]

    #[test]
    fn crash_anywhere_recovers_consistently(
        ops in proptest::collection::vec(any::<u64>(), 4..10),
        crash_seed in any::<u64>(),
        trip in any::<u64>(),
    ) {
        let mut driver = Driver::new();

        // Arm the trip wire so the device dies at an arbitrary interior
        // block write of an arbitrary operation.
        let trip_op = (trip % (ops.len() as u64 + 1)) as usize;
        let trip_writes = trip / 13 % 60;
        for (i, &word) in ops.iter().enumerate() {
            if i == trip_op {
                driver.dev.fail_after_writes(trip_writes);
            }
            if !driver.step(i, word) {
                break;
            }
        }

        // Pull the plug: the process dies (no unmount, the write-back cache
        // simply evaporates), the disk keeps a torn subset of unsynced
        // writes.
        drop(driver.fs.take());
        driver.dev.crash(crash_seed);

        // Remount: replay runs inside mount.
        let fs = mount_stack(&driver.dev);

        // Committed hidden data is readable, byte for byte.
        for (name, expected) in &driver.hidden_model {
            match &driver.interrupted {
                Interrupted::Hidden { name: n, .. } if n == name => continue,
                _ => {}
            }
            let got = read_hidden(&fs, name);
            prop_assert_eq!(
                got.as_ref().ok(),
                Some(expected),
                "committed hidden file {} unreadable after crash",
                name
            );
        }
        for (path, expected) in &driver.plain_model {
            match &driver.interrupted {
                Interrupted::Plain { path: p, .. } if p == path => continue,
                _ => {}
            }
            prop_assert_eq!(&fs.read_plain(path).unwrap(), expected, "plain file {}", path);
        }

        // The interrupted operation is all-or-nothing, never torn.
        match &driver.interrupted {
            Interrupted::None => {}
            Interrupted::Hidden { name, old, new } => {
                let got = read_hidden(&fs, name).ok();
                let acceptable = got.is_none()
                    || got.as_ref() == old.as_ref()
                    || got.as_ref() == new.as_ref();
                prop_assert!(
                    acceptable,
                    "interrupted hidden op on {} left torn state: {:?} bytes",
                    name,
                    got.map(|g| g.len())
                );
            }
            Interrupted::Plain { path, old, new } => {
                let got = fs.read_plain(path).ok();
                let acceptable = got.is_none()
                    || got.as_ref() == old.as_ref()
                    || got.as_ref() == new.as_ref();
                prop_assert!(
                    acceptable,
                    "interrupted plain op on {} left torn state: {:?} bytes",
                    path,
                    got.map(|g| g.len())
                );
            }
        }

        // The allocator owns every live block exactly once.
        assert_no_double_ownership(&fs);

        // Wrong key and never-existed stay indistinguishable across the
        // crash + replay.
        let wrong = fs.read_hidden_with_key("h0", "guessed key").unwrap_err();
        let absent = fs.read_hidden_with_key("never-created-name", "guessed key").unwrap_err();
        prop_assert!(wrong.is_not_found());
        prop_assert!(absent.is_not_found());
        let w = wrong.to_string().replace("h0", "<name>");
        let a = absent.to_string().replace("never-created-name", "<name>");
        prop_assert_eq!(w, a, "error text distinguishes wrong key from absent");

        // The volume keeps working: a fresh write survives a checkpoint and
        // a second (clean) remount.
        fs.steg_create("post-crash", OWNER, ObjectKind::File).unwrap();
        let fresh = payload(0x0fe_u64 ^ crash_seed, 3000);
        fs.write_hidden_with_key("post-crash", OWNER, &fresh).unwrap();
        fs.sync().unwrap();
        drop(fs);
        driver.dev.crash(crash_seed.wrapping_add(1)); // nothing unsynced left to lose
        let fs = mount_stack(&driver.dev);
        prop_assert_eq!(read_hidden(&fs, "post-crash").unwrap(), fresh);
    }
}

/// The background checkpoint daemon advances the journal tail and anchors
/// concurrently with foreground commits.  A kill with a checkpoint in
/// flight (`stop_checkpoint_daemon(false)` models the dead process, the
/// `CrashDevice` tears the unsynced writes) must replay cleanly: the
/// daemon writes only the same checksummed anchor records a foreground
/// sync writes, so replay cannot tell them apart.
#[test]
fn checkpoint_daemon_in_flight_replays_cleanly() {
    for trip in [2u64, 5, 9, 17, 28, 45] {
        let dev = CrashDevice::new(MemBlockDevice::new(1024, 8192));
        let mut fs = StegFs::format(
            BufferCache::new_write_back(dev.clone(), CACHE_BLOCKS),
            StegParams {
                checkpoint_daemon: true,
                ..params()
            },
        )
        .unwrap();
        fs.start_checkpoint_daemon();
        assert!(fs.checkpoint_daemon_running());

        // Committed churn with the daemon live: every commit notifies it,
        // so tail/anchor writes race the foreground from the start.
        let mut committed: HashMap<String, Vec<u8>> = HashMap::new();
        for k in 0..4u64 {
            let name = format!("d{k}");
            let data = payload(trip << 8 | k, 6 * 1024);
            fs.steg_create(&name, OWNER, ObjectKind::File).unwrap();
            fs.write_hidden_with_key(&name, OWNER, &data).unwrap();
            committed.insert(name, data);
        }

        // Arm the trip wire and keep rewriting: the device dies at an
        // arbitrary write — foreground payload, commit record or the
        // daemon's checkpoint, whichever lands there.
        dev.fail_after_writes(trip);
        let mut interrupted: Option<(String, Vec<u8>)> = None;
        for k in 0..4u64 {
            let name = format!("d{k}");
            let data = payload(0xda31_u64 ^ (trip << 8 | k), 9 * 1024);
            match fs.write_hidden_with_key(&name, OWNER, &data) {
                Ok(()) => {
                    committed.insert(name, data);
                }
                Err(_) => {
                    interrupted = Some((name, data));
                    break;
                }
            }
        }

        // Kill: no drain, no unmount — the checkpoint may be mid-write.
        fs.stop_checkpoint_daemon(false);
        drop(fs);
        dev.crash(0xc0ff_ee00 ^ trip);

        let fs = mount_stack(&dev);
        for (name, expected) in &committed {
            match &interrupted {
                Some((n, new)) if n == name => {
                    // The in-flight rewrite is all-or-nothing.
                    let got = fs.read_hidden_with_key(name, OWNER).unwrap();
                    assert!(
                        &got == expected || &got == new,
                        "trip {trip}: interrupted rewrite of {name} torn"
                    );
                }
                _ => {
                    assert_eq!(
                        fs.read_hidden_with_key(name, OWNER).unwrap(),
                        *expected,
                        "trip {trip}: committed {name} unreadable after daemon crash"
                    );
                }
            }
        }
        assert_no_double_ownership(&fs);

        // The recovered volume still runs a daemon, drains it on unmount
        // and hands back a volume that remounts clean.
        let mut fs = fs;
        fs.start_checkpoint_daemon();
        fs.write_hidden_with_key("d0", OWNER, b"after recovery")
            .unwrap();
        fs.unmount().unwrap(); // drains the daemon
        let fs = mount_stack(&dev);
        assert_eq!(
            fs.read_hidden_with_key("d0", OWNER).unwrap(),
            b"after recovery"
        );
    }
}

/// A focused regression: a torn *hidden-file rewrite* — header, chain and
/// bitmap all in flight — must leave the previous contents fully readable.
#[test]
fn torn_hidden_rewrite_preserves_old_contents() {
    for trip in [1u64, 3, 7, 12, 20, 33] {
        let dev = CrashDevice::new(MemBlockDevice::new(1024, 8192));
        let fs = StegFs::format(
            BufferCache::new_write_back(dev.clone(), CACHE_BLOCKS),
            params(),
        )
        .unwrap();
        let old = payload(7, 24 * 1024);
        fs.steg_create("victim", OWNER, ObjectKind::File).unwrap();
        fs.write_hidden_with_key("victim", OWNER, &old).unwrap();
        fs.sync().unwrap();

        dev.fail_after_writes(trip);
        let _ = fs.write_hidden_with_key("victim", OWNER, &payload(8, 30 * 1024));
        drop(fs);
        dev.crash(0xdead ^ trip);

        let fs = mount_stack(&dev);
        let got = fs.read_hidden_with_key("victim", OWNER).unwrap();
        // All-or-nothing: the rewrite either committed entirely before the
        // device died (possible for late trips) or rolled away entirely.
        if got != old {
            assert_eq!(got, payload(8, 30 * 1024), "trip {trip}: torn rewrite");
        }
        assert_no_double_ownership(&fs);
    }
}

/// Crash-consistency for the self-healing paths: an in-place repair — the
/// online read-repair drain rewriting damaged shares and metadata replicas
/// — interrupted at an arbitrary write must replay all-or-nothing.  After
/// remount the object still reads back in full (the damage was within
/// tolerance, and a torn repair must not have made it worse), and an
/// offline scavenge converges the volume to fully intact.
#[test]
fn crash_mid_repair_replays_cleanly_and_converges() {
    use stegfs_core::Policy;
    let coded = || StegParams {
        hidden_policy: Policy::Disperse { m: 2, n: 4 },
        ..params()
    };
    for trip in [1u64, 2, 4, 9, 15] {
        let dev = CrashDevice::new(MemBlockDevice::new(1024, 8192));
        let fs = StegFs::format(
            BufferCache::new_write_back(dev.clone(), CACHE_BLOCKS),
            coded(),
        )
        .unwrap();
        let data = payload(0x4e41 ^ trip, 20 * 1024);
        fs.steg_create("heal", OWNER, ObjectKind::File).unwrap();
        fs.write_hidden_with_key("heal", OWNER, &data).unwrap();
        fs.sync().unwrap();

        // Tolerable damage on data shares *and* metadata replicas, synced
        // down so it survives the crash no matter what.
        let junk = vec![0x99u8; 1024];
        for group in fs.hidden_share_extents("heal", OWNER).unwrap() {
            fs.plain_fs().write_raw_block(group[1], &junk).unwrap();
            fs.plain_fs().write_raw_block(group[3], &junk).unwrap();
        }
        let entry = fs.lookup_entry("heal", OWNER).unwrap();
        let keys = ObjectKeys::derive(&entry.physical_name, &entry.fak);
        let obj = hidden::open(fs.plain_fs(), &entry.physical_name, &keys, fs.params()).unwrap();
        fs.plain_fs()
            .write_raw_block(obj.header.header_replicas[1], &junk)
            .unwrap();
        fs.sync().unwrap();
        fs.purge_read_caches();

        // The degraded read queues a self-healing ticket; the drain then
        // dies mid-rewrite.
        assert_eq!(fs.read_hidden_with_key("heal", OWNER).unwrap(), data);
        assert!(fs.pending_repairs() >= 1);
        dev.fail_after_writes(trip);
        let _ = fs.process_repairs(4);
        drop(fs);
        dev.crash(0x7e41 ^ trip);

        // Replay: the repair either committed entirely or rolled away; the
        // object reads back in full either way.
        let fs = StegFs::mount(
            BufferCache::new_write_back(dev.clone(), CACHE_BLOCKS),
            coded(),
        )
        .expect("remount after mid-repair crash");
        assert_eq!(
            fs.read_hidden_with_key("heal", OWNER).unwrap(),
            data,
            "trip {trip}: torn repair broke the object"
        );
        assert_no_double_ownership(&fs);

        // An offline scavenge finishes the job and converges: a second
        // pass finds nothing left to repair.
        let report = stegfs_survival::scavenge(&fs, &[OWNER]).unwrap();
        assert!(report.all_recovered(), "trip {trip}: {report:?}");
        let again = stegfs_survival::scavenge(&fs, &[OWNER]).unwrap();
        assert_eq!(again.objects_intact, again.objects_scanned, "trip {trip}");
        fs.purge_read_caches();
        assert_eq!(fs.read_hidden_with_key("heal", OWNER).unwrap(), data);
    }
}
