//! Request-engine stress: 12 workers, mixed plain/hidden request streams
//! from concurrent clients, an adversary session interleaved throughout.
//!
//! Asserts three things end to end:
//!
//! * **completion counts** — every submitted request completes exactly once
//!   (per-client and engine-wide totals agree);
//! * **error families** — legitimate traffic succeeds, and each failure the
//!   adversary provokes lands in the deniable not-found family;
//! * **indistinguishability** — through the engine, probing an existing
//!   object with the wrong key and probing a name that never existed return
//!   the *same* error variant, for stat, open and unlink alike.

use std::io::SeekFrom;
use std::sync::Arc;
use std::thread;
use stegfs_blockdev::MemBlockDevice;
use stegfs_core::{StegError, StegParams};
use stegfs_engine::{Engine, Request, Response};
use stegfs_vfs::{OpenOptions, Vfs, VfsError, VfsHandle};

const WORKERS: usize = 12;
const CLIENTS: usize = 6;
const ROUNDS: usize = 6;
const CHUNK: usize = 1500;

fn stress_params() -> StegParams {
    StegParams {
        random_fill: false,
        dummy_file_count: 0,
        abandoned_pct: 0.0,
        ..StegParams::for_tests()
    }
}

fn open_handle(client: &stegfs_engine::Client<MemBlockDevice>, path: &str) -> VfsHandle {
    match client
        .call(Request::Open {
            path: path.into(),
            opts: OpenOptions::read_write(),
        })
        .result
        .expect("open")
    {
        Response::Handle(h) => h,
        other => panic!("open returned {other:?}"),
    }
}

#[test]
fn engine_stress_mixed_clients_with_adversary() {
    let vfs =
        Arc::new(Vfs::format(MemBlockDevice::new(1024, 32768), stress_params()).expect("format"));
    let engine = Arc::new(Engine::start(Arc::clone(&vfs), WORKERS));

    // Legitimate clients: even ids drive /plain, odd ids /hidden (each
    // hidden client under its own key).  Every client runs open → pipelined
    // positional writes → verified reads → streaming seek/read → stat →
    // readdir → unlink → close, and reports how many requests it submitted.
    let legit: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let engine = Arc::clone(&engine);
            thread::spawn(move || -> u64 {
                let client = engine.client(&format!("stress key {c}"));
                let path = if c.is_multiple_of(2) {
                    format!("/plain/stress-{c}")
                } else {
                    format!("/hidden/stress-{c}")
                };
                let mut submitted = 0u64;
                let h = open_handle(&client, &path);
                submitted += 1;

                for round in 0..ROUNDS {
                    // A burst of pipelined writes...
                    let ids: Vec<_> = (0..4u64)
                        .map(|i| {
                            client
                                .submit(Request::WriteAt {
                                    handle: h,
                                    offset: i * CHUNK as u64,
                                    data: vec![c as u8 ^ round as u8; CHUNK],
                                })
                                .expect("submit write")
                        })
                        .collect();
                    submitted += ids.len() as u64;
                    for id in ids {
                        let c = client.wait_for(id);
                        match c.result {
                            Ok(Response::Written(n)) => assert_eq!(n, CHUNK),
                            other => panic!("write completion for {path}: {other:?}"),
                        }
                        assert!(c.latency >= c.service);
                    }
                    // ...then verified reads of the same ranges...
                    for i in 0..4u64 {
                        let done = client.call(Request::ReadAt {
                            handle: h,
                            offset: i * CHUNK as u64,
                            len: CHUNK,
                        });
                        submitted += 1;
                        match done.result.expect("read") {
                            Response::Data(d) => {
                                assert_eq!(d, vec![c as u8 ^ round as u8; CHUNK])
                            }
                            other => panic!("unexpected {other:?}"),
                        }
                    }
                    // ...and a streaming seek + read.
                    let s = client.call(Request::Seek {
                        handle: h,
                        pos: SeekFrom::Start(CHUNK as u64),
                    });
                    submitted += 1;
                    assert!(matches!(s.result, Ok(Response::Offset(_))));
                    let r = client.call(Request::Read { handle: h, len: 64 });
                    submitted += 1;
                    match r.result.expect("stream read") {
                        Response::Data(d) => assert_eq!(d.len(), 64),
                        other => panic!("unexpected {other:?}"),
                    }
                }

                let st = client.call(Request::Stat { path: path.clone() });
                submitted += 1;
                match st.result.expect("stat") {
                    Response::Stat(s) => assert_eq!(s.size, 4 * CHUNK as u64),
                    other => panic!("unexpected {other:?}"),
                }
                let parent = if c.is_multiple_of(2) {
                    "/plain"
                } else {
                    "/hidden"
                };
                let dir = client.call(Request::Readdir {
                    path: parent.into(),
                });
                submitted += 1;
                match dir.result.expect("readdir") {
                    Response::Listing(entries) => {
                        assert!(entries.iter().any(|e| path.ends_with(&e.name)))
                    }
                    other => panic!("unexpected {other:?}"),
                }

                submitted += 1;
                assert!(matches!(
                    client.call(Request::Close { handle: h }).result,
                    Ok(Response::Unit)
                ));
                submitted += 1;
                assert!(matches!(
                    client.call(Request::Unlink { path: path.clone() }).result,
                    Ok(Response::Unit)
                ));
                assert_eq!(client.pending_completions(), 0);
                client.signoff().expect("signoff");
                submitted
            })
        })
        .collect();

    // The adversary runs interleaved with the legitimate burst: a session
    // under a guessed key probing names that exist (under other keys) and
    // names that never existed.  Both probes must come back as the same
    // error variant, request by request.
    let adversary = {
        let engine = Arc::clone(&engine);
        thread::spawn(move || -> u64 {
            let snoop = engine.client("guessed key");
            let mut submitted = 0u64;
            for round in 0..ROUNDS {
                // stress-1/3/5 exist under other keys; "never-existed-N"
                // matches nothing anywhere.
                for name in ["stress-1", "stress-3", "stress-5"] {
                    let existing = format!("/hidden/{name}");
                    let phantom = format!("/hidden/never-existed-{round}");
                    for probe in [
                        Request::Stat {
                            path: existing.clone(),
                        },
                        Request::Stat {
                            path: phantom.clone(),
                        },
                        Request::Open {
                            path: existing.clone(),
                            opts: OpenOptions::read_only(),
                        },
                        Request::Open {
                            path: phantom.clone(),
                            opts: OpenOptions::read_only(),
                        },
                        Request::Unlink { path: existing },
                        Request::Unlink { path: phantom },
                    ] {
                        let done = snoop.call(probe);
                        submitted += 1;
                        let err = done.result.expect_err("adversary must see nothing");
                        assert!(err.is_not_found(), "family leak: {err}");
                        // Wrong key and never-existed are the *same variant*,
                        // not merely the same family.
                        assert!(
                            matches!(err, VfsError::Steg(StegError::NotFound(_))),
                            "variant leak: {err:?}"
                        );
                    }
                }
                // The adversary's own /hidden stays empty throughout.
                let dir = snoop.call(Request::Readdir {
                    path: "/hidden".into(),
                });
                submitted += 1;
                match dir.result.expect("readdir") {
                    Response::Listing(entries) => assert!(entries.is_empty()),
                    other => panic!("unexpected {other:?}"),
                }
            }
            snoop.signoff().expect("signoff");
            submitted
        })
    };

    let mut total = 0u64;
    for worker in legit {
        total += worker.join().expect("legit client");
    }
    total += adversary.join().expect("adversary");

    assert_eq!(
        engine.completed(),
        total,
        "every submitted request completes exactly once"
    );
    assert_eq!(vfs.open_handles(), 0, "all handles closed");
    assert_eq!(vfs.session_count(), 0, "all sessions signed off");
    Arc::try_unwrap(engine)
        .unwrap_or_else(|_| panic!("engine still shared"))
        .shutdown();
}

/// Durability through the engine: concurrent clients write and `Fsync` on a
/// journaled write-back volume, the "machine" dies without unmounting, the
/// disk tears its unsynced writes — and after remount every fsynced write is
/// readable.  `SyncAll` checkpoints the whole volume the same way.
#[test]
fn fsync_group_commit_survives_a_crash() {
    use stegfs_blockdev::{BufferCache, CrashDevice};

    let params = StegParams {
        dummy_file_count: 0,
        journal_blocks: 256,
        ..stress_params()
    };
    let dev = CrashDevice::new(MemBlockDevice::new(1024, 16384));
    let vfs = Arc::new(
        Vfs::format(
            BufferCache::new_write_back(dev.clone(), 128),
            params.clone(),
        )
        .expect("format journaled volume"),
    );
    let engine = Arc::new(Engine::start(Arc::clone(&vfs), 8));

    let writers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let engine = Arc::clone(&engine);
            thread::spawn(move || {
                let client = engine.client("fsync stress key");
                let path = format!("/hidden/durable-{c}");
                let h = open_handle_on(&client, &path, true);
                let data = vec![c as u8 ^ 0x55; 4000];
                match client
                    .call(Request::WriteAt {
                        handle: h,
                        offset: 0,
                        data: data.clone(),
                    })
                    .result
                    .expect("write")
                {
                    Response::Written(n) => assert_eq!(n, 4000),
                    other => panic!("write returned {other:?}"),
                }
                // Concurrent fsyncs share one journal flush (group commit).
                match client
                    .call(Request::Fsync { handle: h })
                    .result
                    .expect("fsync")
                {
                    Response::Unit => {}
                    other => panic!("fsync returned {other:?}"),
                }
                client.call(Request::Close { handle: h });
                client.signoff().expect("signoff");
                data
            })
        })
        .collect();
    let expected: Vec<Vec<u8>> = writers.into_iter().map(|w| w.join().unwrap()).collect();

    // A volume-wide checkpoint request also completes.
    let client = engine.client("fsync stress key");
    match client.call(Request::SyncAll).result.expect("sync all") {
        Response::Unit => {}
        other => panic!("sync all returned {other:?}"),
    }
    client.signoff().expect("signoff");

    // The machine dies: no unmount, the write-back cache evaporates, the
    // disk keeps a torn subset of whatever was not yet flushed.
    Arc::try_unwrap(engine)
        .unwrap_or_else(|_| panic!("engine still shared"))
        .shutdown();
    drop(vfs);
    dev.crash(0xf5f5);

    // Remount (replay runs in mount): every fsynced write is intact.
    let vfs = Vfs::mount(BufferCache::new_write_back(dev.clone(), 128), params).expect("remount");
    let s = vfs.signon("fsync stress key");
    for (c, data) in expected.iter().enumerate() {
        let h = vfs
            .open(s, &format!("/hidden/durable-{c}"), OpenOptions::read_only())
            .expect("reopen");
        assert_eq!(&vfs.read_at(h, 0, 4000).expect("read back"), data);
        vfs.close(h).expect("close");
    }
    vfs.signoff(s).expect("signoff");
}

fn open_handle_on<D: stegfs_blockdev::BlockDevice + Send + Sync + 'static>(
    client: &stegfs_engine::Client<D>,
    path: &str,
    create: bool,
) -> VfsHandle {
    let opts = if create {
        OpenOptions::read_write().create(true)
    } else {
        OpenOptions::read_write()
    };
    match client
        .call(Request::Open {
            path: path.into(),
            opts,
        })
        .result
        .expect("open")
    {
        Response::Handle(h) => h,
        other => panic!("open returned {other:?}"),
    }
}
