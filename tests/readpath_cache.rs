//! Cache-coherence and deniability tests for the read-path cache.
//!
//! The contract under test (see `stegfs_core::readcache`): decrypted state
//! may be cached in RAM only as long as (a) every mutation through the
//! public API invalidates it, (b) sign-off purges and zeroes everything,
//! and (c) nothing about the on-disk image changes — a cached volume and an
//! uncached volume running the same workload are bit-identical on disk.

#![forbid(unsafe_code)]

use stegfs_blockdev::{BlockDevice, BufferCache, CrashDevice, MemBlockDevice};
use stegfs_core::{ObjectKind, StegFs, StegParams};
use stegfs_tests::{journaled_params, payload};
use stegfs_vfs::{OpenOptions, Vfs};

const OWNER: &str = "readpath cache key";

fn cached_params() -> StegParams {
    StegParams {
        readpath_cache_blocks: 2048,
        ..StegParams::for_tests()
    }
}

fn small_fs() -> StegFs<MemBlockDevice> {
    StegFs::format(MemBlockDevice::new(1024, 8192), cached_params()).unwrap()
}

// ----------------------------------------------------------------------
// Coherence: every mutation invalidates
// ----------------------------------------------------------------------

#[test]
fn overwrite_truncate_rename_unlink_invalidate_stegfs() {
    let fs = small_fs();
    fs.steg_create("doc", OWNER, ObjectKind::File).unwrap();
    let v1 = payload(1, 20_000);
    fs.write_hidden_with_key("doc", OWNER, &v1).unwrap();

    // Populate the cache (twice, so the second read is a known warm hit).
    assert_eq!(fs.read_hidden_with_key("doc", OWNER).unwrap(), v1);
    let before = fs.cache_stats();
    assert_eq!(fs.read_hidden_with_key("doc", OWNER).unwrap(), v1);
    let after = fs.cache_stats();
    assert!(
        after.block_hits > before.block_hits,
        "second read must hit: {after:?}"
    );

    // Overwrite: the cached extents and plaintext must not survive.
    let v2 = payload(2, 12_345);
    fs.write_hidden_with_key("doc", OWNER, &v2).unwrap();
    assert_eq!(fs.read_hidden_with_key("doc", OWNER).unwrap(), v2);

    // In-place range write through the entry path.
    fs.write_hidden_range_with_key("doc", OWNER, 100, &[0xaa; 600])
        .unwrap();
    let mut expect = v2.clone();
    expect[100..700].copy_from_slice(&[0xaa; 600]);
    assert_eq!(fs.read_hidden_with_key("doc", OWNER).unwrap(), expect);

    // Truncate through a handle.
    let mut h = fs.open_hidden("doc", OWNER).unwrap();
    fs.truncate_handle(&mut h, 500).unwrap();
    assert_eq!(
        fs.read_hidden_with_key("doc", OWNER).unwrap(),
        &expect[..500]
    );

    // Extend through a handle (zero fill must show, not stale plaintext).
    fs.truncate_handle(&mut h, 1500).unwrap();
    let grown = fs.read_hidden_with_key("doc", OWNER).unwrap();
    assert_eq!(&grown[..500], &expect[..500]);
    assert!(grown[500..].iter().all(|&b| b == 0));

    // Rename: old name gone, new name reads current content.
    fs.rename_hidden("doc", "doc2", OWNER).unwrap();
    assert!(fs
        .read_hidden_with_key("doc", OWNER)
        .unwrap_err()
        .is_not_found());
    assert_eq!(fs.read_hidden_with_key("doc2", OWNER).unwrap(), grown);

    // Unlink: reads must fail afterwards, however warm the cache was.
    assert_eq!(fs.read_hidden_with_key("doc2", OWNER).unwrap(), grown);
    fs.delete_hidden("doc2", OWNER).unwrap();
    assert!(fs
        .read_hidden_with_key("doc2", OWNER)
        .unwrap_err()
        .is_not_found());

    // Recreate under the same name: must read the new object's content,
    // never the deleted one's cached plaintext.
    fs.steg_create("doc2", OWNER, ObjectKind::File).unwrap();
    let v3 = payload(3, 4_000);
    fs.write_hidden_with_key("doc2", OWNER, &v3).unwrap();
    assert_eq!(fs.read_hidden_with_key("doc2", OWNER).unwrap(), v3);
}

#[test]
fn stale_core_handle_cannot_poison_the_cache() {
    // A core-level handle snapshots the object's header at open time; a
    // name-based rewrite afterwards leaves it stale (documented, pre-cache
    // behaviour).  What must NOT happen is a read through the stale handle
    // re-installing the old header into the shared cache, so that *fresh*
    // name-based reads — which walk from disk and must see the new content —
    // get served the dead incarnation.
    let fs = small_fs();
    fs.steg_create("doc", OWNER, ObjectKind::File).unwrap();
    let v1 = payload(50, 8_000);
    fs.write_hidden_with_key("doc", OWNER, &v1).unwrap();

    let stale = fs.open_hidden("doc", OWNER).unwrap(); // snapshots v1 header

    let v2 = payload(51, 12_500); // different size and block map
    fs.write_hidden_with_key("doc", OWNER, &v2).unwrap();

    // Reading through the stale handle walks the dead chain; whatever it
    // returns (garbage or an error) is the handle's own problem...
    let _ = fs.read_range_at(&stale, 0, 1024);
    // ...but fresh reads must see v2, not the header the stale walk carried.
    assert_eq!(fs.read_hidden_with_key("doc", OWNER).unwrap(), v2);
    assert_eq!(fs.read_hidden_with_key("doc", OWNER).unwrap(), v2);
    let fresh = fs.open_hidden("doc", OWNER).unwrap();
    assert_eq!(fs.handle_size(&fresh), v2.len() as u64);
}

#[test]
fn vfs_coherence_across_two_sessions() {
    let vfs = Vfs::format(MemBlockDevice::new(1024, 8192), cached_params()).unwrap();
    let a = vfs.signon(OWNER);
    let b = vfs.signon(OWNER);

    let h = vfs
        .open(a, "/hidden/shared", OpenOptions::read_write())
        .unwrap();
    let v1 = payload(10, 30_000);
    vfs.write_at(h, 0, &v1).unwrap();

    // Session B reads (warming the cache), then A overwrites, then B must
    // see the overwrite — the cache may never serve B the stale bytes.
    let hb = vfs
        .open(b, "/hidden/shared", OpenOptions::read_only())
        .unwrap();
    assert_eq!(vfs.read_at(hb, 0, v1.len()).unwrap(), v1);
    assert_eq!(vfs.read_at(hb, 0, v1.len()).unwrap(), v1);

    let v2 = payload(11, 30_000);
    vfs.write_at(h, 0, &v2).unwrap();
    assert_eq!(vfs.read_at(hb, 0, v2.len()).unwrap(), v2);

    // Truncate through A, read through B.
    vfs.truncate(h, 1000).unwrap();
    assert_eq!(vfs.read_at(hb, 0, 30_000).unwrap(), &v2[..1000]);

    vfs.close(h).unwrap();
    vfs.close(hb).unwrap();

    // Unlink through A; B's path lookups must report deniable not-found.
    vfs.unlink(a, "/hidden/shared").unwrap();
    let err = vfs
        .open(b, "/hidden/shared", OpenOptions::read_only())
        .unwrap_err();
    assert!(err.is_not_found());

    vfs.signoff(a).unwrap();
    vfs.signoff(b).unwrap();
}

#[test]
fn hidden_directory_listings_stay_coherent() {
    let fs = small_fs();
    fs.steg_create("vault", OWNER, ObjectKind::Directory)
        .unwrap();
    fs.create_in_hidden_dir("vault", "a", OWNER, ObjectKind::File)
        .unwrap();
    // Read the listing twice (cached), then mutate it and re-read.
    assert_eq!(fs.list_hidden_dir("vault", OWNER).unwrap().len(), 1);
    assert_eq!(fs.list_hidden_dir("vault", OWNER).unwrap().len(), 1);
    fs.create_in_hidden_dir("vault", "b", OWNER, ObjectKind::File)
        .unwrap();
    assert_eq!(fs.list_hidden_dir("vault", OWNER).unwrap().len(), 2);
    fs.rename_in_hidden_dir("vault", "a", "a2", OWNER).unwrap();
    let names: Vec<String> = fs
        .list_hidden_dir("vault", OWNER)
        .unwrap()
        .into_iter()
        .map(|(n, _)| n)
        .collect();
    assert!(names.contains(&"a2".to_string()) && !names.contains(&"a".to_string()));
    fs.delete_in_hidden_dir("vault", "a2", OWNER).unwrap();
    assert_eq!(fs.list_hidden_dir("vault", OWNER).unwrap().len(), 1);
}

// ----------------------------------------------------------------------
// Sign-off purge: no plaintext outlives the session
// ----------------------------------------------------------------------

#[test]
fn signoff_purges_every_cached_plaintext_byte() {
    let vfs = Vfs::format(MemBlockDevice::new(1024, 8192), cached_params()).unwrap();
    let s = vfs.signon(OWNER);
    for i in 0..3 {
        let path = format!("/hidden/secret-{i}");
        let h = vfs.open(s, &path, OpenOptions::read_write()).unwrap();
        vfs.write_at(h, 0, &payload(i, 25_000)).unwrap();
        let _ = vfs.read_at(h, 0, 25_000).unwrap();
        let _ = vfs.read_at(h, 0, 25_000).unwrap();
        vfs.close(h).unwrap();
    }
    let stats = vfs.cache_stats();
    assert!(stats.resident_blocks > 0, "reads must populate: {stats:?}");
    assert!(stats.resident_bytes > 0);
    assert!(stats.block_hits > 0);

    vfs.signoff(s).unwrap();
    let stats = vfs.cache_stats();
    assert_eq!(
        stats.resident_blocks, 0,
        "sign-off left plaintext: {stats:?}"
    );
    assert_eq!(stats.resident_bytes, 0);
    assert_eq!(stats.resident_objects, 0);
    // Sign-off is a *scoped* purge (this session's entries plus any
    // unscoped stragglers); the volume-wide purge counter is reserved for
    // unmount/disconnect_all.
    assert!(stats.scoped_purges >= 1);
}

#[test]
fn disconnect_all_and_unmount_purge_at_core_level() {
    let fs = small_fs();
    fs.steg_create("s", OWNER, ObjectKind::File).unwrap();
    fs.write_hidden_with_key("s", OWNER, &payload(9, 10_000))
        .unwrap();
    let _ = fs.read_hidden_with_key("s", OWNER).unwrap();
    assert!(fs.cache_stats().resident_blocks > 0);
    fs.disconnect_all();
    let stats = fs.cache_stats();
    assert_eq!(stats.resident_blocks, 0);
    assert_eq!(stats.resident_objects, 0);
}

// ----------------------------------------------------------------------
// Crash + remount: the cache never survives a mount
// ----------------------------------------------------------------------

#[test]
fn crash_then_remount_serves_replayed_state_not_cache() {
    type Stack = StegFs<BufferCache<CrashDevice<MemBlockDevice>>>;
    let params = StegParams {
        dummy_file_count: 1,
        dummy_file_size: 4 * 1024,
        readpath_cache_blocks: 1024,
        ..journaled_params(160)
    };
    let dev = CrashDevice::new(MemBlockDevice::new(1024, 8192));
    let fs: Stack =
        StegFs::format(BufferCache::new_write_back(dev.clone(), 64), params.clone()).unwrap();

    let v1 = payload(21, 18_000);
    fs.steg_create("ledger", OWNER, ObjectKind::File).unwrap();
    fs.write_hidden_with_key("ledger", OWNER, &v1).unwrap();
    fs.sync().unwrap();
    // Warm the cache thoroughly on the pre-crash mount.
    assert_eq!(fs.read_hidden_with_key("ledger", OWNER).unwrap(), v1);
    assert_eq!(fs.read_hidden_with_key("ledger", OWNER).unwrap(), v1);

    // Start an overwrite and kill the device partway through it.
    let v2 = payload(22, 18_000);
    dev.fail_after_writes(7);
    let _ = fs.write_hidden_with_key("ledger", OWNER, &v2);
    drop(fs);
    dev.crash(0xc0ffee);

    // The remounted volume has a provably empty cache; the journal replay
    // decides between old and new, and the read must match the *disk*,
    // not anything the previous mount had cached.
    let fs: Stack = StegFs::mount(BufferCache::new_write_back(dev.clone(), 64), params).unwrap();
    assert_eq!(fs.cache_stats().resident_blocks, 0);
    let got = fs.read_hidden_with_key("ledger", OWNER).unwrap();
    assert!(
        got == v1 || got == v2,
        "torn read after crash: {} bytes",
        got.len()
    );
    // And the remount is fully writable/readable going forward.
    let v3 = payload(23, 9_000);
    fs.write_hidden_with_key("ledger", OWNER, &v3).unwrap();
    assert_eq!(fs.read_hidden_with_key("ledger", OWNER).unwrap(), v3);
}

// ----------------------------------------------------------------------
// Deniability: the disk never changes because of the cache
// ----------------------------------------------------------------------

/// The same single-threaded workload on two volumes differing only in
/// whether the read cache exists.  Reads are interleaved everywhere so a
/// cache that leaked anything into the write path (or to disk) would
/// diverge the images.
fn run_workload(fs: &StegFs<MemBlockDevice>) {
    fs.write_plain("/cover.txt", b"innocuous plain data")
        .unwrap();
    for i in 0..3u64 {
        let name = format!("obj-{i}");
        fs.steg_create(&name, OWNER, ObjectKind::File).unwrap();
        fs.write_hidden_with_key(&name, OWNER, &payload(i, 9_000 + i as usize * 1024))
            .unwrap();
        let _ = fs.read_hidden_with_key(&name, OWNER).unwrap();
        let _ = fs.read_hidden_with_key(&name, OWNER).unwrap();
    }
    fs.write_hidden_with_key("obj-1", OWNER, &payload(40, 3_000))
        .unwrap();
    let _ = fs.read_hidden_with_key("obj-1", OWNER).unwrap();
    let mut h = fs.open_hidden("obj-2", OWNER).unwrap();
    fs.truncate_handle(&mut h, 2_000).unwrap();
    let _ = fs.read_range_at(&h, 0, 2_000).unwrap();
    fs.rename_hidden("obj-0", "obj-renamed", OWNER).unwrap();
    let _ = fs.read_hidden_with_key("obj-renamed", OWNER).unwrap();
    fs.delete_hidden("obj-renamed", OWNER).unwrap();
    let _ = fs.list_hidden(OWNER).unwrap();
    fs.touch_dummy_files().unwrap();
    let _ = fs.read_hidden_with_key("obj-1", OWNER).unwrap();
}

#[test]
fn disk_image_bit_identical_with_and_without_cache() {
    let with_cache = StegFs::format(
        MemBlockDevice::new(1024, 8192),
        StegParams {
            readpath_cache_blocks: 2048,
            ..StegParams::for_tests()
        },
    )
    .unwrap();
    let without_cache = StegFs::format(
        MemBlockDevice::new(1024, 8192),
        StegParams {
            readpath_cache_blocks: 0,
            ..StegParams::for_tests()
        },
    )
    .unwrap();

    run_workload(&with_cache);
    run_workload(&without_cache);
    // The cached run must actually have cached something, or this test
    // proves nothing.
    assert!(with_cache.cache_stats().block_hits > 0);
    assert_eq!(without_cache.cache_stats().block_hits, 0);

    let dev_a = with_cache.unmount().unwrap();
    let dev_b = without_cache.unmount().unwrap();
    assert_eq!(dev_a.total_blocks(), dev_b.total_blocks());
    let mut buf_a = vec![0u8; dev_a.block_size()];
    let mut buf_b = vec![0u8; dev_b.block_size()];
    for block in 0..dev_a.total_blocks() {
        dev_a.read_block(block, &mut buf_a).unwrap();
        dev_b.read_block(block, &mut buf_b).unwrap();
        assert_eq!(buf_a, buf_b, "divergence at block {block}");
    }
}

// ----------------------------------------------------------------------
// Streaming readahead
// ----------------------------------------------------------------------

#[test]
fn sequential_streaming_reads_prefetch_into_the_cache() {
    let vfs = Vfs::format(MemBlockDevice::new(1024, 8192), cached_params()).unwrap();
    let s = vfs.signon(OWNER);
    let h = vfs
        .open(s, "/hidden/stream", OpenOptions::read_write())
        .unwrap();
    let data = payload(31, 32 * 1024); // 32 blocks at 1 KiB
    vfs.write_at(h, 0, &data).unwrap();
    vfs.close(h).unwrap();

    // Fresh handle, 1 KiB streaming chunks over the whole file.
    let h = vfs
        .open(s, "/hidden/stream", OpenOptions::read_only())
        .unwrap();
    let before = vfs.cache_stats();
    let mut got = Vec::new();
    loop {
        let chunk = vfs.read(h, 1024).unwrap();
        if chunk.is_empty() {
            break;
        }
        got.extend_from_slice(&chunk);
    }
    assert_eq!(got, data);
    let after = vfs.cache_stats();
    let misses = after.block_misses - before.block_misses;
    let hits = after.block_hits - before.block_hits;
    // 32 one-block reads: without readahead every one would miss.  With
    // the 8-block window armed from the second read on, only a handful of
    // submissions touch the device.
    assert!(misses <= 8, "readahead did not batch: {misses} misses");
    assert!(hits >= 24, "prefetched blocks were not served: {hits} hits");
    vfs.close(h).unwrap();

    // A positional re-read of the same range is all hits now.
    let h = vfs
        .open(s, "/hidden/stream", OpenOptions::read_only())
        .unwrap();
    let before = vfs.cache_stats();
    assert_eq!(vfs.read_at(h, 0, data.len()).unwrap(), data);
    let after = vfs.cache_stats();
    assert_eq!(after.block_misses, before.block_misses);
    vfs.close(h).unwrap();
    vfs.signoff(s).unwrap();
}
